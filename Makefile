PYTHON ?= python
export PYTHONPATH := src

.PHONY: test lint pylint ranges invariants chaos stats bench bench-check bench-baseline bench-diff report serve loadtest

test:
	$(PYTHON) -m pytest -m "not bench" -q

lint:
	$(PYTHON) -m repro lint --strict examples/

pylint:
	$(PYTHON) -m repro pylint src/repro tests/pyfront/corpus \
		--fail-on error --out pylint-findings.json

ranges:
	$(PYTHON) -m repro lint --strict --ranges examples/

invariants:
	$(PYTHON) -m repro lint --strict --ranges --invariants examples/

chaos:
	for seed in 101 202 303 404 505; do \
		CHAOS_SEED=$$seed $(PYTHON) -m pytest tests/resilience -q || exit 1; \
	done

stats:
	rm -rf .repro/runs
	$(PYTHON) -m repro examples/ --ranges --runlog > /dev/null
	$(PYTHON) -m repro stats --strict

bench:
	$(PYTHON) -m pytest benchmarks --benchmark-only

bench-check:
	$(PYTHON) -m benchmarks.regress --check BENCH_0001.json

bench-baseline:
	$(PYTHON) -m benchmarks.regress --emit BENCH_0001.json

bench-diff:
	$(PYTHON) -m benchmarks.regress --compare BENCH_0004.json BENCH_0005.json

report:
	$(PYTHON) -m benchmarks.make_report

serve:
	$(PYTHON) -m repro serve --port 7457 --workers 2

loadtest:
	$(PYTHON) -m benchmarks.loadtest --clients 6 --requests 20 --workers 2 \
		--crash-rate 0.5 --seed 7
