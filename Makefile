PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-check bench-baseline report

test:
	$(PYTHON) -m pytest -m "not bench" -q

bench:
	$(PYTHON) -m pytest benchmarks --benchmark-only

bench-check:
	$(PYTHON) -m benchmarks.regress --check BENCH_0001.json

bench-baseline:
	$(PYTHON) -m benchmarks.regress --emit BENCH_0001.json

report:
	$(PYTHON) -m benchmarks.make_report
