#!/usr/bin/env python3
"""Load-test harness for the analysis service (``repro serve``).

Boots the real daemon as a subprocess (the same entry point production
would run, including signal handling), then drives it with N concurrent
clients sending a deterministic mixed workload:

* **good** requests -- valid programs, several distinct fingerprints plus
  deliberate repeats so the result cache sees hits;
* **bad** requests -- syntax errors, expecting a *degraded* response with
  a ``frontend-error`` payload (a client fault is not a server error);
* **oversized** requests -- a frame header past the server's limit,
  expecting a structured ``request-overflow`` protocol error;
* **batch** requests -- several programs in one exchange, sharded across
  workers.

With ``--crash-rate`` > 0 the server is booted with deterministic fault
injection at the ``serve.worker`` point (``--inject-seed`` pins the RNG
stream), so a fraction of jobs hard-crash their worker mid-request.  The
pass criteria are the serving contract:

1. **zero protocol failures** -- every request gets a well-formed
   response; a crashed worker must surface as a degraded response with a
   ``RES506`` diagnostic, never as a closed connection or a dead server;
2. ``status: error`` responses match the intentionally-malformed
   request count exactly;
3. SIGTERM drains the server with **exit code 0** within the grace
   window.

``--emit BENCH_0006.json`` records the run as a schema-v6 benchmark
document: latency percentiles (p50/p99/max), error rate, degraded
fraction, cache/pool/breaker snapshots, and the drain verdict.  Exits 1
when any pass criterion fails, so CI can gate on it directly.

Usage::

    python -m benchmarks.loadtest [--clients 8] [--requests 25]
        [--workers 2] [--crash-rate 0.15] [--seed 7]
        [--emit BENCH_0006.json] [--connect HOST:PORT]

``--connect`` drives an externally-booted server instead (no boot, no
drain check) -- the CI smoke job uses the default self-hosting mode.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.aggregate import percentile
from repro.service.client import ServiceClient
from repro.service.protocol import recv_message

SCHEMA_VERSION = 6

#: valid program template; the loop bound constant varies the fingerprint
GOOD_TEMPLATE = """\
i = 0
j = 0
s = 0
L1: while i < {bound} do
  i = i + 1
  j = j + 2
  s = s + j
endwhile
A[0] = s
"""

BAD_SOURCE = "L1: while i <\n"

#: deterministic request mix, cycled per client: ~70% good (with
#: repeats for cache hits), ~15% bad, ~10% oversized, ~5% batch
MIX = (
    "good", "good", "bad", "good", "good", "oversized", "good",
    "good", "bad", "good", "batch", "good", "good", "oversized",
    "good", "good", "good", "bad", "good", "good",
)

#: loop bounds reused across clients so the result cache gets traffic
BOUNDS = (10, 20, 30, 40, 50, 10, 20)


def good_source(index: int) -> str:
    return GOOD_TEMPLATE.format(bound=BOUNDS[index % len(BOUNDS)])


def send_oversized(host: str, port: int, timeout_s: float) -> Dict[str, Any]:
    """One raw oversized exchange: huge length header, expect the error."""
    with socket.create_connection((host, port), timeout=timeout_s) as sock:
        sock.sendall(struct.pack("!I", 64 * 1024 * 1024))
        response = recv_message(sock)
    if response is None:
        raise ConnectionError("no response to oversized frame")
    return response


class ClientResult:
    """Everything one simulated client observed."""

    def __init__(self) -> None:
        self.latencies_s: List[float] = []
        self.statuses: Dict[str, int] = {}
        self.degraded_codes: Dict[str, int] = {}
        self.diag_codes: Dict[str, int] = {}
        self.cache_hits = 0
        self.protocol_failures: List[str] = []
        self.contract_violations: List[str] = []

    def bump(self, table: Dict[str, int], key: str) -> None:
        table[key] = table.get(key, 0) + 1


def run_client(
    client_id: int,
    host: str,
    port: int,
    requests: int,
    timeout_s: float,
) -> ClientResult:
    """Drive one client's deterministic slice of the workload."""
    out = ClientResult()
    for index in range(requests):
        kind = MIX[(client_id + index) % len(MIX)]
        started = time.perf_counter()
        try:
            if kind == "oversized":
                response = send_oversized(host, port, timeout_s)
            else:
                with ServiceClient(host, port, timeout_s=timeout_s) as client:
                    if kind == "bad":
                        response = client.analyze(BAD_SOURCE)
                    elif kind == "batch":
                        response = client.analyze_batch(
                            [
                                {"name": f"b{i}", "source": good_source(index + i)}
                                for i in range(3)
                            ]
                        )
                    else:
                        response = client.analyze(good_source(client_id + index))
        except Exception as error:  # noqa: BLE001 - the contract says never
            out.protocol_failures.append(
                f"client {client_id} req {index} ({kind}): "
                f"{type(error).__name__}: {error}"
            )
            continue
        out.latencies_s.append(time.perf_counter() - started)
        status = response.get("status", "<missing>")
        out.bump(out.statuses, status)
        if kind == "oversized":
            if status != "error" or response["error"]["code"] != "request-overflow":
                out.contract_violations.append(
                    f"oversized frame answered with {status!r} "
                    f"instead of a request-overflow error"
                )
            continue
        if status == "error":
            out.contract_violations.append(
                f"client {client_id} req {index} ({kind}): unexpected "
                f"protocol error {response.get('error')}"
            )
            continue
        for result in response.get("results", []):
            if result.get("cached"):
                out.cache_hits += 1
            if result.get("status") != "degraded":
                continue
            code = (result.get("error") or {}).get("code", "<none>")
            out.bump(out.degraded_codes, code)
            # the contract: every degraded result carries a matching
            # degradation record; serve-layer failures also carry a
            # RES5xx diagnostic
            record = result.get("record") or {}
            has_degradations = bool(
                result.get("degradations") or record.get("degradations")
            )
            if not has_degradations:
                out.contract_violations.append(
                    f"degraded result without degradation records "
                    f"(code {code})"
                )
            for diagnostic in result.get("diagnostics") or []:
                out.bump(out.diag_codes, diagnostic.get("code", "<none>"))
            if code in ("worker-crash", "request-timeout", "circuit-open"):
                wanted = {
                    "worker-crash": "RES506",
                    "request-timeout": "RES507",
                    "circuit-open": "RES508",
                }[code]
                codes = [
                    d.get("code") for d in result.get("diagnostics") or []
                ]
                if wanted not in codes:
                    out.contract_violations.append(
                        f"{code} response lacks its {wanted} diagnostic "
                        f"(got {codes})"
                    )
    return out


# ----------------------------------------------------------------------
# server lifecycle (self-hosting mode)
# ----------------------------------------------------------------------
def boot_server(args) -> Tuple[subprocess.Popen, str, int]:
    """Start ``repro serve`` as a subprocess and wait for its address."""
    src_dir = os.path.join(os.path.dirname(__file__), "..", "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(src_dir) + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    command = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--port",
        "0",
        "--workers",
        str(args.workers),
        "--timeout-s",
        str(args.timeout_s),
        "--grace-s",
        str(args.grace_s),
    ]
    if args.crash_rate > 0:
        command += [
            "--inject",
            "serve.worker",
            "--inject-rate",
            str(args.crash_rate),
            "--inject-seed",
            str(args.seed),
        ]
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        env=env,
        text=True,
    )
    assert process.stdout is not None
    line = process.stdout.readline().strip()
    if not line.startswith("listening on "):
        process.kill()
        raise RuntimeError(f"server failed to boot: {line!r}")
    host, port = line[len("listening on "):].rsplit(":", 1)
    return process, host, int(port)


def drain_server(process: subprocess.Popen, grace_s: float) -> Dict[str, Any]:
    """SIGTERM the server and report how the drain went."""
    started = time.perf_counter()
    process.send_signal(signal.SIGTERM)
    try:
        exit_code = process.wait(timeout=grace_s + 10.0)
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait()
        return {"exit_code": None, "drained": False, "drain_s": None}
    return {
        "exit_code": exit_code,
        "drained": exit_code == 0,
        "drain_s": round(time.perf_counter() - started, 3),
    }


# ----------------------------------------------------------------------
# the run
# ----------------------------------------------------------------------
def run_loadtest(args) -> Dict[str, Any]:
    process = None
    if args.connect:
        host, port_text = args.connect.rsplit(":", 1)
        port = int(port_text)
    else:
        process, host, port = boot_server(args)

    results: List[Optional[ClientResult]] = [None] * args.clients
    try:

        def worker(client_id: int) -> None:
            results[client_id] = run_client(
                client_id, host, port, args.requests, args.timeout_s
            )

        threads = [
            threading.Thread(target=worker, args=(client_id,))
            for client_id in range(args.clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        server_stats: Dict[str, Any] = {}
        try:
            with ServiceClient(host, port, timeout_s=args.timeout_s) as client:
                stats = client.stats()
                server_stats = {
                    "pool": stats.get("pool"),
                    "cache": stats.get("cache"),
                    "breaker": stats.get("breaker"),
                    "requests": stats.get("requests"),
                }
        except Exception as error:  # noqa: BLE001 - server died under load
            server_stats = {"error": f"{type(error).__name__}: {error}"}
    finally:
        drain = (
            drain_server(process, args.grace_s)
            if process is not None
            else {"exit_code": None, "drained": None, "drain_s": None}
        )

    # fold the per-client observations
    latencies: List[float] = []
    statuses: Dict[str, int] = {}
    degraded_codes: Dict[str, int] = {}
    diag_codes: Dict[str, int] = {}
    protocol_failures: List[str] = []
    contract_violations: List[str] = []
    cache_hits = 0
    for result in results:
        assert result is not None
        latencies += result.latencies_s
        protocol_failures += result.protocol_failures
        contract_violations += result.contract_violations
        cache_hits += result.cache_hits
        for table, source in (
            (statuses, result.statuses),
            (degraded_codes, result.degraded_codes),
            (diag_codes, result.diag_codes),
        ):
            for key, count in source.items():
                table[key] = table.get(key, 0) + count

    total = args.clients * args.requests
    answered = len(latencies)
    errors = statuses.get("error", 0)
    degraded = statuses.get("degraded", 0)
    expected_errors = sum(
        1
        for client_id in range(args.clients)
        for index in range(args.requests)
        if MIX[(client_id + index) % len(MIX)] == "oversized"
    )

    failures: List[str] = []
    if protocol_failures:
        failures.append(
            f"{len(protocol_failures)} protocol failure(s): "
            + "; ".join(protocol_failures[:5])
        )
    if contract_violations:
        failures.append(
            f"{len(contract_violations)} contract violation(s): "
            + "; ".join(contract_violations[:5])
        )
    if errors != expected_errors:
        failures.append(
            f"error responses {errors} != intentionally-malformed "
            f"{expected_errors}"
        )
    if process is not None and not drain["drained"]:
        failures.append(f"unclean drain: exit code {drain['exit_code']}")
    if args.crash_rate > 0:
        # crashes may be *recovered* (retry on the respawned worker
        # succeeds) or *exhausted* (degraded RES506); the pool counter
        # proves the injection actually fired either way
        pool_crashes = (server_stats.get("pool") or {}).get("crashes", 0)
        if not pool_crashes and "worker-crash" not in degraded_codes:
            failures.append(
                "crash injection armed but no worker crash observed "
                "(rate too low for this seed?)"
            )

    return {
        "schema": SCHEMA_VERSION,
        "kind": "service-loadtest",
        "python": platform.python_version(),
        "config": {
            "clients": args.clients,
            "requests_per_client": args.requests,
            "workers": args.workers,
            "crash_rate": args.crash_rate,
            "seed": args.seed,
            "timeout_s": args.timeout_s,
        },
        "results": {
            "requests": total,
            "answered": answered,
            "protocol_failures": len(protocol_failures),
            "statuses": dict(sorted(statuses.items())),
            "error_rate": round(errors / total, 4) if total else None,
            "degraded_fraction": (
                round(degraded / answered, 4) if answered else None
            ),
            "degraded_codes": dict(sorted(degraded_codes.items())),
            "diagnostics": dict(sorted(diag_codes.items())),
            "cache_hits": cache_hits,
            "latency_s": {
                "p50": round(percentile(latencies, 50), 6) if latencies else None,
                "p99": round(percentile(latencies, 99), 6) if latencies else None,
                "max": round(max(latencies), 6) if latencies else None,
                "mean": (
                    round(sum(latencies) / len(latencies), 6)
                    if latencies
                    else None
                ),
            },
            "server": server_stats,
            "drain": drain,
        },
        "failures": failures,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.loadtest", description=__doc__.split("\n")[0]
    )
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--requests", type=int, default=25)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--crash-rate",
        type=float,
        default=0.0,
        dest="crash_rate",
        help="serve.worker crash-injection probability (0 disables)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--timeout-s", type=float, default=30.0, dest="timeout_s"
    )
    parser.add_argument("--grace-s", type=float, default=10.0, dest="grace_s")
    parser.add_argument(
        "--connect",
        metavar="HOST:PORT",
        default=None,
        help="drive an externally-booted server (skips boot + drain check)",
    )
    parser.add_argument(
        "--emit",
        metavar="FILE",
        default=None,
        help="write the schema-v6 benchmark record as JSON",
    )
    args = parser.parse_args(argv)

    report = run_loadtest(args)
    results = report["results"]
    print(
        f"requests {results['requests']}, answered {results['answered']}, "
        f"protocol failures {results['protocol_failures']}"
    )
    print(
        f"statuses {results['statuses']}, degraded codes "
        f"{results['degraded_codes']}, cache hits {results['cache_hits']}"
    )
    latency = results["latency_s"]
    print(
        f"latency p50 {latency['p50']}s p99 {latency['p99']}s "
        f"max {latency['max']}s"
    )
    print(f"drain {results['drain']}")
    if args.emit:
        with open(args.emit, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.emit}")
    if report["failures"]:
        for failure in report["failures"]:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
