#!/usr/bin/env python3
"""Regenerate the measured tables of EXPERIMENTS.md.

Run:  python -m benchmarks.make_report

Prints (to stdout) the B01-B04 tables exactly as recorded in
EXPERIMENTS.md, recomputed from scratch, so the document can be audited or
refreshed after changes.

``--json PATH`` additionally writes the machine-readable timing document
used by the regression harness (same schema as ``benchmarks.regress
--emit``; see ``python -m benchmarks.regress --help``).
"""

from __future__ import annotations

import argparse
import time

from benchmarks.test_ablation import CORPUS as ABLATION_CORPUS
from benchmarks.test_ablation import (
    _DisableMonotonic,
    _DisableNonlinear,
    _DisablePeriodic,
    census,
)
from benchmarks.test_coverage import (
    CORPUS,
    classical_coverage,
    classical_plus_patterns,
    unified_coverage,
)
from benchmarks.test_dependence_precision import WORKLOADS, _edge_stats, _LinearOnly
from benchmarks.workloads import deep_chain_loop, dependence_workload, straightline_iv_loop
from repro.analysis.loops import find_loops
from repro.baseline.classical import classical_induction_variables
from repro.core.driver import classify_function
from repro.dependence.graph import build_dependence_graph
from repro.frontend.source import compile_source
from repro.pipeline import analyze


def b01() -> None:
    print("## B01 — linear scaling vs. iterative baseline")
    print(f"{'family size':>12} | {'graph size':>10} | {'time/node':>10}")
    for size in (4, 16, 64, 256):
        program = analyze(straightline_iv_loop(size))
        start = time.perf_counter()
        for _ in range(3):
            result = classify_function(program.ssa)
        elapsed = (time.perf_counter() - start) / 3
        graph_size = result.loops["L1"].graph_size
        print(f"{size:>12} | {graph_size:>10} | {elapsed / graph_size:>10.2e}")
    print()
    print(f"{'chain depth':>12} | {'classical passes':>16} | {'stmts visited':>14}")
    for depth in (2, 8, 32, 128):
        function = compile_source(deep_chain_loop(depth))
        loop = find_loops(function).loop_of_header("L1")
        result = classical_induction_variables(function, loop)
        print(f"{depth:>12} | {result.passes:>16} | {result.statements_visited:>14}")
    print()


def b02() -> None:
    print("## B02 — coverage: classical vs. +patterns vs. unified")
    totals = [0, 0, 0]
    for source in CORPUS:
        a = len(classical_coverage(source))
        b = len(classical_plus_patterns(source))
        unified = unified_coverage(source)
        c = len(
            unified["iv"] | unified["wrap"] | unified["periodic"] | unified["monotonic"]
        )
        totals[0] += a
        totals[1] += b
        totals[2] += c
    print(f"  totals over {len(CORPUS)} programs: "
          f"classical={totals[0]}  +patterns={totals[1]}  unified={totals[2]}")
    print()


def b03() -> None:
    print("## B03 — dependence precision (edges, refined, exact)")
    for kind in WORKLOADS:
        program = analyze(dependence_workload(kind))
        with _LinearOnly():
            baseline = build_dependence_graph(program.result)
        full = build_dependence_graph(program.result)
        print(f"  {kind:>11}: linear-only {_edge_stats(baseline)}  |  "
              f"unified {_edge_stats(full)}")
    print()


def b04() -> None:
    print("## B04 — ablation census")
    rows = [("full", census(ABLATION_CORPUS))]
    with _DisableNonlinear():
        rows.append(("-nonlinear", census(ABLATION_CORPUS)))
    with _DisableMonotonic():
        rows.append(("-monotonic", census(ABLATION_CORPUS)))
    with _DisablePeriodic():
        rows.append(("-periodic", census(ABLATION_CORPUS)))
    keys = list(rows[0][1])
    print("  " + f"{'stage':>12} | " + " | ".join(f"{k:>12}" for k in keys))
    for label, row in rows:
        print("  " + f"{label:>12} | " + " | ".join(f"{row[k]:>12}" for k in keys))
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write machine-readable timings (benchmarks.regress schema)",
    )
    options = parser.parse_args()
    b01()
    b02()
    b03()
    b04()
    if options.json:
        from benchmarks.regress import measure, write_document

        write_document(measure(), options.json)
        print(f"wrote {options.json}")


if __name__ == "__main__":
    main()
