#!/usr/bin/env python3
"""Benchmark regression harness: measure, record, and compare.

The paper's headline performance claim (section 7) is that SSA-based
classification is *linear in the size of the SSA graph*.  This harness
turns that claim into a checked-in, machine-readable baseline:

* ``python -m benchmarks.regress --emit BENCH_0001.json`` measures the
  tracked workloads (wall time of classification, of the whole pipeline,
  graph size, and time per graph node) and writes them as JSON;
* ``python -m benchmarks.regress --check BENCH_0001.json`` re-measures and
  **fails (exit 1) when any tracked metric regresses more than the
  threshold** (default 1.5x) against the checked-in baseline.

Timing uses best-of-N (default 5) to suppress scheduler noise; the 1.5x
threshold leaves headroom for machine-to-machine variance while still
catching accidentally super-linear hot paths.

Schema v2 additionally records, per workload, a ``phases`` breakdown
(seconds per pipeline span, from one run under ``repro.obs`` tracing) and
a ``counters`` snapshot (classification distribution, Tarjan graph sizes,
Expr memo hits).  Both are informational: the tracked wall-time metrics
are still measured with observability off, and ``--check`` only compares
the metrics present in the *baseline*, so v1 baselines keep working.

Schema v3 adds the ``ranges_s`` tracked metric (wall time of
``repro.ranges.compute_ranges`` over the classified result) and runs the
observed pass with ``ranges=True`` so the ``ranges`` span appears in the
``phases`` breakdown.  v1/v2 baselines lack ``ranges_s`` and keep
passing ``--check`` unchanged (the comparison is baseline-driven).

Schema v4 measures ``pipeline_s`` **with ranges enabled**
(``analyze(source, ranges=True)``) -- the "ranges are free" claim is
that the full pipeline including value ranges now beats the old
pipeline without them -- and the observed run's ``counters`` pick up
the new ``ranges.fixpoint.*`` visit counters and ``interval.cache.*``
interning stats.  v1-v3 baselines keep passing ``--check`` unchanged
(v4 current numbers are compared against whatever metrics the baseline
recorded, and the only redefined metric, ``pipeline_s``, got *larger*
in scope -- a pass against an old baseline is conservative).

Schema v5 adds the ``invariants_s`` tracked metric (wall time of
``repro.invariants.compute_invariants`` over the classified result:
path enumeration, symbolic execution, and nullspace-based polynomial
invariant generation) and runs the observed pass with
``invariants=True`` so the ``invariants`` span appears in the
``phases`` breakdown and the ``invariants.*`` counters in ``counters``.
``pipeline_s`` keeps its v4 definition (``analyze(source,
ranges=True)``), so v4 baselines keep passing ``--check`` unchanged.

``--compare OLD.json NEW.json`` prints a per-workload percent-delta
table of two recorded baselines (no re-measuring) for the headline
metrics; ``--only SUBSTRING`` restricts ``--emit``/``--check`` to
matching workloads (the CI perf-smoke job uses it to keep the gate
fast).
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from benchmarks.workloads import deep_chain_loop, mixed_class_loop, straightline_iv_loop
from repro.core.driver import classify_function
from repro.invariants import compute_invariants
from repro.obs import observing
from repro.pipeline import analyze
from repro.ranges import compute_ranges

SCHEMA_VERSION = 5

#: metrics compared by ``--check`` (lower is better for all of them)
TRACKED_METRICS = (
    "classify_s", "pipeline_s", "time_per_node_s", "ranges_s", "invariants_s"
)

#: structural metrics that must match *exactly* between baseline and current
EXACT_METRICS = ("graph_size",)


def workloads() -> List[Tuple[str, str]]:
    """The tracked (name, source) pairs.

    These are the B01 scaling families at their largest sizes -- the
    programs whose "time per node stays flat" assertion the paper's
    linearity claim rests on -- plus the mixed-class family that exercises
    every classification the paper defines.
    """
    return [
        ("straightline_iv_loop/64", straightline_iv_loop(64)),
        ("straightline_iv_loop/256", straightline_iv_loop(256)),
        ("deep_chain_loop/64", deep_chain_loop(64)),
        ("deep_chain_loop/128", deep_chain_loop(128)),
        ("mixed_class_loop/200", mixed_class_loop(1, 200)),
        ("mixed_class_loop/800", mixed_class_loop(1, 800)),
    ]


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    return best


def _observe_workload(source: str) -> Tuple[Dict[str, float], Dict[str, int]]:
    """One traced + metered run: (seconds per span name, counter snapshot)."""
    with observing() as obs:
        analyze(source, ranges=True, invariants=True)
    phases = {name: round(total, 9) for name, total in obs.tracer.phase_totals().items()}
    counters = obs.metrics.snapshot()["counters"]
    return phases, counters


def measure(repeats: int = 5, only: Optional[str] = None) -> Dict:
    """Measure every tracked workload; returns the JSON-serializable report.

    The tracked wall-time metrics are measured with observability *off*
    (the instrumented hot paths pay only their disabled-hook cost); the
    ``phases``/``counters`` breakdown comes from one extra observed run.
    ``only`` restricts measurement to workloads whose name contains it.
    """
    results: Dict[str, Dict] = {}
    for name, source in workloads():
        if only and only not in name:
            continue
        program = analyze(source)  # warm compile; classify_s times analysis only
        classify_s = _best_of(lambda: classify_function(program.ssa), repeats)
        pipeline_s = _best_of(
            lambda: analyze(source, ranges=True), max(3, repeats * 2 // 3)
        )
        result = classify_function(program.ssa)
        graph_size = sum(s.graph_size for s in result.loops.values())
        ranges_s = _best_of(lambda: compute_ranges(result), repeats)
        invariants_s = _best_of(lambda: compute_invariants(result), repeats)
        phases, counters = _observe_workload(source)
        results[name] = {
            "classify_s": classify_s,
            "pipeline_s": pipeline_s,
            "graph_size": graph_size,
            "ranges_s": ranges_s,
            "invariants_s": invariants_s,
            "time_per_node_s": classify_s / max(1, graph_size),
            "phases": phases,
            "counters": counters,
        }
    return {
        "schema": SCHEMA_VERSION,
        "repeats": repeats,
        "python": platform.python_version(),
        "workloads": results,
    }


def compare(
    current: Dict, baseline: Dict, threshold: float = 1.5, only: Optional[str] = None
) -> List[str]:
    """Compare a fresh measurement against a baseline report.

    Returns a list of human-readable regression messages (empty = pass).
    Prints a per-workload ratio table to stdout as a side effect.
    ``only`` restricts the comparison to matching baseline workloads.
    """
    failures: List[str] = []
    base_workloads = {
        name: data
        for name, data in baseline.get("workloads", {}).items()
        if not only or only in name
    }
    cur_workloads = current.get("workloads", {})
    header = f"{'workload':>26} | " + " | ".join(f"{m:>16}" for m in TRACKED_METRICS)
    print(header)
    print("-" * len(header))
    for name, base in base_workloads.items():
        cur = cur_workloads.get(name)
        if cur is None:
            failures.append(f"{name}: workload missing from current measurement")
            continue
        cells = []
        for metric in TRACKED_METRICS:
            base_value = base.get(metric)
            cur_value = cur.get(metric)
            if not base_value or cur_value is None:
                cells.append(f"{'n/a':>16}")
                continue
            ratio = cur_value / base_value
            cells.append(f"{cur_value:>9.2e} {ratio:>5.2f}x")
            if ratio > threshold:
                failures.append(
                    f"{name}: {metric} regressed {ratio:.2f}x "
                    f"({base_value:.3e} -> {cur_value:.3e}, threshold {threshold}x)"
                )
        for metric in EXACT_METRICS:
            if metric in base and base[metric] != cur.get(metric):
                failures.append(
                    f"{name}: {metric} changed {base[metric]} -> {cur.get(metric)} "
                    "(structural metrics must be stable)"
                )
        print(f"{name:>26} | " + " | ".join(cells))
    return failures


#: metrics shown by ``--compare`` (the headline wall-time numbers)
DIFF_METRICS = ("pipeline_s", "classify_s", "ranges_s", "invariants_s")

#: counter families whose per-workload deltas ``--compare`` also reports
#: (work counters: a wall-time delta with a matching work-counter delta is
#: an algorithmic change, without one it is probably noise)
DIFF_COUNTER_PREFIXES = (
    "ranges.fixpoint.",
    "expr.cache.",
    "interval.cache.",
    "dependence.pairs",
    "tarjan.",
)


def _counter_delta_lines(old_counters: Dict, new_counters: Dict) -> List[str]:
    """Indented delta rows for the tracked counter families (changed only)."""
    lines: List[str] = []
    for name in sorted(set(old_counters) | set(new_counters)):
        if not any(name.startswith(prefix) for prefix in DIFF_COUNTER_PREFIXES):
            continue
        old_value = old_counters.get(name)
        new_value = new_counters.get(name)
        if old_value == new_value:
            continue
        if old_value is None or new_value is None:
            shown = f"{old_value} -> {new_value}"
        elif old_value:
            delta = (new_value / old_value - 1.0) * 100.0
            shown = f"{old_value} -> {new_value} ({delta:+.1f}%)"
        else:
            shown = f"{old_value} -> {new_value}"
        lines.append(f"{'':>28}counter {name:<28} {shown}")
    return lines


def diff_table(old: Dict, new: Dict) -> List[str]:
    """Per-workload percent-delta lines between two recorded reports.

    Negative percentages are improvements (new is faster).  Workloads or
    metrics absent from either side print ``n/a``.  Below each workload's
    wall-time row, changed work counters from the tracked families
    (``ranges.fixpoint.*``, ``expr.cache.*``, ...) get their own delta
    rows.  Returns the lines so tests can assert on them; the caller
    prints.
    """
    old_workloads = old.get("workloads", {})
    new_workloads = new.get("workloads", {})
    header = f"{'workload':>26} | " + " | ".join(f"{m:>20}" for m in DIFF_METRICS)
    lines = [header, "-" * len(header)]
    for name in old_workloads:
        old_metrics = old_workloads[name]
        new_metrics = new_workloads.get(name, {})
        cells = []
        for metric in DIFF_METRICS:
            old_value = old_metrics.get(metric)
            new_value = new_metrics.get(metric)
            if not old_value or new_value is None:
                cells.append(f"{'n/a':>20}")
                continue
            delta = (new_value / old_value - 1.0) * 100.0
            cells.append(f"{new_value:>9.2e} {delta:>+7.1f}%")
        lines.append(f"{name:>26} | " + " | ".join(cells))
        lines.extend(
            _counter_delta_lines(
                old_metrics.get("counters", {}), new_metrics.get("counters", {})
            )
        )
    for name in new_workloads:
        if name not in old_workloads:
            lines.append(f"{name:>26} | (not in old baseline)")
    return lines


def write_document(report: Dict, path: str) -> None:
    """Write a measurement document as stable, diff-friendly JSON."""
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks.regress", description=__doc__.splitlines()[0]
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--emit", metavar="PATH", help="measure and write a baseline JSON")
    mode.add_argument("--check", metavar="PATH", help="measure and compare against a baseline JSON")
    mode.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                      help="print a percent-delta table between two recorded "
                           "baseline JSONs (no re-measuring)")
    parser.add_argument("--threshold", type=float, default=1.5,
                        help="max allowed slowdown ratio per metric (default 1.5)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="best-of-N timing repeats (default 5; --check "
                             "defaults to the baseline's recorded repeats)")
    parser.add_argument("--only", metavar="SUBSTRING", default=None,
                        help="restrict --emit/--check to workloads whose name "
                             "contains SUBSTRING")
    args = parser.parse_args(argv)

    if args.compare:
        try:
            with open(args.compare[0]) as handle:
                old = json.load(handle)
            with open(args.compare[1]) as handle:
                new = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            print(f"error: cannot read baseline: {error}", file=sys.stderr)
            return 2
        for line in diff_table(old, new):
            print(line)
        return 0

    if args.emit:
        report = measure(repeats=args.repeats or 5, only=args.only)
        write_document(report, args.emit)
        print(f"wrote baseline for {len(report['workloads'])} workloads to {args.emit}")
        return 0

    try:
        with open(args.check) as handle:
            baseline = json.load(handle)
    except OSError as error:
        print(f"error: cannot read baseline {args.check}: {error}", file=sys.stderr)
        return 2
    except json.JSONDecodeError as error:
        print(f"error: baseline {args.check} is not valid JSON: {error}", file=sys.stderr)
        return 2
    # measure with the same best-of-N protocol the baseline was recorded
    # with, so both sides see the same noise floor
    report = measure(repeats=args.repeats or baseline.get("repeats", 5), only=args.only)
    failures = compare(report, baseline, threshold=args.threshold, only=args.only)
    if failures:
        print("\nREGRESSIONS:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nok: no metric regressed more than {args.threshold}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
