"""B04: ablation of the recognizer stages.

DESIGN.md calls out the classifier's staged structure: linear SCR rules,
the nonlinear (polynomial/geometric) solver, the periodic rotation
recognizer and the monotonic fallback.  This benchmark disables each
optional stage in turn and reports (a) what is lost (classes degrade to
Unknown -- never to something wrong) and (b) what each stage costs.
"""

from typing import Dict

import pytest

pytestmark = pytest.mark.bench

import repro.core.scr as scr_module
from benchmarks.workloads import mixed_class_loop
from repro.core.classes import (
    InductionVariable,
    Invariant,
    Monotonic,
    Periodic,
    Unknown,
    WrapAround,
)
from repro.pipeline import analyze

CORPUS = [mixed_class_loop(seed, 12) for seed in range(10)]


class _DisableNonlinear:
    """Make the affine-recurrence solver refuse everything nonlinear."""

    def __enter__(self):
        self._original = scr_module.solve_affine_recurrence

        def linear_only(multiplier, addend, init):
            if multiplier == 1 and addend.is_invariant:
                return self._original(multiplier, addend, init)
            return None

        scr_module.solve_affine_recurrence = linear_only
        return self

    def __exit__(self, *exc):
        scr_module.solve_affine_recurrence = self._original
        return False


class _DisableMonotonic:
    def __enter__(self):
        self._original = scr_module._classify_monotonic

        def no_monotonic(loop, members, header, carried_effects, expander, init, ctx=None):
            return {m: Unknown("monotonic stage disabled") for m in members}

        scr_module._classify_monotonic = no_monotonic
        return self

    def __exit__(self, *exc):
        scr_module._classify_monotonic = self._original
        return False


class _DisablePeriodic:
    def __enter__(self):
        self._original = scr_module._classify_periodic_family

        def no_periodic(members, header_phis, ctx):
            return {m: Unknown("periodic stage disabled") for m in members}

        scr_module._classify_periodic_family = no_periodic
        return self

    def __exit__(self, *exc):
        scr_module._classify_periodic_family = self._original
        return False


def census(sources) -> Dict[str, int]:
    counts = {"iv_linear": 0, "iv_nonlinear": 0, "wrap": 0, "periodic": 0,
              "monotonic": 0, "invariant": 0, "unknown": 0}
    for source in sources:
        program = analyze(source)
        for cls in program.result.loops["L1"].classifications.values():
            if isinstance(cls, InductionVariable):
                counts["iv_linear" if cls.is_linear else "iv_nonlinear"] += 1
            elif isinstance(cls, WrapAround):
                counts["wrap"] += 1
            elif isinstance(cls, Periodic):
                counts["periodic"] += 1
            elif isinstance(cls, Monotonic):
                counts["monotonic"] += 1
            elif isinstance(cls, Invariant):
                counts["invariant"] += 1
            else:
                counts["unknown"] += 1
    return counts


def test_ablation_census():
    full = census(CORPUS)
    with _DisableNonlinear():
        no_nonlinear = census(CORPUS)
    with _DisableMonotonic():
        no_monotonic = census(CORPUS)
    with _DisablePeriodic():
        no_periodic = census(CORPUS)

    print("\nB04 ablation census (classifications over the corpus):")
    header = f"{'stage':>14} | " + " | ".join(f"{k:>12}" for k in full)
    print("  " + header)
    for label, row in [
        ("full", full),
        ("-nonlinear", no_nonlinear),
        ("-monotonic", no_monotonic),
        ("-periodic", no_periodic),
    ]:
        print(f"  {label:>14} | " + " | ".join(f"{row[k]:>12}" for k in full))

    # each stage uniquely contributes its class; disabling one only ever
    # moves mass down the lattice (nonlinear IVs degrade to the monotonic
    # fallback when their direction is still provable, else to unknown)
    assert no_nonlinear["iv_nonlinear"] == 0
    assert (
        no_nonlinear["unknown"] + no_nonlinear["monotonic"]
        > full["unknown"] + full["monotonic"]
    )
    assert no_monotonic["monotonic"] == 0
    assert no_monotonic["unknown"] > full["unknown"]
    assert no_periodic["periodic"] == 0
    assert no_periodic["unknown"] > full["unknown"]
    # stages are independent: the linear core is untouched by all ablations
    assert no_nonlinear["iv_linear"] == full["iv_linear"]
    assert no_monotonic["iv_linear"] == full["iv_linear"]
    assert no_periodic["iv_linear"] == full["iv_linear"]


@pytest.mark.parametrize(
    "variant", ["full", "no_nonlinear", "no_monotonic", "no_periodic"]
)
def test_ablation_speed(benchmark, variant):
    """Per-stage cost on the mixed corpus."""
    source = CORPUS[0]

    if variant == "full":
        program = benchmark(analyze, source)
    elif variant == "no_nonlinear":
        with _DisableNonlinear():
            program = benchmark(analyze, source)
    elif variant == "no_monotonic":
        with _DisableMonotonic():
            program = benchmark(analyze, source)
    else:
        with _DisablePeriodic():
            program = benchmark(analyze, source)
    assert program.result.loops
