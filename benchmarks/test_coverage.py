"""B02: the unified algorithm classifies strictly more variables.

"Many compilers do not include these recognition algorithms at all,
ignoring potential optimization opportunities" (section 1); "while some of
these cases have been classified before, they were done by special case
analysis instead of in a unified framework" (section 7).

On a generated corpus mixing all variable classes, we count source
variables usefully classified by (a) the classical basic+derived detector,
(b) classical + the ad hoc wrap-around pattern matcher, and (c) the
unified SSA algorithm.  The claim reproduced: coverage(a) <= coverage(b)
< coverage(c), with (c) also labeling the classes (a)/(b) cannot name at
all (polynomial, geometric, periodic, monotonic).
"""

from typing import Dict, Set

import pytest

pytestmark = pytest.mark.bench

from benchmarks.workloads import mixed_class_loop
from repro.analysis.loops import find_loops
from repro.baseline.classical import classical_induction_variables
from repro.baseline.patterns import find_wraparound_patterns
from repro.core.classes import (
    InductionVariable,
    Invariant,
    Monotonic,
    Periodic,
    Unknown,
    WrapAround,
)
from repro.frontend.source import compile_source
from repro.pipeline import analyze

CORPUS = [mixed_class_loop(seed, 12) for seed in range(20)]


def classical_coverage(source: str) -> Set[str]:
    function = compile_source(source)
    loop = find_loops(function).loop_of_header("L1")
    result = classical_induction_variables(function, loop)
    return set(result.all_ivs())


def classical_plus_patterns(source: str) -> Set[str]:
    function = compile_source(source)
    loop = find_loops(function).loop_of_header("L1")
    ivs = classical_induction_variables(function, loop)
    covered = set(ivs.all_ivs())
    covered |= {p.var for p in find_wraparound_patterns(function, loop, ivs)}
    return covered


def unified_coverage(source: str) -> Dict[str, Set[str]]:
    """Source variables per classification kind (unified algorithm)."""
    program = analyze(source)
    summary = program.result.loops["L1"]
    by_kind: Dict[str, Set[str]] = {
        "iv": set(), "wrap": set(), "periodic": set(), "monotonic": set(),
        "invariant": set(), "unknown": set(),
    }
    for name, cls in summary.classifications.items():
        var = program.ssa_info.origin.get(name, name)
        if var.startswith("$"):
            continue
        if isinstance(cls, InductionVariable):
            by_kind["iv"].add(var)
        elif isinstance(cls, WrapAround):
            by_kind["wrap"].add(var)
        elif isinstance(cls, Periodic):
            by_kind["periodic"].add(var)
        elif isinstance(cls, Monotonic):
            by_kind["monotonic"].add(var)
        elif isinstance(cls, Invariant):
            by_kind["invariant"].add(var)
        else:
            by_kind["unknown"].add(var)
    return by_kind


def test_unified_strictly_more_coverage():
    rows = []
    total_classical = total_patterns = total_unified = 0
    for source in CORPUS:
        classical = classical_coverage(source)
        with_patterns = classical_plus_patterns(source)
        unified = unified_coverage(source)
        unified_covered = (
            unified["iv"] | unified["wrap"] | unified["periodic"] | unified["monotonic"]
        )
        assert classical <= with_patterns
        # soundness of the comparison: whatever the classical detector
        # classifies, the unified algorithm classifies too
        assert classical <= unified_covered | unified["invariant"], (
            classical - unified_covered, source
        )
        total_classical += len(classical)
        total_patterns += len(with_patterns)
        total_unified += len(unified_covered)
        rows.append((len(classical), len(with_patterns), len(unified_covered)))

    print("\nB02 coverage (variables classified per program):")
    print("  classical | +patterns | unified")
    for a, b, c in rows:
        print(f"      {a:3d}   |   {b:3d}    |  {c:3d}")
    print(f"  totals: {total_classical} | {total_patterns} | {total_unified}")
    assert total_unified > total_patterns >= total_classical


def test_unified_names_the_extra_classes():
    counts = {"periodic": 0, "monotonic": 0, "wrap": 0}
    for source in CORPUS:
        unified = unified_coverage(source)
        for key in counts:
            counts[key] += len(unified[key])
    print("\nB02 extra classes found:", counts)
    assert counts["periodic"] > 0
    assert counts["monotonic"] > 0
    assert counts["wrap"] > 0


@pytest.mark.parametrize("seed", [0, 7, 13])
def test_unified_analysis_speed(benchmark, seed):
    source = mixed_class_loop(seed, 12)
    program = benchmark(analyze, source)
    assert program.result.loops["L1"].classifications
