"""B03: dependence testing with the extended classes is more precise.

Section 6's motivation: with only linear IV analysis, subscripts that are
periodic/monotonic/wrap-around classify as *unknown* and force fully
conservative ``(*)`` dependences.  With the paper's classes the same pairs
get refined directions ('!=' for periodic, '='/'<=' for monotonic, flagged
steady-state distances for wrap-around) -- the difference that legalizes
the relaxation/pack/cylinder optimizations the paper describes.

The "linear-only analyzer" ablation is realized by literally downgrading
non-linear subscript descriptors to UNKNOWN before solving.
"""

from typing import List, Tuple

import pytest

pytestmark = pytest.mark.bench

import repro.dependence.testing as testing_module
from benchmarks.workloads import dependence_workload
from repro.dependence.direction import ANY, EQ
from repro.dependence.graph import build_dependence_graph
from repro.dependence.subscript import SubscriptDescriptor, SubscriptKind
from repro.pipeline import analyze

WORKLOADS = ["periodic", "monotonic", "wraparound", "linear"]


class _LinearOnly:
    """Context manager: degrade non-linear subscript kinds to UNKNOWN."""

    def __enter__(self):
        self._original = testing_module.describe_subscript

        def downgraded(analysis, value, block):
            descriptor = self._original(analysis, value, block)
            if descriptor.kind in (
                SubscriptKind.PERIODIC,
                SubscriptKind.MONOTONIC,
                SubscriptKind.WRAPAROUND,
            ):
                return SubscriptDescriptor(
                    SubscriptKind.UNKNOWN, descriptor.loop_chain,
                    reason="linear-only ablation",
                )
            return descriptor

        testing_module.describe_subscript = downgraded
        return self

    def __exit__(self, *exc):
        testing_module.describe_subscript = self._original
        return False


def _edge_stats(graph) -> Tuple[int, int, int]:
    """(edges, refined edges, exact edges): refined = tighter than (*...*)."""
    refined = 0
    exact = 0
    for edge in graph.edges:
        if edge.result.exact:
            exact += 1
        star = all(
            element in (ANY, frozenset({0, 1}))
            for vector in edge.result.directions
            for element in vector.elements
        ) and not edge.result.distance
        if edge.result.directions and not star:
            refined += 1
    return len(graph.edges), refined, exact


def test_extended_classes_refine_dependences():
    print("\nB03 dependence precision (edges / refined / exact):")
    rows = {}
    for kind in WORKLOADS:
        program = analyze(dependence_workload(kind))
        with _LinearOnly():
            baseline = build_dependence_graph(program.result)
        full = build_dependence_graph(program.result)
        rows[kind] = (_edge_stats(baseline), _edge_stats(full))
        print(f"  {kind:>11}: linear-only {rows[kind][0]}  |  unified {rows[kind][1]}")

    # periodic: the unified analysis excludes '=' (forward half of '!=')
    base_stats, full_stats = rows["periodic"]
    assert full_stats[1] > base_stats[1] or full_stats[2] > base_stats[2]

    # monotonic: the B flow dependence becomes exact '='
    base_stats, full_stats = rows["monotonic"]
    assert full_stats[2] > base_stats[2]

    # wrap-around: the unified analysis produces an exact distance flagged
    # with holds_after; linear-only cannot
    program = analyze(dependence_workload("wraparound"))
    full = build_dependence_graph(program.result)
    assert any(e.result.holds_after == 1 and e.result.distance for e in full.edges)
    with _LinearOnly():
        baseline = build_dependence_graph(program.result)
    assert all(e.result.distance is None for e in baseline.edges)

    # linear workloads are identical under both (sanity)
    base_stats, full_stats = rows["linear"]
    assert base_stats == full_stats


def test_periodic_legalizes_parallel_inner_loop():
    """The relaxation pattern: with periodic analysis, the 2-D accesses
    A[j, x] / A[jold, x] carry no same-iteration dependence -- the inner
    loop is parallel, which is what the paper's flip-flop discussion is
    for."""
    source = (
        "j = 1\njold = 2\nL1: for it = 1 to t do\n  L2: for x = 1 to n do\n"
        "    A[j, x] = A[jold, x] + 1\n  endfor\n"
        "  jt = jold\n  jold = j\n  j = jt\nendfor"
    )
    program = analyze(source)
    full = build_dependence_graph(program.result)
    cross = [e for e in full.edges if e.source != e.sink]
    assert cross
    for edge in cross:
        for vector in edge.result.directions:
            assert vector.elements[0] != EQ  # no same-outer-iteration dep

    with _LinearOnly():
        baseline = build_dependence_graph(program.result)
    baseline_cross = [e for e in baseline.edges if e.source != e.sink]
    # the linear-only analyzer cannot exclude the same-iteration dependence
    assert any(
        any(0 in element for vector in e.result.directions for element in vector.elements[:1])
        for e in baseline_cross
    )


@pytest.mark.parametrize("kind", WORKLOADS)
def test_dependence_testing_speed(benchmark, kind):
    program = analyze(dependence_workload(kind))
    graph = benchmark(build_dependence_graph, program.result)
    assert graph.refs
