"""Benchmarks over the paper's figures (experiments E01-E15).

Each benchmark runs the full pipeline (parse -> SSA -> classify) on one of
the paper's worked examples, asserts the paper's stated result, and times
it.  This is the per-figure harness DESIGN.md's experiment index points at;
EXPERIMENTS.md records paper-vs-measured for each id.
"""

import pytest

pytestmark = pytest.mark.bench

from repro.core.classes import (
    BranchDependent,
    InductionVariable,
    Monotonic,
    Periodic,
    WrapAround,
)
from repro.pipeline import analyze

FIGURES = {
    "E01_fig1_linear_family": (
        "j = n1\nL7: loop\n  i = j + c1\n  j = i + k1\n"
        "  if j > 100000 then\n    break\n  endif\nendloop"
    ),
    "E02_fig3_conditional_equal": (
        "i = 1\nL8: loop\n  if x > 0 then\n    i = i + 2\n  else\n    i = i + 2\n  endif\n"
        "  if i > 100 then\n    break\n  endif\nendloop"
    ),
    "E03_fig4_wraparound": (
        "k = k1\nj = j1\ni = 1\nL10: loop\n  A[k] = 0\n  k = j\n  j = i\n  i = i + 1\n"
        "  if i > n then\n    break\n  endif\nendloop"
    ),
    "E04_fig5_periodic": (
        "j = j1\nk = k1\nl = l1\nL13: for it = 1 to n do\n"
        "  t = j\n  j = k\n  k = l\n  l = t\n  A[j] = 0\nendfor"
    ),
    "E05_l14_polynomial_geometric": (
        "j = 1\nk = 1\nl = 1\nm = 0\nL14: for i = 1 to n do\n"
        "  j = j + i\n  k = k + j + 1\n  l = l * 2 + 1\n  m = 3 * m + 2 * i + 1\nendfor\nreturn j"
    ),
    "E07_fig6_monotonic": (
        "k = 0\nL16: for i = 1 to n do\n  if A[i] > 0 then\n    k = k + 1\n"
        "  else\n    k = k + 2\n  endif\n  B[k] = i\nendfor"
    ),
    "E08_fig7_8_nested": (
        "k = 0\nL17: loop\n  i = 1\n  L18: loop\n    k = k + 2\n"
        "    if i > 100 then\n      break\n    endif\n    i = i + 1\n  endloop\n"
        "  k = k + 2\n  if k > 1000000 then\n    break\n  endif\nendloop"
    ),
    "E09_fig9_triangular": (
        "j = 0\nL19: for i = 1 to n do\n  j = j + i\n"
        "  L20: for kk = 1 to i do\n    j = j + 1\n  endfor\nendfor"
    ),
    "E10_fig10_mixed_monotonic": (
        "k = 0\nL15: for i = 1 to n do\n  F[k] = A[i]\n  if A[i] > 0 then\n"
        "    C[k] = D[i]\n    k = k + 1\n    B[k] = A[i]\n    E[i] = B[k]\n  endif\n"
        "  G[i] = F[k]\nendfor"
    ),
}

EXPECTED_CLASS = {
    "E01_fig1_linear_family": ("j", "L7", InductionVariable),
    "E02_fig3_conditional_equal": ("i", "L8", InductionVariable),
    "E03_fig4_wraparound": ("k", "L10", WrapAround),
    "E04_fig5_periodic": ("j", "L13", Periodic),
    "E05_l14_polynomial_geometric": ("k", "L14", InductionVariable),
    "E07_fig6_monotonic": ("k", "L16", BranchDependent),
    "E08_fig7_8_nested": ("k", "L17", InductionVariable),
    "E09_fig9_triangular": ("j", "L19", InductionVariable),
    "E10_fig10_mixed_monotonic": ("k", "L15", BranchDependent),
}


@pytest.mark.parametrize("figure", sorted(FIGURES))
def test_figure_pipeline(benchmark, figure):
    source = FIGURES[figure]
    var, loop, expected = EXPECTED_CLASS[figure]

    program = benchmark(analyze, source)
    cls = program.classification(program.ssa_name(var, loop))
    assert isinstance(cls, expected), f"{figure}: {cls.describe()}"


def test_e12_dependence_translation(benchmark):
    """E12: the L22 periodic dependence ('=' -> '!=') end to end."""
    from repro.dependence.direction import EQ
    from repro.dependence.graph import build_dependence_graph

    source = (
        "j = 1\nk = 2\nl = 3\nL22: for it = 1 to n do\n  A[2 * j] = A[2 * k] + 1\n"
        "  temp = j\n  j = k\n  k = l\n  l = temp\nendfor"
    )

    def run():
        program = analyze(source)
        return build_dependence_graph(program.result)

    graph = benchmark(run)
    cross = [e for e in graph.edges if e.source != e.sink]
    assert cross
    assert all(v.elements[0] != EQ for e in cross for v in e.result.directions)


def test_e13_normalization_invariance(benchmark):
    """E13: L23/L24 and its normalized form produce identical directions."""
    from repro.dependence.graph import DependenceKind, build_dependence_graph

    original = (
        "L23: for i = 1 to n do\n  L24: for j = i + 1 to n do\n"
        "    A[i, j] = A[i - 1, j] + 1\n  endfor\nendfor"
    )
    normalized = (
        "L23: for i = 1 to n do\n  L24: for j = 1 to n - i do\n"
        "    A[i, j + i] = A[i - 1, j + i] + 1\n  endfor\nendfor"
    )

    def run():
        g1 = build_dependence_graph(analyze(original).result)
        g2 = build_dependence_graph(analyze(normalized).result)
        return g1, g2

    g1, g2 = benchmark(run)
    f1 = [e for e in g1.edges if e.kind is DependenceKind.FLOW][0]
    f2 = [e for e in g2.edges if e.kind is DependenceKind.FLOW][0]
    assert f1.result.directions == f2.result.directions
