"""B01: "this algorithm is linear in the size of the SSA graph, not
iterative" (section 7).

Two measurements:

* the SSA classifier's running time across loops of growing size, reported
  next to the SSA-graph size -- the time-per-graph-node ratio should stay
  roughly flat (linear scaling);
* the classical baseline's *pass count* on derived-IV chains of growing
  depth -- it grows with the chain, while the SSA algorithm always makes
  exactly one traversal (every node lands in exactly one SCR).
"""

import time

import pytest

pytestmark = pytest.mark.bench

from benchmarks.workloads import deep_chain_loop, straightline_iv_loop
from repro.analysis.loops import find_loops
from repro.baseline.classical import classical_induction_variables
from repro.core.driver import classify_function
from repro.frontend.source import compile_source
from repro.pipeline import analyze, analyze_function

SIZES = [4, 16, 64, 256]


@pytest.mark.parametrize("size", SIZES)
def test_ssa_classifier_scaling(benchmark, size):
    source = straightline_iv_loop(size)
    program = analyze(source)  # warm compile; we time classification only

    result = benchmark(classify_function, program.ssa)
    summary = result.loops["L1"]
    # every variable in the family was classified, in one traversal
    assert summary.scr_count >= size
    assert summary.graph_size >= size


def test_linearity_shape():
    """Time per SSA-graph node must not blow up with size (no iteration)."""
    ratios = []
    for size in SIZES:
        program = analyze(straightline_iv_loop(size))
        start = time.perf_counter()
        for _ in range(3):
            result = classify_function(program.ssa)
        elapsed = (time.perf_counter() - start) / 3
        graph_size = result.loops["L1"].graph_size
        ratios.append(elapsed / graph_size)
    print("\nB01 time-per-node (s):", [f"{r:.2e}" for r in ratios])
    # allow constant-factor noise; rule out quadratic behaviour (which
    # would multiply the ratio by ~64 across this range)
    assert ratios[-1] < ratios[0] * 8


@pytest.mark.parametrize("depth", [2, 8, 32, 128])
def test_classical_pass_count_grows(depth):
    """The classical fixed point needs ~depth passes over the body."""
    function = compile_source(deep_chain_loop(depth))
    loop = find_loops(function).loop_of_header("L1")
    result = classical_induction_variables(function, loop)
    assert len(result.derived) >= depth - 1
    assert result.passes >= depth  # one pass per chain link + stabilization
    print(f"\nB01 classical: depth {depth} -> {result.passes} passes, "
          f"{result.statements_visited} statements visited")


@pytest.mark.parametrize("depth", [2, 8, 32, 128])
def test_classical_baseline_speed(benchmark, depth):
    function = compile_source(deep_chain_loop(depth))
    loop = find_loops(function).loop_of_header("L1")
    result = benchmark(classical_induction_variables, function, loop)
    assert result.passes >= depth


def test_ssa_is_one_pass_regardless_of_depth():
    """Every SSA node is visited by Tarjan exactly once: the number of SCRs
    equals the number of region nodes for a chain (all trivial except the
    basic IV cycles)."""
    for depth in (2, 8, 32, 128):
        program = analyze(deep_chain_loop(depth))
        summary = program.result.loops["L1"]
        # nodes = SCR members, each SCR popped once
        members = sum(1 for _ in summary.classifications)
        assert summary.scr_count <= members
        classified_chain = [
            name for name in summary.classifications if name.startswith("v")
        ]
        assert len(classified_chain) >= depth


@pytest.mark.parametrize("statements", [50, 200, 800])
def test_whole_pipeline_throughput(benchmark, statements):
    """End-to-end compile+classify+dependence on a large mixed loop."""
    from benchmarks.workloads import mixed_class_loop
    from repro.dependence.graph import build_dependence_graph

    source = mixed_class_loop(1, statements)

    def run():
        program = analyze(source)
        return build_dependence_graph(program.result)

    graph = benchmark(run)
    assert graph.refs


def test_deep_nest_pipeline():
    """Five-deep loop nests classify without blowup."""
    source_lines = ["s = 0"]
    for level in range(1, 6):
        indent = "  " * (level - 1)
        source_lines.append(f"{indent}L{level}: for i{level} = 1 to 3 do")
    source_lines.append("  " * 5 + "s = s + 1")
    for level in range(5, 0, -1):
        source_lines.append("  " * (level - 1) + "endfor")
    source_lines.append("return s")
    program = analyze("\n".join(source_lines))
    outer = program.classification(program.ssa_name("s", "L1"))
    from repro.core.classes import InductionVariable

    assert isinstance(outer, InductionVariable)
    assert outer.step == 81  # 3^4 increments per outer iteration
