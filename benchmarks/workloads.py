"""Synthetic workload generators for the benchmark harness.

The paper has no machine-measured tables; its quantitative claims are
structural (one-pass vs. iterative, strictly more classes recognized,
more precise dependence graphs).  These generators produce families of
loop programs whose size and composition are controlled, so the
benchmarks can measure exactly those claims.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.pipeline import AnalyzedProgram, analyze


def straightline_iv_loop(n_variables: int) -> str:
    """A loop with ``n_variables`` mutually-derived linear IVs (a worst
    case for classical *iterative* detection: each derived IV needs its
    predecessor classified first, i.e. one extra pass)."""
    lines = ["v0 = 0", "L1: loop", "  v0 = v0 + 1"]
    for k in range(1, n_variables):
        lines.append(f"  v{k} = v{k - 1} + {k}")
    lines.append(f"  if v0 > n then")
    lines.append("    break")
    lines.append("  endif")
    lines.append("endloop")
    return "\n".join(lines)


def mixed_class_loop(seed: int, n_statements: int) -> str:
    """A loop mixing every variable class the paper recognizes."""
    rng = random.Random(seed)
    lines = [
        "a = 1",
        "b = 2",
        "c = 0",
        "w = n",
        "g = 1",
        "p = 1",
        "q = 2",
        "L1: for i = 1 to n do",
        "  B[w] = a",  # reads w before its reassignment: the wrap-around use
    ]
    for k in range(n_statements):
        choice = rng.randrange(7)
        if choice == 0:
            lines.append(f"  a = a + {rng.randint(1, 4)}")  # linear
        elif choice == 1:
            lines.append("  b = b + a")  # polynomial
        elif choice == 2:
            lines.append(f"  g = g * 2 + {rng.randint(0, 2)}")  # geometric
        elif choice == 3:
            lines.append("  t = p")
            lines.append("  p = q")
            lines.append("  q = t")  # periodic
        elif choice == 4:
            lines.append(f"  if A[i] > {rng.randint(0, 5)} then")
            lines.append(f"    c = c + {rng.randint(1, 3)}")
            lines.append("  endif")  # monotonic
        elif choice == 5:
            lines.append("  w = i")  # wrap-around (w used below)
        else:
            lines.append(f"  x{k} = a * {rng.randint(2, 5)}")  # derived
    lines.append("endfor")
    return "\n".join(lines)


def deep_chain_loop(depth: int) -> str:
    """A single chain v_{k} = v_{k-1} + 1 of the given depth (classical
    detection needs ~depth passes; the SSA pass is one traversal)."""
    lines = ["base = 0", "L1: for i = 1 to n do", "  base = base + 1", "  v0 = i + 1"]
    for k in range(1, depth):
        lines.append(f"  v{k} = v{k - 1} + 1")
    lines.append(f"  A[v{depth - 1}] = i")
    lines.append("endfor")
    return "\n".join(lines)


def dependence_workload(kind: str) -> str:
    """Loops whose precise dependence testing needs the extended classes."""
    if kind == "periodic":
        return (
            "j = 1\nk = 2\nl = 3\nL1: for it = 1 to n do\n"
            "  A[2 * j] = A[2 * k] + 1\n"
            "  t = j\n  j = k\n  k = l\n  l = t\nendfor"
        )
    if kind == "monotonic":
        return (
            "k = 0\nL1: for i = 1 to n do\n  if A[i] > 0 then\n"
            "    k = k + 1\n    B[k] = A[i]\n    E[i] = B[k]\n  endif\nendfor"
        )
    if kind == "wraparound":
        return (
            "iml = n\nL1: for i = 1 to n do\n  A[i] = A[iml] + 1\n  iml = i\nendfor"
        )
    if kind == "linear":
        return "L1: for i = 2 to n do\n  A[i] = A[i - 1] + 1\nendfor"
    raise ValueError(kind)


def analyzed(source: str) -> AnalyzedProgram:
    return analyze(source)
