#!/usr/bin/env python3
"""Range-tightened dependence testing: a symbolic trip count proven small.

The loop below writes ``A[i + 100]`` and reads ``A[i]``.  With an
unknown trip count the strong-SIV test must assume the dependence
distance 100 can be realized, so the loop stays serial.  The ``assume``
declarations bound ``n`` to at most 50 iterations: the value-range
analysis derives trip(L1) in [1, 50], the distance 100 can never fit
inside the iteration space, and the Banerjee/SIV machinery proves
independence -- the loop flips to DOALL.

Run:  python examples/assumed_bounds.py
"""

from repro import analyze
from repro.dependence import analyze_parallelism

SOURCE = """
assume n >= 1
assume n <= 50
array A[200]
L1: for i = 1 to n do
  A[i + 100] = A[i] + 1
endfor
return n
"""


def main() -> None:
    print("=== without ranges: distance 100 might be realized ===")
    program = analyze(SOURCE)
    verdict = analyze_parallelism(program.result)["L1"]
    print(f"  {verdict!r}")

    print("\n=== with ranges: trip in [1, 50] rules the distance out ===")
    program = analyze(SOURCE, ranges=True)
    info = program.result.ranges
    print(f"  trip(L1) = {info.trips['L1']}")
    for name in ("n", "i.2"):
        print(f"  {name:4} in {info.range_of(name)}")
    verdict = analyze_parallelism(program.result)["L1"]
    print(f"  {verdict!r}")


if __name__ == "__main__":
    main()
