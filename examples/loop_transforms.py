#!/usr/bin/env python3
"""Loop-level conclusions: parallelism, interchange, distribution.

The paper's introduction motivates the classification with "advanced loop
transformations (such as loop distribution and loop interchanging)".  This
example runs those legality analyses on top of the dependence graph.

Run:  python examples/loop_transforms.py
"""

from repro import analyze
from repro.dependence import (
    analyze_parallelism,
    build_dependence_graph,
    check_interchange,
    plan_distribution,
)

STENCIL = """
L1: for i = 2 to n do
  L2: for j = 1 to n do
    A[i, j] = A[i - 1, j] + B[i, j]
  endfor
endfor
"""

TRIANGULAR = """
L23: for i = 1 to n do
  L24: for j = i + 1 to n do
    A[i, j] = A[i - 1, j] + 1
  endfor
endfor
"""

MULTI_STATEMENT = """
L1: for i = 2 to n do
  A[i] = X[i] * 2
  B[i] = A[i] + Y[i]
  C[i] = C[i - 1] + B[i]
endfor
"""


def main() -> None:
    print("=== stencil: outer-carried, inner parallel, interchange legal ===")
    program = analyze(STENCIL)
    graph = build_dependence_graph(program.result)
    verdicts = analyze_parallelism(program.result, graph)
    for header in ("L1", "L2"):
        print(f"  {verdicts[header]!r}")
    print(f"  interchange(L1, L2): {check_interchange(program.result, 'L1', 'L2', graph).legal}")

    print("\n=== triangular nest: the (<, >) vector blocks interchange ===")
    program = analyze(TRIANGULAR)
    graph = build_dependence_graph(program.result)
    verdict = check_interchange(program.result, "L23", "L24", graph)
    print(f"  interchange(L23, L24): {verdict.legal}")
    for edge in verdict.blocking:
        print(f"    blocked by {edge!r}")

    print("\n=== multi-statement loop: distribution plan ===")
    program = analyze(MULTI_STATEMENT)
    loop = program.nest.loop_of_header("L1")
    plan = plan_distribution(program.result, loop)
    print("  " + plan.summary().replace("\n", "\n  "))
    print(
        "  The recurrence on C stays in its own loop; A and B distribute\n"
        "  ahead of it in dependence order, and each piece can then be\n"
        "  vectorized or parallelized independently."
    )


if __name__ == "__main__":
    main()
