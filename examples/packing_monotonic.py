#!/usr/bin/env python3
"""Monotonic variables in packing loops (paper sections 4.4, 5.4, 6).

The pack idiom conditionally copies elements of one vector into a dense
prefix of another.  The pack counter ``k`` is not an induction variable --
it does not advance every iteration -- but it *is* monotonic, and within
the conditional it is strictly monotonic.  That difference decides which
dependences are loop-carried (Figure 10 of the paper).

Run:  python examples/packing_monotonic.py
"""

from repro import analyze, build_dependence_graph
from repro.core.classes import Monotonic
from repro.ir.interp import Interpreter, TraceRecorder

SOURCE = """
k = 0
L15: for i = 1 to n do
  F[k] = A[i]
  if A[i] > 0 then
    C[k] = D[i]
    k = k + 1
    B[k] = A[i]
    E[i] = B[k]
  endif
  G[i] = F[k]
endfor
"""


def main() -> None:
    program = analyze(SOURCE)

    print("=== the k family ===")
    for name in program.ssa_names("k"):
        cls = program.classification(name)
        extra = ""
        if isinstance(cls, Monotonic):
            extra = f"   (family {cls.family})"
        print(f"  {name:6} -> {cls.describe()}{extra}")

    print("\n=== dependence directions (paper's Figure 10 discussion) ===")
    graph = build_dependence_graph(program.result)
    for edge in graph.edges:
        if edge.source.array in ("B", "F") and edge.source != edge.sink:
            print(f"  {edge!r}")
    print(
        "\n  B: strictly monotonic subscript -> direction (=): not loop-carried,\n"
        "     the store/load pair can stay together when the loop is transformed.\n"
        "  F: merely monotonic -> flow (<=), anti (<): loop-carried."
    )

    print("\n=== sanity: executing the pack ===")
    trace = TraceRecorder()
    arrays = {"A": {(i,): (1 if i % 3 == 0 else -1) for i in range(1, 11)}}
    result = Interpreter(program.ssa, trace=trace).run({"n": 10}, arrays)
    packed = sorted(result.arrays.get("B", {}).items())
    print(f"  packed {len(packed)} positive elements: {packed}")
    print(f"  {len(trace.conflicts())} dynamic conflicts observed "
          f"(all covered by the {len(graph.edges)} static edges)")


if __name__ == "__main__":
    main()
