#!/usr/bin/env python3
"""A guided tour: every worked example of the paper, reproduced live.

Runs each of the paper's figures/loops through the pipeline and prints the
classification next to the paper's stated result.

Run:  python examples/paper_tour.py
"""

from repro.pipeline import analyze

TOUR = [
    (
        "Figure 1 (L7): mutually-defined linear family",
        "j = n1\nL7: loop\n  i = j + c1\n  j = i + k1\n"
        "  if j > 100000 then\n    break\n  endif\nendloop",
        "paper: i2=(L7,n,c+k)  i3=(L7,n+c,c+k)  j3=(L7,n+c+k,c+k)",
        ["i", "j"],
        "L7",
    ),
    (
        "Figure 3 (L8): equal increments on both branches",
        "i = 1\nL8: loop\n  if x > 0 then\n    i = i + 2\n  else\n    i = i + 2\n  endif\n"
        "  if i > 100 then\n    break\n  endif\nendloop",
        "paper: i2=(L8,1,2)  i3=i4=i5=(L8,3,2)",
        ["i"],
        "L8",
    ),
    (
        "Figure 4 (L10): cascaded wrap-around",
        "k = k1\nj = j1\ni = 1\nL10: loop\n  A[k] = 0\n  k = j\n  j = i\n  i = i + 1\n"
        "  if i > n then\n    break\n  endif\nendloop",
        "paper: j2 first-order, k2 second-order wrap-around",
        ["i", "j", "k"],
        "L10",
    ),
    (
        "Figure 5 (L13): periodic family of period 3",
        "j = j1\nk = k1\nl = l1\nL13: for it = 1 to n do\n"
        "  t = j\n  j = k\n  k = l\n  l = t\n  A[j] = 0\nendfor",
        "paper: {j,k,l} periodic, period 3",
        ["j", "k", "l"],
        "L13",
    ),
    (
        "L14: polynomial and geometric closed forms",
        "j = 1\nk = 1\nl = 1\nm = 0\nL14: for i = 1 to n do\n"
        "  j = j + i\n  k = k + j + 1\n  l = l * 2 + 1\n  m = 3 * m + 2 * i + 1\nendfor\nreturn j",
        "paper: j=(h²+3h+4)/2  k=(h³+6h²+23h+24)/6  l=2^(h+2)-1  m=6·3^h-h-3",
        ["j", "k", "l", "m"],
        "L14",
    ),
    (
        "Figure 6 (L16): strictly monotonic",
        "k = 0\nL16: for i = 1 to n do\n  if A[i] > 0 then\n    k = k + 1\n"
        "  else\n    k = k + 2\n  endif\n  B[k] = i\nendfor",
        "paper: k monotonically strictly increasing",
        ["k"],
        "L16",
    ),
    (
        "Figures 7-8 (L17/L18): nested loops, trip counts, exit values",
        "k = 0\nL17: loop\n  i = 1\n  L18: loop\n    k = k + 2\n"
        "    if i > 100 then\n      break\n    endif\n    i = i + 1\n  endloop\n"
        "  k = k + 2\n  if k > 1000000 then\n    break\n  endif\nendloop",
        "paper: trip(L18)=100; k2=(L17,0,204); k3=(L18,(L17,0,204),2)",
        ["k"],
        "L17",
    ),
    (
        "Figure 9 (L19/L20): the triangular nest",
        "j = 0\nL19: for i = 1 to n do\n  j = j + i\n"
        "  L20: for kk = 1 to i do\n    j = j + 1\n  endfor\nendfor",
        "paper: j is a family of quadratic induction variables",
        ["j"],
        "L19",
    ),
]


def main() -> None:
    for title, source, paper_says, variables, header in TOUR:
        print(f"### {title}")
        print(f"    {paper_says}")
        program = analyze(source)
        summary = program.result.loops[header]
        for var in variables:
            for name in sorted(program.ssa_names(var)):
                loop = program.result.defining_loop(name)
                if loop is None:
                    continue
                nested = program.result.nested_describe(name)
                print(f"      {name:8} -> {nested}")
        trip = program.result.trip_count(header)
        print(f"      trip({header}) = {trip.count if trip.count is not None else trip.kind.value}")
        print()


if __name__ == "__main__":
    main()
