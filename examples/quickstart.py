#!/usr/bin/env python3
"""Quickstart: classify every variable of a loop and print the results.

Run:  python examples/quickstart.py
"""

from repro import analyze, build_dependence_graph

SOURCE = """
# A loop exercising several of the paper's variable classes at once.
j = 1
k = 1
l = 1
iml = n
L14: for i = 1 to n do
  A[i] = A[iml] + 1      # iml is a wrap-around variable
  j = j + i              # j is a quadratic induction variable
  k = k + j + 1          # k is cubic
  l = l * 2 + 1          # l is geometric: 2^(h+2) - 1
  iml = i
endfor
"""


def main() -> None:
    program = analyze(SOURCE)

    print("=== classifications (loop L14) ===")
    summary = program.result.loops["L14"]
    for name in sorted(summary.classifications):
        if name.startswith("$"):
            continue  # compiler temporaries
        cls = summary.classifications[name]
        print(f"  {name:8} -> {cls.describe()}")

    print("\n=== the paper's tuple for the loop variable ===")
    i_name = program.ssa_name("i", "L14")
    print(f"  {i_name} = {program.result.describe(i_name)}")

    print("\n=== trip count ===")
    trip = program.result.trip_count("L14")
    print(f"  kind={trip.kind.value}, count={trip.count}, assumptions={trip.assumptions}")

    print("\n=== exit values (value of each IV after the loop) ===")
    for var in ("j", "k", "l"):
        name = program.ssa_name(var, "L14")
        print(f"  {name} exits with: {program.result.exit_value('L14', name)}")

    print("\n=== dependence graph ===")
    graph = build_dependence_graph(program.result)
    print(" ", graph.summary().replace("\n", "\n  "))


if __name__ == "__main__":
    main()
