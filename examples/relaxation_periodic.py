#!/usr/bin/env python3
"""Flip-flop variables in relaxation codes (paper section 4.2 + 6).

The classic red/black relaxation keeps two planes of a matrix -- "old" and
"new" -- and flips which is which every outer iteration.  A compiler that
recognizes ``j``/``jold`` as a periodic family can prove the two planes
never collide in the same iteration, so the inner loop is parallel.

Run:  python examples/relaxation_periodic.py
"""

from repro import analyze, build_dependence_graph
from repro.dependence.direction import EQ

SOURCE = """
j = 1
jold = 2
L1: for iter = 1 to t do
  L2: for x = 1 to n do
    A[j, x] = A[jold, x] + A[jold, x + 1]
  endfor
  jtemp = jold
  jold = j
  j = jtemp
endfor
"""

ARITHMETIC_FORM = """
j = 1
jold = 2
L1: for iter = 1 to t do
  L2: for x = 1 to n do
    A[j, x] = A[jold, x] + A[jold, x + 1]
  endfor
  j = 3 - j
  jold = 3 - jold
endfor
"""


def report(title: str, source: str) -> None:
    print(f"=== {title} ===")
    program = analyze(source)
    for var in ("j", "jold"):
        name = program.ssa_name(var, "L1")
        print(f"  {name:8} -> {program.result.describe(name)}")

    graph = build_dependence_graph(program.result)
    cross = [e for e in graph.edges if e.source != e.sink]
    print(f"  {len(cross)} cross-site dependence edges:")
    inner_parallel = True
    for edge in cross:
        print(f"    {edge!r}")
        for vector in edge.result.directions:
            if vector.elements and vector.elements[0] == EQ:
                inner_parallel = False
    print(
        "  same-outer-iteration dependences: "
        + ("NONE -- the inner loop is parallel" if inner_parallel else "present")
    )
    print()


def main() -> None:
    report("swap form (loop L11 of the paper)", SOURCE)
    report("arithmetic form j = 3 - j (loop L12)", ARITHMETIC_FORM)
    print(
        "Both forms classify as periodic families with period 2 and distinct\n"
        "values {1, 2}; the '=' solution of the dependence equation therefore\n"
        "translates to '!=' at the loop level (paper, section 6)."
    )


if __name__ == "__main__":
    main()
