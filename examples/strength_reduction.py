#!/usr/bin/env python3
"""Strength reduction and loop peeling driven by the classification.

Two of the transformations the analysis enables (paper sections 1 and 4.1):

* multiplications of a linear IV by an invariant become additive
  recurrences (the historical purpose of IV detection);
* a wrap-around variable becomes a plain IV after peeling the first
  iteration.

Run:  python examples/strength_reduction.py
"""

from repro.analysis.loopsimplify import simplify_loops
from repro.frontend.source import compile_source
from repro.ir.clone import clone_function
from repro.ir.instructions import BinOp
from repro.ir.interp import Interpreter
from repro.ir.opcodes import BinaryOp
from repro.ir.printer import print_function
from repro.pipeline import analyze, analyze_function
from repro.transforms import peel_first_iteration, strength_reduce

SR_SOURCE = """
L1: for i = 0 to n do
  A[i * 8] = i
endfor
"""

PEEL_SOURCE = """
iml = n
s = 0
L9: for i = 1 to n do
  s = s + A[iml]
  A[i] = i
  iml = i
endfor
return s
"""


def count_muls(function) -> int:
    return sum(
        1
        for block in function
        for inst in block
        if isinstance(inst, BinOp) and inst.op is BinaryOp.MUL
    )


def main() -> None:
    print("=== strength reduction ===")
    program = analyze(SR_SOURCE)
    before = count_muls(program.ssa)
    loop = program.nest.loop_of_header("L1")
    records = strength_reduce(program.ssa, program.result, loop)
    after = count_muls(program.ssa)
    print(f"  reduced {len(records)} multiplication(s): {before} -> {after} in-loop muls")
    print("  resulting IR:")
    print("    " + print_function(program.ssa).replace("\n", "\n    "))

    reference = analyze(SR_SOURCE)
    for n in (0, 3, 10):
        a = Interpreter(reference.ssa).run({"n": n}).arrays
        b = Interpreter(program.ssa).run({"n": n}).arrays
        assert a == b, "strength reduction changed behaviour!"
    print("  verified against the original on n = 0, 3, 10")

    print("\n=== wrap-around peeling ===")
    named = compile_source(PEEL_SOURCE)
    before_analysis = analyze_function(clone_function(named))
    iml = before_analysis.ssa_name("iml", "L9")
    print(f"  before: {iml} = {before_analysis.result.describe(iml)}")

    peeled = clone_function(named)
    peel_first_iteration(peeled, "L9")
    simplify_loops(peeled)
    after_analysis = analyze_function(peeled)
    iml2 = after_analysis.ssa_name("iml", "L9")
    print(f"  after:  {iml2} = {after_analysis.result.describe(iml2)}")

    arrays = {"A": {(k,): 100 + k for k in range(12)}}
    for n in (0, 1, 5):
        r1 = Interpreter(named).run({"n": n}, {k: dict(v) for k, v in arrays.items()})
        r2 = Interpreter(peeled).run({"n": n}, {k: dict(v) for k, v in arrays.items()})
        assert (r1.return_value, r1.arrays) == (r2.return_value, r2.arrays)
    print("  peeling verified against the original on n = 0, 1, 5")


if __name__ == "__main__":
    main()
