#!/usr/bin/env python3
"""Generalized induction variables in a triangular nest (paper section 5.3).

The example [EHLP92] reported as difficult: the inner loop's bound is the
outer loop's variable, so the accumulated counter ``j`` is *quadratic* in
the outer loop.  The paper's framework handles it by summarizing the inner
loop with a symbolic trip count and exit value, then solving the outer
recurrence with the matrix method.

Run:  python examples/triangular_nest.py
"""

from fractions import Fraction

from repro import analyze
from repro.ir.interp import Interpreter

SOURCE = """
j = 0
L19: for i = 1 to n do
  j = j + i
  L20: for kk = 1 to i do
    j = j + 1
  endfor
endfor
return j
"""


def main() -> None:
    program = analyze(SOURCE)

    print("=== inner loop summary ===")
    trip = program.result.trip_count("L20")
    print(f"  trip count of L20: {trip.count}  (the outer IV {program.ssa_name('i','L19')})")
    j4 = program.ssa_name("j", "L20")
    print(f"  inner j: {program.result.describe(j4)}")
    print(f"  nested view: {program.result.nested_describe(j4)}")

    print("\n=== outer quadratic family ===")
    j2 = program.ssa_name("j", "L19")
    cls = program.classification(j2)
    print(f"  {j2} = {cls.describe()}   i.e. value(h) = {cls.form}")

    print("\n=== closed form vs. actual execution ===")
    result = Interpreter(program.ssa, record_history=True).run({"n": 8})
    history = result.value_history[j2]
    print(f"  {'h':>3} {'predicted':>10} {'observed':>10}")
    for h, observed in enumerate(history):
        predicted = cls.value_at(h).constant_value()
        marker = "ok" if predicted == observed else "MISMATCH"
        print(f"  {h:>3} {str(predicted):>10} {observed:>10}   {marker}")
        assert predicted == observed

    print(f"\n  final j = {result.return_value} "
          f"(= n(n+1)/2 + n(n+1)/2 = n(n+1) = {8 * 9})")


if __name__ == "__main__":
    main()
