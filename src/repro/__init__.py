"""repro: a reproduction of "Beyond Induction Variables" (Wolfe, PLDI 1992).

A complete implementation of the paper's SSA-based classification of loop
variables -- linear, polynomial and geometric induction variables,
wrap-around, periodic/flip-flop and monotonic variables -- together with
everything it rests on (a loop-language frontend, CFG IR, dominators, SSA
construction, SCCP) and everything it feeds (trip counts, nested-loop exit
values, data dependence testing with the extended classes, strength
reduction, peeling, normalization), plus the classical pattern-matching
baseline it was compared against.

Quick start::

    from repro import analyze

    program = analyze('''
    i = 0
    L1: while i < n do
      i = i + 2
      A[i] = A[i - 2] + 1
    endwhile
    ''')
    print(program.describe_all())          # {'i.2': '(L1, 0, 2)', ...}

    from repro import build_dependence_graph
    print(build_dependence_graph(program.result).summary())
"""

from repro.pipeline import AnalyzedProgram, analyze, analyze_function
from repro.core import (
    AnalysisResult,
    Classification,
    InductionVariable,
    Invariant,
    Monotonic,
    Periodic,
    TripCount,
    TripCountKind,
    Unknown,
    WrapAround,
    classify_function,
)
from repro.dependence import build_dependence_graph, test_dependence
from repro.ranges import Bound, Interval, RangeInfo, check_ranges, compute_ranges
from repro.resilience import (
    AnalysisBudget,
    BudgetExceeded,
    DegradationRecord,
    FaultPlan,
    ReproError,
    injecting,
    strict_errors,
)

__version__ = "1.6.0"

__all__ = [
    "analyze",
    "analyze_function",
    "AnalyzedProgram",
    "AnalysisBudget",
    "BudgetExceeded",
    "DegradationRecord",
    "FaultPlan",
    "ReproError",
    "injecting",
    "strict_errors",
    "AnalysisResult",
    "Classification",
    "InductionVariable",
    "Invariant",
    "Monotonic",
    "Periodic",
    "TripCount",
    "TripCountKind",
    "Unknown",
    "WrapAround",
    "classify_function",
    "build_dependence_graph",
    "test_dependence",
    "Bound",
    "Interval",
    "RangeInfo",
    "check_ranges",
    "compute_ranges",
    "__version__",
]
