"""Control-flow-graph analyses: orderings, dominators, loops, liveness."""

from repro.analysis.rpo import reverse_postorder, postorder, reachable_blocks
from repro.analysis.dominators import DominatorTree, dominator_tree
from repro.analysis.domfrontier import dominance_frontiers, iterated_frontier
from repro.analysis.loops import Loop, LoopNest, find_loops
from repro.analysis.liveness import live_in_sets, upward_exposed
from repro.analysis.postdom import postdominator_tree
from repro.analysis.loopsimplify import simplify_loops
from repro.analysis.reducibility import irreducible_edges, is_reducible

__all__ = [
    "simplify_loops",
    "irreducible_edges",
    "is_reducible",
    "reverse_postorder",
    "postorder",
    "reachable_blocks",
    "DominatorTree",
    "dominator_tree",
    "dominance_frontiers",
    "iterated_frontier",
    "Loop",
    "LoopNest",
    "find_loops",
    "live_in_sets",
    "upward_exposed",
    "postdominator_tree",
]
