"""Dominance frontiers (Cytron et al. [CFR+91]).

The frontier of ``X`` is the set of blocks ``Y`` such that ``X`` dominates a
predecessor of ``Y`` but does not strictly dominate ``Y`` -- exactly where
phi-functions must be placed (section 2.1 of the paper defers to [CFR+91]
for this construction; we use the standard two-level walk from Cooper's
formulation).
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from repro.analysis.dominators import DominatorTree
from repro.ir.function import Function


def dominance_frontiers(
    function: Function, domtree: DominatorTree
) -> Dict[str, Set[str]]:
    """Label -> set of frontier labels, for all reachable blocks."""
    frontiers: Dict[str, Set[str]] = {label: set() for label in domtree.idom}
    preds = function.predecessors_map()
    for label in domtree.idom:
        reachable_preds = [p for p in preds[label] if p in domtree.idom]
        if len(reachable_preds) < 2:
            continue
        idom = domtree.immediate_dominator(label)
        for pred in reachable_preds:
            runner = pred
            while runner != idom:
                frontiers[runner].add(label)
                parent = domtree.immediate_dominator(runner)
                if parent is None:
                    break
                runner = parent
    return frontiers


def iterated_frontier(
    frontiers: Dict[str, Set[str]], blocks: Iterable[str]
) -> Set[str]:
    """The iterated dominance frontier DF+ of a set of blocks.

    This is the phi-placement set for a variable whose definitions sit in
    ``blocks``: "a phi-function for variable X is placed at the first CFG
    vertex where two distinct definitions of X reach; the phi-function
    itself counts as a new definition, and so the algorithm iterates."
    """
    result: Set[str] = set()
    worklist = [label for label in blocks if label in frontiers]
    on_list = set(worklist)
    while worklist:
        label = worklist.pop()
        for frontier_label in frontiers[label]:
            if frontier_label not in result:
                result.add(frontier_label)
                if frontier_label not in on_list:
                    on_list.add(frontier_label)
                    worklist.append(frontier_label)
    return result
