"""Dominator tree via the Cooper-Harvey-Kennedy iterative algorithm.

"A Simple, Fast Dominance Algorithm" (2001) -- the standard practical
replacement for Lengauer-Tarjan: iterate ``idom`` to a fixed point over
reverse postorder, intersecting paths in the partially-built tree.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.rpo import reverse_postorder
from repro.ir.function import Function, IRError


class DominatorTree:
    """Immutable dominator tree with O(1) `dominates` via DFS intervals."""

    def __init__(self, entry: str, idom: Dict[str, Optional[str]]):
        self.entry = entry
        self.idom = dict(idom)
        self.children: Dict[str, List[str]] = {label: [] for label in idom}
        for label, parent in idom.items():
            if parent is not None:
                self.children[parent].append(label)
        # DFS numbering for interval-based dominance queries
        self._enter: Dict[str, int] = {}
        self._leave: Dict[str, int] = {}
        clock = 0
        stack: List[tuple] = [(entry, False)]
        while stack:
            label, done = stack.pop()
            if done:
                self._leave[label] = clock
                clock += 1
                continue
            self._enter[label] = clock
            clock += 1
            stack.append((label, True))
            for child in reversed(self.children[label]):
                stack.append((child, False))

    def dominates(self, a: str, b: str) -> bool:
        """True iff ``a`` dominates ``b`` (reflexively)."""
        if a not in self._enter or b not in self._enter:
            raise IRError(f"unreachable block in dominance query: {a!r} or {b!r}")
        return self._enter[a] <= self._enter[b] and self._leave[b] <= self._leave[a]

    def strictly_dominates(self, a: str, b: str) -> bool:
        return a != b and self.dominates(a, b)

    def immediate_dominator(self, label: str) -> Optional[str]:
        return self.idom.get(label)

    def dominators_of(self, label: str) -> List[str]:
        """All dominators of ``label``, from itself up to the entry."""
        chain = [label]
        while True:
            parent = self.idom.get(chain[-1])
            if parent is None:
                return chain
            chain.append(parent)

    def preorder(self) -> List[str]:
        """Dominator-tree preorder (used by the SSA renamer)."""
        out: List[str] = []
        stack = [self.entry]
        while stack:
            label = stack.pop()
            out.append(label)
            for child in reversed(self.children[label]):
                stack.append(child)
        return out


def dominator_tree(function: Function) -> DominatorTree:
    """Compute the dominator tree of the reachable CFG."""
    rpo = reverse_postorder(function)
    if not rpo:
        raise IRError("function has no reachable blocks")
    entry = rpo[0]
    index = {label: i for i, label in enumerate(rpo)}
    preds = function.predecessors_map()

    idom: Dict[str, Optional[str]] = {label: None for label in rpo}
    idom[entry] = entry

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for label in rpo[1:]:
            candidates = [p for p in preds[label] if p in index and idom[p] is not None]
            if not candidates:
                continue
            new_idom = candidates[0]
            for pred in candidates[1:]:
                new_idom = intersect(pred, new_idom)
            if idom[label] != new_idom:
                idom[label] = new_idom
                changed = True

    idom[entry] = None
    return DominatorTree(entry, idom)
