"""Backward liveness on the named (pre-SSA) IR.

Pruned SSA construction only inserts a phi for a variable where that
variable is live -- this avoids the flood of dead phis that minimal SSA
would create and keeps the SSA graph (and hence Tarjan's traversal) small,
which is part of the paper's speed argument.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Set, Tuple

from repro.ir.function import Function
from repro.ir.instructions import Phi
from repro.ir.values import Ref


def upward_exposed(function: Function) -> Dict[str, tuple]:
    """Per block: (use-before-def set, defined set) of scalar names."""
    out: Dict[str, tuple] = {}
    for block in function:
        uses: Set[str] = set()
        defs: Set[str] = set()
        for inst in block:
            if isinstance(inst, Phi):
                # phis read on edges; treat their inputs as live-out of preds,
                # handled by the caller via phi_uses
                pass
            else:
                for value in inst.uses():
                    if isinstance(value, Ref) and value.name not in defs:
                        uses.add(value.name)
            if inst.result is not None:
                defs.add(inst.result)
        if block.terminator is not None:
            for value in block.terminator.uses():
                if isinstance(value, Ref) and value.name not in defs:
                    uses.add(value.name)
        out[block.label] = (uses, defs)
    return out


def live_in_sets(function: Function) -> Dict[str, Set[str]]:
    """Variable names live on entry to each block (worklist dataflow).

    A block is (re)processed only when the live-in set of one of its
    successors changes, and the per-edge phi uses are precomputed once --
    the naive alternative (full round-robin sweeps in forward block order
    for a *backward* problem) is quadratic on long chains of blocks.
    """
    local = upward_exposed(function)
    preds = function.predecessors_map()
    labels = list(function.blocks)

    # phi inputs are live along their specific incoming edge
    edge_uses: Dict[Tuple[str, str], Set[str]] = {}
    for block in function:
        for phi in block.phis():
            for pred, value in phi.incoming.items():
                if isinstance(value, Ref):
                    edge_uses.setdefault((pred, block.label), set()).add(value.name)

    successors = {label: function.successors(label) for label in labels}
    live_in: Dict[str, Set[str]] = {label: set() for label in labels}

    # seed in reverse insertion order: blocks are roughly topologically
    # ordered, so liveness mostly propagates in one pass
    worklist = deque(reversed(labels))
    queued: Set[str] = set(labels)
    while worklist:
        label = worklist.popleft()
        queued.discard(label)
        uses, defs = local[label]
        out_set: Set[str] = set()
        for succ in successors[label]:
            out_set |= live_in[succ]
            extra = edge_uses.get((label, succ))
            if extra:
                out_set |= extra
        in_set = uses | (out_set - defs)
        if in_set != live_in[label]:
            live_in[label] = in_set
            for pred in preds[label]:
                if pred not in queued:
                    queued.add(pred)
                    worklist.append(pred)
    return live_in
