"""Backward liveness on the named (pre-SSA) IR.

Pruned SSA construction only inserts a phi for a variable where that
variable is live -- this avoids the flood of dead phis that minimal SSA
would create and keeps the SSA graph (and hence Tarjan's traversal) small,
which is part of the paper's speed argument.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.ir.function import Function
from repro.ir.instructions import Phi
from repro.ir.values import Ref


def upward_exposed(function: Function) -> Dict[str, tuple]:
    """Per block: (use-before-def set, defined set) of scalar names."""
    out: Dict[str, tuple] = {}
    for block in function:
        uses: Set[str] = set()
        defs: Set[str] = set()
        for inst in block:
            if isinstance(inst, Phi):
                # phis read on edges; treat their inputs as live-out of preds,
                # handled by the caller via phi_uses
                pass
            else:
                for value in inst.uses():
                    if isinstance(value, Ref) and value.name not in defs:
                        uses.add(value.name)
            if inst.result is not None:
                defs.add(inst.result)
        if block.terminator is not None:
            for value in block.terminator.uses():
                if isinstance(value, Ref) and value.name not in defs:
                    uses.add(value.name)
        out[block.label] = (uses, defs)
    return out


def live_in_sets(function: Function) -> Dict[str, Set[str]]:
    """Variable names live on entry to each block (iterative dataflow)."""
    local = upward_exposed(function)
    preds = function.predecessors_map()
    live_in: Dict[str, Set[str]] = {label: set() for label in function.blocks}
    live_out: Dict[str, Set[str]] = {label: set() for label in function.blocks}

    changed = True
    while changed:
        changed = False
        for label in function.blocks:
            uses, defs = local[label]
            out_set: Set[str] = set()
            for succ in function.successors(label):
                out_set |= live_in[succ]
                # phi inputs are live along the specific incoming edge
                for phi in function.block(succ).phis():
                    value = phi.incoming.get(label)
                    if isinstance(value, Ref):
                        out_set.add(value.name)
            in_set = uses | (out_set - defs)
            if in_set != live_in[label] or out_set != live_out[label]:
                live_in[label] = in_set
                live_out[label] = out_set
                changed = True
    return live_in
