"""Natural loop detection and the loop-nest forest.

A back edge is an edge ``u -> h`` whose target dominates its source; the
natural loop of ``h`` is ``h`` plus all blocks that reach some latch ``u``
without passing through ``h``.  Loops sharing a header are merged.  The
nest forest orders loops by body containment; the classifier of the paper
walks it inner-loops-first (section 5.3: "induction variable recognition
proceeds from the inner loops outward").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.dominators import DominatorTree, dominator_tree
from repro.ir.function import Function


class Loop:
    """One natural loop."""

    def __init__(self, header: str, body: Set[str]):
        self.header = header
        self.body = set(body)  # includes the header
        self.latches: List[str] = []
        self.parent: Optional["Loop"] = None
        self.children: List["Loop"] = []

    @property
    def name(self) -> str:
        """A printable identity; the paper numbers loops L1, L2, ..., we use
        the header label, which our frontend names after the source loop."""
        return self.header

    @property
    def depth(self) -> int:
        depth = 1
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def contains_block(self, label: str) -> bool:
        return label in self.body

    def contains_loop(self, other: "Loop") -> bool:
        return other is not self and other.body <= self.body

    def exit_edges(self, function: Function) -> List[Tuple[str, str]]:
        """Edges ``(from_block, to_block)`` leaving the loop."""
        out = []
        for label in sorted(self.body):
            for succ in function.successors(label):
                if succ not in self.body:
                    out.append((label, succ))
        return out

    def exit_blocks(self, function: Function) -> List[str]:
        """Blocks outside the loop targeted by exit edges (deduplicated)."""
        seen = []
        for _, target in self.exit_edges(function):
            if target not in seen:
                seen.append(target)
        return seen

    def preheader(self, function: Function) -> Optional[str]:
        """The unique out-of-loop predecessor of the header, if it exists
        and the header is its only successor."""
        preds = function.predecessors_map()[self.header]
        outside = [p for p in preds if p not in self.body]
        if len(outside) != 1:
            return None
        candidate = outside[0]
        if function.successors(candidate) != (self.header,):
            return None
        return candidate

    def __repr__(self) -> str:
        return f"<Loop {self.header}: {len(self.body)} blocks, depth {self.depth}>"


class LoopNest:
    """The forest of natural loops of one function."""

    def __init__(self, loops: List[Loop]):
        self.loops = loops
        self.by_header: Dict[str, Loop] = {loop.header: loop for loop in loops}
        self._block_to_loop: Dict[str, Loop] = {}
        # innermost loop per block: process outer loops first so inner wins
        for loop in sorted(loops, key=lambda l: len(l.body), reverse=True):
            for label in loop.body:
                self._block_to_loop[label] = loop

    @property
    def roots(self) -> List[Loop]:
        return [loop for loop in self.loops if loop.parent is None]

    def innermost(self, label: str) -> Optional[Loop]:
        """The innermost loop containing block ``label`` (None if not in a loop)."""
        return self._block_to_loop.get(label)

    def inner_to_outer(self) -> List[Loop]:
        """All loops, innermost first (the paper's processing order)."""
        return sorted(self.loops, key=lambda l: l.depth, reverse=True)

    def loop_of_header(self, header: str) -> Optional[Loop]:
        return self.by_header.get(header)

    def __iter__(self):
        return iter(self.loops)

    def __len__(self) -> int:
        return len(self.loops)


def find_loops(function: Function, domtree: Optional[DominatorTree] = None) -> LoopNest:
    """Detect natural loops and build the nest forest."""
    if domtree is None:
        domtree = dominator_tree(function)
    preds = function.predecessors_map()
    reachable = set(domtree.idom)

    # back edges grouped by header
    latches_by_header: Dict[str, List[str]] = {}
    for label in reachable:
        for succ in function.successors(label):
            if succ in reachable and domtree.dominates(succ, label):
                latches_by_header.setdefault(succ, []).append(label)

    loops: List[Loop] = []
    for header in sorted(latches_by_header):
        body: Set[str] = {header}
        worklist = []
        for latch in latches_by_header[header]:
            if latch not in body:
                body.add(latch)
                worklist.append(latch)
        while worklist:
            label = worklist.pop()
            for pred in preds[label]:
                if pred in reachable and pred not in body:
                    body.add(pred)
                    worklist.append(pred)
        loop = Loop(header, body)
        loop.latches = sorted(latches_by_header[header])
        loops.append(loop)

    # nesting: smallest containing loop is the parent
    for inner in loops:
        best: Optional[Loop] = None
        for outer in loops:
            if outer.contains_loop(inner):
                if best is None or len(outer.body) < len(best.body):
                    best = outer
        inner.parent = best
        if best is not None:
            best.children.append(inner)

    return LoopNest(loops)
