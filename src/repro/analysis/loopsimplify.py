"""Loop canonicalization: dedicated preheaders and single latches.

Run on the *named* (pre-SSA) IR.  After this pass every natural loop header
has exactly two predecessors -- one preheader outside the loop and one latch
inside -- so every loop-header phi created by SSA construction has exactly
one initial value and one loop-carried value.  That is the shape all of the
paper's figures assume (e.g. ``i2 = phi(i1, i3)``), and it lets the
classifier identify "the reaching SSA name from outside the loop" (the
initial value, section 3.1) unambiguously.
"""

from __future__ import annotations

from typing import List

from repro.analysis.dominators import dominator_tree
from repro.analysis.loops import find_loops
from repro.ir.function import Function
from repro.ir.instructions import Jump

from repro.obs.trace import traced
from repro.resilience.faultinject import fault_point


@traced("analysis.loop-simplify")
def simplify_loops(function: Function) -> bool:
    """Insert preheaders/latches where needed.  Returns True if changed.

    Iterates because inserting blocks invalidates the loop analysis.
    """
    fault_point("analysis.loop-simplify")
    changed_any = False
    for _ in range(len(function.blocks) + 2):
        changed = _simplify_once(function)
        changed_any = changed_any or changed
        if not changed:
            break
    return changed_any


def _simplify_once(function: Function) -> bool:
    domtree = dominator_tree(function)
    nest = find_loops(function, domtree)
    preds_map = function.predecessors_map()
    for loop in nest:
        header_preds = preds_map[loop.header]
        outside = [p for p in header_preds if p not in loop.body]
        inside = [p for p in header_preds if p in loop.body]

        if len(outside) > 1 or (
            len(outside) == 1
            and function.successors(outside[0]) != (loop.header,)
        ):
            _merge_edges(function, outside, loop.header, f"{loop.header}.pre")
            return True
        if len(inside) > 1:
            _merge_edges(function, inside, loop.header, f"{loop.header}.latch")
            return True
    return False


def _merge_edges(function: Function, sources: List[str], target: str, hint: str) -> None:
    """Create one block through which all ``sources -> target`` edges pass."""
    label = function.fresh_label(hint)
    block = function.add_block(label)
    block.terminator = Jump(target)
    for source in sources:
        function.block(source).terminator.retarget(target, label)
    for phi in function.block(target).phis():
        values = [phi.incoming.pop(s) for s in sources if s in phi.incoming]
        if values:
            # pre-SSA IR has no phis; post-SSA callers must not need merging
            # of distinct values (loopsimplify runs before SSA construction).
            first = values[0]
            if any(v != first for v in values):
                raise ValueError(
                    "cannot merge phi inputs with distinct values in loopsimplify; "
                    "run this pass before SSA construction"
                )
            phi.incoming[label] = first
