"""Postdominators, on the reversed CFG.

Section 5.4 of the paper sketches using postdominance to sharpen monotonic
classification: "any uses of k2 in this region are post-dominated by the
strictly monotonic assignment".  We compute the postdominator tree over a
virtual exit that collects every Return block (and, to keep the analysis
total on infinite loops, every block without reachable successors).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.dominators import DominatorTree
from repro.analysis.rpo import reachable_blocks
from repro.ir.function import Function

VIRTUAL_EXIT = "<exit>"


def postdominator_tree(function: Function) -> DominatorTree:
    """Postdominator tree; the root is :data:`VIRTUAL_EXIT`."""
    reachable = reachable_blocks(function)
    succs: Dict[str, List[str]] = {
        label: [s for s in function.successors(label) if s in reachable]
        for label in reachable
    }
    preds: Dict[str, List[str]] = {label: [] for label in reachable}
    preds[VIRTUAL_EXIT] = []
    for label, targets in succs.items():
        for target in targets:
            preds[target].append(label)

    # reversed-graph "successors" = original predecessors; the reversed
    # graph's entry is the virtual exit, connected to all terminal blocks.
    terminal = [label for label in reachable if not succs[label]]
    # Blocks trapped in infinite loops never reach Return; attach any
    # strongly-terminal-free region via its latest RPO block so the reverse
    # search still covers it.
    reverse_edges: Dict[str, List[str]] = {VIRTUAL_EXIT: list(terminal)}
    for label in reachable:
        reverse_edges[label] = list(preds.get(label, []))

    # postorder on the reversed graph from the virtual exit
    visited = set()
    order: List[str] = []
    stack: List[tuple] = [(VIRTUAL_EXIT, iter(reverse_edges[VIRTUAL_EXIT]))]
    visited.add(VIRTUAL_EXIT)
    while stack:
        label, iterator = stack[-1]
        advanced = False
        for nxt in iterator:
            if nxt not in visited:
                visited.add(nxt)
                stack.append((nxt, iter(reverse_edges[nxt])))
                advanced = True
                break
        if not advanced:
            order.append(label)
            stack.pop()
    rpo = list(reversed(order))
    index = {label: i for i, label in enumerate(rpo)}

    idom: Dict[str, Optional[str]] = {label: None for label in rpo}
    idom[VIRTUAL_EXIT] = VIRTUAL_EXIT

    def intersect(a: str, b: str) -> str:
        while a != b:
            while index[a] > index[b]:
                a = idom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    # predecessors in the reversed graph = successors in the original
    def reversed_preds(label: str) -> List[str]:
        if label in succs:
            out = list(succs[label])
        else:
            out = []
        if label in terminal:
            out.append(VIRTUAL_EXIT)
        return out

    changed = True
    while changed:
        changed = False
        for label in rpo[1:]:
            candidates = [
                p for p in reversed_preds(label) if p in index and idom[p] is not None
            ]
            if not candidates:
                continue
            new_idom = candidates[0]
            for pred in candidates[1:]:
                new_idom = intersect(pred, new_idom)
            if idom[label] != new_idom:
                idom[label] = new_idom
                changed = True

    idom[VIRTUAL_EXIT] = None
    return DominatorTree(VIRTUAL_EXIT, idom)
