"""Reducibility check.

The paper's machinery (natural loops, loop-header phis as SCR anchors)
assumes reducible control flow; Tarjan's SCR argument "every value cycling
around the loop must pass through a phi [at a loop header]" fails for
irreducible regions.  The frontend can only produce reducible CFGs, but
hand-written IR might not -- the classifier refuses it rather than
answering wrongly.

A CFG is reducible iff every retreating edge (target earlier in RPO) is a
back edge (target dominates source).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.dominators import DominatorTree, dominator_tree
from repro.analysis.rpo import reverse_postorder
from repro.ir.function import Function


def irreducible_edges(
    function: Function, domtree: DominatorTree = None
) -> List[Tuple[str, str]]:
    """Retreating edges that are not back edges ([] for reducible CFGs)."""
    if domtree is None:
        domtree = dominator_tree(function)
    rpo = reverse_postorder(function)
    position = {label: index for index, label in enumerate(rpo)}
    offending = []
    for label in rpo:
        for succ in function.successors(label):
            if succ not in position:
                continue
            if position[succ] <= position[label] and not domtree.dominates(succ, label):
                offending.append((label, succ))
    return offending


def is_reducible(function: Function, domtree: DominatorTree = None) -> bool:
    return not irreducible_edges(function, domtree)
