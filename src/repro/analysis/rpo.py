"""Depth-first orderings of the CFG."""

from __future__ import annotations

from typing import List, Set

from repro.ir.function import Function


def postorder(function: Function) -> List[str]:
    """Labels of reachable blocks in DFS postorder (iterative DFS)."""
    visited: Set[str] = set()
    order: List[str] = []
    # stack of (label, iterator over successors)
    entry = function.entry_label
    if entry is None:
        return []
    stack = [(entry, iter(function.successors(entry)))]
    visited.add(entry)
    while stack:
        label, successors = stack[-1]
        advanced = False
        for succ in successors:
            if succ not in visited:
                visited.add(succ)
                stack.append((succ, iter(function.successors(succ))))
                advanced = True
                break
        if not advanced:
            order.append(label)
            stack.pop()
    return order


def reverse_postorder(function: Function) -> List[str]:
    """Reverse postorder: a topological order ignoring back edges."""
    return list(reversed(postorder(function)))


def reachable_blocks(function: Function) -> Set[str]:
    """Labels reachable from entry."""
    return set(postorder(function))
