"""Classical (pre-SSA) induction variable detection -- the comparison
baseline.

The paper's contrast class: textbook basic/derived IV detection that scans
loop bodies repeatedly to a fixed point [ASU86, CK77, ACK81], plus the ad
hoc pattern matcher vendors used for wrap-around variables [PW86].  Used by
the benchmarks to reproduce the paper's two quantitative claims: the SSA
algorithm is one-pass (the classical one iterates), and it classifies
strictly more variables.
"""

from repro.baseline.classical import ClassicalResult, classical_induction_variables
from repro.baseline.patterns import find_wraparound_patterns

__all__ = [
    "ClassicalResult",
    "classical_induction_variables",
    "find_wraparound_patterns",
]
