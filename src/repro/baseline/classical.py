"""Textbook induction variable detection on the *named* (pre-SSA) IR.

The classical algorithm [ASU86 section 10.7; CK77]:

* a **basic** induction variable is a variable whose only definitions in
  the loop have the form ``i = i + c`` / ``i = i - c`` with ``c`` loop
  invariant (extended, per [CK77, ACK81], to ``i = j + c`` where ``j`` is
  already known to be an IV in the same family -- found by iterating);
* a **derived** induction variable has exactly one in-loop definition
  ``k = a * i + b`` (in one of the affine shapes) with ``i`` a known IV and
  ``a, b`` invariant.

The implementation deliberately mirrors the classical structure --
*iterate over the loop body until nothing changes* -- because the paper's
complexity claim is exactly that its SSA formulation replaces this
iteration with a single linear pass.  ``ClassicalResult.passes`` records
how many body scans the fixed point took.

Limitations inherent to the approach (and shared by the textbook version):
variables with several in-loop definitions (Figure 3's if/else), wrap-
around, periodic, monotonic and geometric variables are all missed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.loops import Loop
from repro.ir.function import Function
from repro.ir.instructions import Assign, BinOp, Instruction, Phi
from repro.ir.opcodes import BinaryOp
from repro.ir.values import Const, Ref, Value


@dataclass
class ClassicalIV:
    """``var = factor * base + offset`` where base is a basic IV.

    For a basic IV, ``base`` is the variable itself, factor 1, offset 0,
    and ``step`` its per-iteration increment.
    """

    var: str
    base: str
    factor: Fraction
    offset: Fraction
    step: Optional[Fraction] = None  # basic IVs only

    @property
    def is_basic(self) -> bool:
        return self.var == self.base


@dataclass
class ClassicalResult:
    loop: str
    basic: Dict[str, ClassicalIV] = field(default_factory=dict)
    derived: Dict[str, ClassicalIV] = field(default_factory=dict)
    passes: int = 0
    statements_visited: int = 0

    def all_ivs(self) -> Dict[str, ClassicalIV]:
        out = dict(self.basic)
        out.update(self.derived)
        return out


def classical_induction_variables(function: Function, loop: Loop) -> ClassicalResult:
    """Run the classical fixed-point detection for one loop."""
    from repro.analysis.dominators import dominator_tree

    result = ClassicalResult(loop.header)
    domtree = dominator_tree(function)

    body_insts: List[Instruction] = []
    defs_in_loop: Dict[str, List[Instruction]] = {}
    def_block: Dict[int, str] = {}
    uses_in_loop: Dict[str, List[Tuple[str, int]]] = {}
    block_position: Dict[int, int] = {}
    for label in sorted(loop.body):
        for position, inst in enumerate(function.block(label)):
            body_insts.append(inst)
            block_position[id(inst)] = position
            if inst.result is not None:
                defs_in_loop.setdefault(inst.result, []).append(inst)
                def_block[id(inst)] = label
            for value in inst.uses():
                if isinstance(value, Ref):
                    uses_in_loop.setdefault(value.name, []).append((label, position))

    def unconditional(inst: Instruction) -> bool:
        """The classical analysis assumes each IV update executes exactly
        once per iteration: its block must dominate every latch."""
        label = def_block[id(inst)]
        return all(domtree.dominates(label, latch) for latch in loop.latches)

    def defined_before_all_uses(inst: Instruction) -> bool:
        """A derived IV is only valid at/after its definition; a use that
        can execute earlier in the iteration (the wrap-around shape) makes
        the classical classification wrong, so it is rejected."""
        label = def_block[id(inst)]
        position = block_position[id(inst)]
        for use_label, use_position in uses_in_loop.get(inst.result, []):
            if use_label == label:
                if use_position < position:
                    return False
            elif not domtree.dominates(label, use_label):
                return False
        return True

    def invariant_const(value: Value) -> Optional[Fraction]:
        """Loop-invariant integer operands (constants only, like a compiler
        without auxiliary constant propagation would see)."""
        if isinstance(value, Const):
            return Fraction(value.value)
        return None

    def is_invariant(value: Value) -> bool:
        if isinstance(value, Const):
            return True
        if isinstance(value, Ref):
            return value.name not in defs_in_loop
        return False

    # ------------------------------------------------------------------
    # phase 1: basic IVs -- i = i +/- c only, all defs of i in that shape
    # ------------------------------------------------------------------
    candidates: Dict[str, Fraction] = {}
    rejected: Set[str] = set()
    for var, defs in defs_in_loop.items():
        total = Fraction(0)
        ok = True
        for inst in defs:
            result.statements_visited += 1
            step = _basic_step(inst, var, invariant_const)
            if step is None or not unconditional(inst):
                ok = False
                break
            total += step
        if ok and total != 0:
            candidates[var] = total
        else:
            rejected.add(var)
    for var, step in candidates.items():
        result.basic[var] = ClassicalIV(var, var, Fraction(1), Fraction(0), step=step)

    # ------------------------------------------------------------------
    # phase 2: derived IVs -- iterate until fixed point
    # ------------------------------------------------------------------
    changed = True
    while changed:
        changed = False
        result.passes += 1
        known = result.all_ivs()
        for inst in body_insts:
            result.statements_visited += 1
            var = inst.result
            if var is None or var in known or var in result.basic:
                continue
            if len(defs_in_loop.get(var, [])) != 1:
                continue  # classical detection needs a unique definition
            if not defined_before_all_uses(inst):
                continue  # use-before-def: the wrap-around shape
            derived = _derive(inst, known, invariant_const, is_invariant)
            if derived is not None:
                base_iv = known[derived[0]]
                result.derived[var] = ClassicalIV(
                    var,
                    base_iv.base,
                    derived[1] * base_iv.factor,
                    derived[1] * base_iv.offset + derived[2],
                )
                changed = True
    return result


def _basic_step(inst: Instruction, var: str, invariant_const) -> Optional[Fraction]:
    """Step of a ``var = var +/- c`` definition, else None."""
    if not isinstance(inst, BinOp):
        return None
    if inst.op is BinaryOp.ADD:
        if isinstance(inst.lhs, Ref) and inst.lhs.name == var:
            return invariant_const(inst.rhs)
        if isinstance(inst.rhs, Ref) and inst.rhs.name == var:
            return invariant_const(inst.lhs)
        return None
    if inst.op is BinaryOp.SUB:
        if isinstance(inst.lhs, Ref) and inst.lhs.name == var:
            value = invariant_const(inst.rhs)
            return -value if value is not None else None
        return None
    return None


def _derive(
    inst: Instruction, known: Dict[str, ClassicalIV], invariant_const, is_invariant
) -> Optional[Tuple[str, Fraction, Fraction]]:
    """Match ``k = a*i + b`` shapes; returns (base_var, factor, offset)."""
    if isinstance(inst, Assign) and isinstance(inst.src, Ref) and inst.src.name in known:
        return (inst.src.name, Fraction(1), Fraction(0))
    if not isinstance(inst, BinOp):
        return None
    lhs, rhs = inst.lhs, inst.rhs

    def iv_name(value: Value) -> Optional[str]:
        if isinstance(value, Ref) and value.name in known:
            return value.name
        return None

    if inst.op is BinaryOp.ADD:
        for a, b in ((lhs, rhs), (rhs, lhs)):
            name = iv_name(a)
            const = invariant_const(b)
            if name is not None and const is not None:
                return (name, Fraction(1), const)
    elif inst.op is BinaryOp.SUB:
        name = iv_name(lhs)
        const = invariant_const(rhs)
        if name is not None and const is not None:
            return (name, Fraction(1), -const)
        name = iv_name(rhs)
        const = invariant_const(lhs)
        if name is not None and const is not None:
            return (name, Fraction(-1), const)
    elif inst.op is BinaryOp.MUL:
        for a, b in ((lhs, rhs), (rhs, lhs)):
            name = iv_name(a)
            const = invariant_const(b)
            if name is not None and const is not None:
                return (name, const, Fraction(0))
    return None
