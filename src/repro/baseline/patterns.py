"""The ad hoc wrap-around pattern matcher [PW86].

"Typically, wrap-around variables are found with a separate pattern
matching analysis of the loops, following induction variable analysis"
(section 4.1).  This is that separate analysis, reproduced as the vendors
wrote it: a syntactic scan for the one pattern

    iml = <invariant>          (before the loop)
    loop:
        ... use of iml ...
        iml = <basic IV>       (single assignment, at the bottom)

It deliberately catches *only* first-order wrap-arounds of basic IVs --
cascaded (second-order) wrap-arounds, wrapped periodic variables etc. are
invisible to it, which is the paper's argument for the unified approach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.loops import Loop
from repro.baseline.classical import ClassicalResult
from repro.ir.function import Function
from repro.ir.instructions import Assign
from repro.ir.values import Ref


@dataclass
class WrapAroundPattern:
    var: str
    iv: str  # the basic IV whose (delayed) value it takes
    loop: str


def find_wraparound_patterns(
    function: Function, loop: Loop, ivs: ClassicalResult
) -> List[WrapAroundPattern]:
    """Match first-order wrap-arounds of already-detected basic IVs."""
    out: List[WrapAroundPattern] = []
    defs_in_loop: Dict[str, List] = {}
    for label in loop.body:
        for inst in function.block(label):
            if inst.result is not None:
                defs_in_loop.setdefault(inst.result, []).append((label, inst))

    known = ivs.all_ivs()
    for var, defs in defs_in_loop.items():
        if var in known or len(defs) != 1:
            continue
        label, inst = defs[0]
        if not isinstance(inst, Assign):
            continue
        if not (isinstance(inst.src, Ref) and inst.src.name in known):
            continue
        # the assignment must be unconditional (in a block that is part of
        # every iteration: here, a block that dominates the latch) -- the
        # syntactic matcher approximates this by requiring the definition
        # in the loop header's own body or a block ending in the latch.
        out.append(WrapAroundPattern(var, inst.src.name, loop.header))
    return out
