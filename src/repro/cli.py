"""Command-line interface: ``python -m repro [options] file.loop``.

Reads a loop-language program (or stdin with ``-``) and prints the full
analysis report: classifications in the paper's tuple notation, trip
counts, exit values, the dependence graph and parallelism verdicts.

Options::

    --dump-ir          include the SSA IR in the report
    --dump-named-ir    print the pre-SSA IR and exit
    --temps            include compiler temporaries ($t...) in the report
    --no-deps          skip dependence testing
    --no-opt           skip SCCP/simplification before classification
    --dot-cfg          emit the CFG in Graphviz DOT instead of a report
    --dot-ssa          emit the SSA graph in DOT
    --dot-deps         emit the dependence graph in DOT
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.pipeline import analyze
from repro.report import format_report


def build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SSA-based loop variable classification "
        "(Wolfe, 'Beyond Induction Variables', PLDI 1992)",
    )
    parser.add_argument("file", help="loop-language source file, or - for stdin")
    parser.add_argument("--dump-ir", action="store_true", help="include the SSA IR")
    parser.add_argument(
        "--dump-named-ir", action="store_true", help="print pre-SSA IR and exit"
    )
    parser.add_argument(
        "--temps", action="store_true", help="include compiler temporaries"
    )
    parser.add_argument("--no-deps", action="store_true", help="skip dependence testing")
    parser.add_argument("--no-opt", action="store_true", help="skip SCCP/simplify")
    parser.add_argument("--dot-cfg", action="store_true", help="emit CFG as DOT")
    parser.add_argument("--dot-ssa", action="store_true", help="emit SSA graph as DOT")
    parser.add_argument("--dot-deps", action="store_true", help="emit dep graph as DOT")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_argument_parser().parse_args(argv)
    if args.file == "-":
        source = sys.stdin.read()
    else:
        try:
            with open(args.file) as handle:
                source = handle.read()
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    try:
        program = analyze(source, optimize=not args.no_opt)
    except Exception as error:  # frontend/IR errors carry positions
        print(f"error: {error}", file=sys.stderr)
        return 1

    if args.dump_named_ir:
        from repro.ir.printer import print_function

        print(print_function(program.named_ir))
        return 0
    if args.dot_cfg:
        from repro.ir.dot import cfg_to_dot

        print(cfg_to_dot(program.ssa))
        return 0
    if args.dot_ssa:
        from repro.ir.dot import ssa_graph_to_dot

        print(ssa_graph_to_dot(program.ssa))
        return 0
    if args.dot_deps:
        from repro.dependence.graph import build_dependence_graph
        from repro.ir.dot import dependence_graph_to_dot

        print(dependence_graph_to_dot(build_dependence_graph(program.result)))
        return 0

    print(
        format_report(
            program,
            show_temporaries=args.temps,
            show_dependences=not args.no_deps,
            show_ir=args.dump_ir,
        )
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
