"""Command-line interface: ``python -m repro [options] file.loop``.

Reads a loop-language program (or stdin with ``-``) and prints the full
analysis report: classifications in the paper's tuple notation, trip
counts, exit values, the dependence graph and parallelism verdicts.

Options::

    --dump-ir          include the SSA IR in the report
    --dump-named-ir    print the pre-SSA IR and exit
    --temps            include compiler temporaries ($t...) in the report
    --no-deps          skip dependence testing
    --no-opt           skip SCCP/simplification before classification
    --dot-cfg          emit the CFG in Graphviz DOT instead of a report
    --dot-ssa          emit the SSA graph in DOT
    --dot-deps         emit the dependence graph in DOT
    --verify           re-verify the final SSA, collect-all, report findings
    --lint             append the semantic-lint findings to the report
    --ranges           run the value-range analysis: report predicted
                       intervals per loop, run the RNG6xx checks with
                       --verify/--lint, and tighten dependence tests
    --invariants       run the path-sensitive invariants phase: report
                       per-path updates and polynomial equalities per
                       loop, and run the INV7xx replay checks with
                       --verify/--lint
    --strict           with --verify/--lint: exit 1 on error-severity findings
    --strict-errors    disable failure isolation: raise on the first
                       internal error instead of degrading to Unknown
    --inject POINT     arm the deterministic fault-injection harness at a
                       named fault point (see repro.resilience.FAULT_POINTS;
                       repeatable) -- for testing degraded behaviour
    --sanitize         run the pipeline with the pass sanitizer enabled
    --trace FILE       write a Chrome trace of this run (chrome://tracing)
    --metrics FILE     write this run's metrics snapshot as JSON
    --prom FILE        write this run's metrics in Prometheus text format
    --runlog [DIR]     append one flight-recorder record per analyzed
                       function to a run-log store (default .repro/runs);
                       aggregate later with ``repro stats``
    --explain VAR      append VAR's classification derivation chain
                       (repeatable); see ``repro.obs.explain``
    --deadline-s S     wall-clock budget for each input's whole analysis;
                       overrun degrades instead of failing (also on lint)
    --max-expr-terms N cap symbolic expression growth (also on lint)
    --version          print the package version and exit

``python -m repro report ...`` is an explicit alias for the default
report mode.  When the positional path is a **directory** (or a Python
file with embedded programs), report mode runs over every harvested
program -- a corpus run -- printing one report per input; combined with
``--runlog`` this populates a store for ``repro stats``.

Stats mode (``python -m repro stats``)::

    python -m repro stats [STORE] [--format=text|json] [--strict]
    python -m repro stats --diff RUN_A RUN_B [--format=text|json]

aggregates the run-log records of a store (directory of ``.jsonl`` run
files, or one run file) into corpus-scale statistics: class-distribution
histograms, DOALL/serial fractions with the why-not-DOALL attribution
table, degradation rollups, and p50/p99 per-phase latencies.
``--strict`` exits 1 on malformed or schema-drifted records and on any
serial loop whose structured reason chain is empty; ``--diff`` compares
two stores or run files.

Lint mode (``python -m repro lint``)::

    python -m repro lint [--format=text|json] [--strict] [--no-exec]
                         [--ranges] [--invariants] PATH...

Pylint mode (``python -m repro pylint``)::

    python -m repro pylint [--format=text|json] [--out FILE]
                           [--fail-on error|warning|note|never]
                           [--no-ranges] [--no-invariants]
                           [--runlog [DIR]] PATH...

compiles **real CPython functions** (the supported subset is catalogued
in ``docs/PYTHON.md``) to repro IR via the stdlib ``ast`` module and
runs the full analysis over each: classifications, RNG6xx range
findings on real code, and provable-DOALL verdicts with why-not reason
chains.  Unsupported constructs degrade to ``PYF4xx`` findings --
pointing it at an arbitrary package reports instead of crashing.
``--fail-on error`` is the CI gate; ``--out`` writes the JSON corpus
report artifact.

Trace mode (``python -m repro trace``)::

    python -m repro trace [--format=chrome|jsonl] [--out FILE]
                          [--metrics FILE] [--no-opt] PATH...

Serve mode (``python -m repro serve``)::

    python -m repro serve [--host H] [--port P] [--workers N]
                          [--timeout-s S] [--cache N] [--runlog [DIR]]
                          [--inject POINT ...] [--deadline-s S]

runs the fault-tolerant analysis service: a TCP daemon speaking
length-prefixed JSON that shards analysis requests across a pool of
worker processes with bounded retries, hung-worker kill/respawn,
per-fingerprint circuit breaking, result caching, and graceful SIGTERM
drain.  Worker crashes degrade the affected request (RES506) -- they
never kill the server.  See ``docs/SERVICE.md``.

runs the full pipeline over every program found under the given paths
with span tracing and metrics collection enabled, then exports the trace
(Chrome trace-event JSON by default, validated before writing) and,
optionally, the metrics snapshot.

Paths may be ``.loop`` files, Python files with embedded programs
(harvested like ``examples/``), or directories of either.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.pipeline import analyze
from repro.report import format_report


def build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SSA-based loop variable classification "
        "(Wolfe, 'Beyond Induction Variables', PLDI 1992)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "file",
        help="loop-language source file, - for stdin, or a directory / "
        "Python file of embedded programs (corpus mode)",
    )
    parser.add_argument("--dump-ir", action="store_true", help="include the SSA IR")
    parser.add_argument(
        "--dump-named-ir", action="store_true", help="print pre-SSA IR and exit"
    )
    parser.add_argument(
        "--temps", action="store_true", help="include compiler temporaries"
    )
    parser.add_argument("--no-deps", action="store_true", help="skip dependence testing")
    parser.add_argument("--no-opt", action="store_true", help="skip SCCP/simplify")
    parser.add_argument("--dot-cfg", action="store_true", help="emit CFG as DOT")
    parser.add_argument("--dot-ssa", action="store_true", help="emit SSA graph as DOT")
    parser.add_argument("--dot-deps", action="store_true", help="emit dep graph as DOT")
    parser.add_argument(
        "--verify",
        action="store_true",
        help="verify the final SSA (collect-all) and report the findings",
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help="run the semantic lints and append their findings to the report",
    )
    parser.add_argument(
        "--ranges",
        action="store_true",
        help="run the value-range analysis: report predicted intervals, "
        "run the RNG6xx checks with --verify/--lint, and let dependence "
        "tests use symbolic trip-count bounds",
    )
    parser.add_argument(
        "--invariants",
        action="store_true",
        help="run the path-sensitive invariants phase: report per-path "
        "updates and polynomial equalities, and run the INV7xx replay "
        "checks with --verify/--lint",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when --verify/--lint report error-severity findings",
    )
    parser.add_argument(
        "--strict-errors",
        action="store_true",
        dest="strict_errors",
        help="disable failure isolation: raise on the first internal error "
        "instead of degrading the affected loop/phase to Unknown",
    )
    parser.add_argument(
        "--inject",
        metavar="POINT",
        action="append",
        default=None,
        dest="inject",
        help="arm the fault-injection harness at a named fault point "
        "(repeatable; 'list' prints the catalogue)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="re-verify the IR and audit caches after every pipeline pass",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="write a Chrome trace-event JSON of this run to FILE",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help="write this run's metrics snapshot as JSON to FILE",
    )
    parser.add_argument(
        "--prom",
        metavar="FILE",
        default=None,
        help="write this run's metrics in Prometheus text exposition "
        "format to FILE",
    )
    parser.add_argument(
        "--runlog",
        metavar="DIR",
        nargs="?",
        const="",
        default=None,
        help="record one flight-recorder record per analyzed function "
        "into a run-log store (default: .repro/runs); aggregate with "
        "'repro stats'",
    )
    parser.add_argument(
        "--explain",
        metavar="VAR",
        action="append",
        default=None,
        help="append the classification derivation chain of VAR "
        "(source variable or SSA name); may be repeated",
    )
    _add_budget_arguments(parser)
    return parser


def _add_budget_arguments(parser: argparse.ArgumentParser) -> None:
    """The resource-budget flags shared by report, lint, and serve."""
    parser.add_argument(
        "--deadline-s",
        metavar="SECONDS",
        type=float,
        default=None,
        dest="deadline_s",
        help="wall-clock budget for the whole analysis of each input; "
        "overrun degrades the remaining phases (RES503) instead of "
        "failing the run",
    )
    parser.add_argument(
        "--max-expr-terms",
        metavar="N",
        type=int,
        default=None,
        dest="max_expr_terms",
        help="cap the monomial count of any symbolic expression; "
        "exhaustion degrades the affected loop to Unknown (RES503)",
    )


def _collect_or_fail(collect, what: str):
    """Run a corpus-discovery callable with uniform error reporting.

    All corpus walkers (report, lint, trace, pylint) agree this way: an
    unreadable path prints ``error: ...`` and an empty harvest prints
    ``error: no <what> found``; both return ``None`` (callers exit 2).
    """
    try:
        targets = collect()
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return None
    if not targets:
        print(f"error: no {what} found", file=sys.stderr)
        return None
    return targets


def _budget_from_args(args):
    """The :class:`AnalysisBudget` the budget flags describe (or None)."""
    deadline = getattr(args, "deadline_s", None)
    terms = getattr(args, "max_expr_terms", None)
    if deadline is None and terms is None:
        return None
    from repro.resilience.budget import AnalysisBudget

    return AnalysisBudget(
        max_expr_terms=terms,
        phase_deadline_s=deadline,
        request_deadline_s=deadline,
    )


def build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Lint loop-language programs: IR verification, pipeline "
        "sanitizing, and classification-soundness checks",
    )
    parser.add_argument(
        "paths",
        nargs="+",
        metavar="PATH",
        help=".loop file, Python file with embedded programs, or directory",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="format",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any error-severity finding is reported",
    )
    parser.add_argument(
        "--no-exec",
        action="store_true",
        help="skip the execution lints (interpreter cross-checks)",
    )
    parser.add_argument(
        "--ranges",
        action="store_true",
        help="also run the value-range analysis and its RNG6xx checks "
        "(out-of-bounds subscripts, division by zero, empty loops)",
    )
    parser.add_argument(
        "--invariants",
        action="store_true",
        help="also run the polynomial-invariant phase and its INV7xx "
        "replay checks (equalities and step bounds vs. the interpreter)",
    )
    _add_budget_arguments(parser)
    return parser


def lint_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro lint``."""
    from repro.diagnostics import render_json, render_text
    from repro.diagnostics.diagnostic import DiagnosticCollector
    from repro.diagnostics.driver import collect_targets, lint_source

    args = build_lint_parser().parse_args(argv)
    targets = _collect_or_fail(
        lambda: collect_targets(args.paths), "lint targets"
    )
    if targets is None:
        return 2

    from repro.obs import metrics as metrics_mod

    budget = _budget_from_args(args)
    collector = DiagnosticCollector()
    for target in targets:
        # scope any live metrics registry per input: counters from one
        # file must not bleed into the next file's snapshot
        with metrics_mod.isolated():
            lint_source(
                target.source,
                origin=target.origin,
                collector=collector,
                execution=not args.no_exec,
                ranges=args.ranges,
                invariants=args.invariants,
                budget=budget,
            )

    if args.format == "json":
        print(render_json(collector.sorted()))
    else:
        print(render_text(collector.sorted()))
    if args.strict and collector.has_errors:
        return 1
    return 0


def build_pylint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro pylint",
        description="Compile real CPython functions to repro IR "
        "(docs/PYTHON.md) and run the full analysis over a package: "
        "classifications, value-range findings, provable-DOALL verdicts "
        "with why-not reason chains.  Unsupported constructs degrade to "
        "PYF4xx findings; the run never crashes on arbitrary code.",
    )
    parser.add_argument(
        "paths",
        nargs="+",
        metavar="PATH",
        help="Python file or package directory (walked recursively)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="also write the JSON corpus report to FILE (the CI artifact)",
    )
    parser.add_argument(
        "--fail-on",
        choices=("error", "warning", "note", "never"),
        default="never",
        dest="fail_on",
        help="exit 1 when any finding is at or above this severity "
        "(default: never); 'error' gates CI on real defects while "
        "tolerating PYF4xx degradation warnings",
    )
    parser.add_argument(
        "--no-ranges",
        action="store_true",
        help="skip the value-range phase and its RNG6xx checks",
    )
    parser.add_argument(
        "--no-invariants",
        action="store_true",
        help="skip the polynomial-invariant phase",
    )
    parser.add_argument(
        "--runlog",
        metavar="DIR",
        nargs="?",
        const="",
        default=None,
        help="record one flight-recorder record per analyzed function "
        "(tagged source_lang=python) into a run-log store (default: "
        ".repro/runs); aggregate with 'repro stats'",
    )
    _add_budget_arguments(parser)
    return parser


def pylint_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro pylint``."""
    from repro.diagnostics.diagnostic import Severity
    from repro.diagnostics.driver import discover_files
    from repro.obs import observing
    from repro.obs import runlog as runlog_mod
    from repro.pyfront import (
        pylint_paths,
        render_corpus_json,
        render_corpus_text,
    )

    args = build_pylint_parser().parse_args(argv)
    files = _collect_or_fail(
        lambda: discover_files(args.paths, (".py",)), "Python files"
    )
    if files is None:
        return 2

    from contextlib import ExitStack

    with ExitStack() as stack:
        if args.runlog is not None:
            from repro.obs.runlog import DEFAULT_STORE

            stack.enter_context(observing())
            stack.enter_context(
                runlog_mod.recording(args.runlog or DEFAULT_STORE)
            )
        result = pylint_paths(
            files,
            ranges=not args.no_ranges,
            invariants=not args.no_invariants,
            budget=_budget_from_args(args),
        )

    if args.out:
        with open(args.out, "w") as handle:
            handle.write(render_corpus_json(result) + "\n")
    if args.format == "json":
        print(render_corpus_json(result))
    else:
        print(render_corpus_text(result))

    if args.fail_on != "never":
        threshold = Severity[args.fail_on.upper()]
        if any(d.severity >= threshold for d in result.findings):
            return 1
    return 0


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Run the analysis pipeline with span tracing and "
        "metrics collection enabled, then export the records",
    )
    parser.add_argument(
        "paths",
        nargs="+",
        metavar="PATH",
        help=".loop file, Python file with embedded programs, or directory",
    )
    parser.add_argument(
        "--format",
        choices=("chrome", "jsonl"),
        default="chrome",
        dest="format",
        help="trace output format (default: chrome)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="trace output file (default: trace.json / trace.jsonl)",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help="also write the metrics snapshot as JSON to FILE",
    )
    parser.add_argument("--no-opt", action="store_true", help="skip SCCP/simplify")
    return parser


def trace_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro trace``."""
    from repro.diagnostics.driver import collect_targets
    from repro.obs import observing, span
    from repro.obs.export import (
        chrome_trace,
        validate_chrome_trace,
        write_chrome,
        write_jsonl,
        write_metrics,
    )

    args = build_trace_parser().parse_args(argv)
    targets = _collect_or_fail(
        lambda: collect_targets(args.paths), "trace targets"
    )
    if targets is None:
        return 2

    from repro.obs import metrics as metrics_mod

    failures = 0
    with observing() as obs:
        for target in targets:
            # per-input registry scope (merged back into obs.metrics) so
            # one target's counters never bleed into the next target's
            # per-input snapshots
            with span("trace.target", target=target.origin), metrics_mod.isolated():
                try:
                    analyze(target.source, optimize=not args.no_opt)
                except Exception as error:
                    failures += 1
                    print(f"warning: {target.origin}: {error}", file=sys.stderr)

    out = args.out or ("trace.json" if args.format == "chrome" else "trace.jsonl")
    if args.format == "chrome":
        problem = validate_chrome_trace(chrome_trace(obs.tracer))
        if problem is not None:  # pragma: no cover - structural self-check
            print(f"error: invalid chrome trace: {problem}", file=sys.stderr)
            return 1
        write_chrome(obs.tracer, out)
    else:
        write_jsonl(obs.tracer, out)
    if args.metrics:
        write_metrics(obs.metrics, args.metrics)

    traced_ok = len(targets) - failures
    print(
        f"traced {traced_ok}/{len(targets)} programs -> {out} "
        f"({len(obs.tracer.spans)} spans, {len(obs.tracer.events)} events)"
    )
    return 0 if failures == 0 else 1


def build_stats_parser() -> argparse.ArgumentParser:
    from repro.obs.runlog import DEFAULT_STORE

    parser = argparse.ArgumentParser(
        prog="repro stats",
        description="Aggregate flight-recorder run logs into corpus-scale "
        "statistics: class distributions, why-not-DOALL attribution, "
        "degradation rollups, and phase latencies",
    )
    parser.add_argument(
        "store",
        nargs="?",
        default=DEFAULT_STORE,
        metavar="STORE",
        help="run-log store: a directory of .jsonl run files or one run "
        f"file (default: {DEFAULT_STORE})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="format",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on malformed or schema-drifted records, capture "
        "errors, or serial loops with an empty why-not-DOALL chain",
    )
    parser.add_argument(
        "--diff",
        nargs=2,
        metavar=("RUN_A", "RUN_B"),
        default=None,
        help="compare two stores (or run files) instead of aggregating one",
    )
    return parser


def stats_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro stats``."""
    import repro.obs.aggregate as agg

    args = build_stats_parser().parse_args(argv)
    if args.diff:
        try:
            old = agg.aggregate(agg.load_records(args.diff[0]))
            new = agg.aggregate(agg.load_records(args.diff[1]))
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        diff = agg.diff_stats(old, new)
        if args.format == "json":
            import json

            print(json.dumps(diff, indent=2, sort_keys=True))
        else:
            print(agg.render_diff_text(diff))
        return 0

    try:
        records = agg.load_records(args.store)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    stats = agg.aggregate(records)
    if args.format == "json":
        print(agg.render_json(stats))
    else:
        print(agg.render_text(stats))
    if args.strict:
        problems = agg.strict_problems(records)
        if problems:
            for problem in problems:
                print(f"strict: {problem}", file=sys.stderr)
            return 1
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the fault-tolerant analysis service: a TCP "
        "daemon sharding requests across a worker-process pool with "
        "retry/timeout/backoff, circuit breaking, result caching, and "
        "graceful degradation (see docs/SERVICE.md)",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=7457,
        help="TCP port (0 picks a free one; default: %(default)s)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="analysis worker processes (default: %(default)s)",
    )
    parser.add_argument(
        "--timeout-s",
        type=float,
        default=10.0,
        dest="timeout_s",
        metavar="SECONDS",
        help="hung-worker backstop: a job with no response within this "
        "window is killed, respawned, and degraded (default: %(default)s)",
    )
    parser.add_argument(
        "--idle-timeout-s",
        type=float,
        default=60.0,
        dest="idle_timeout_s",
        metavar="SECONDS",
        help="drop a connection whose peer sends no (or only a partial) "
        "frame for this long; 0 disables (default: %(default)s)",
    )
    parser.add_argument(
        "--cache",
        type=int,
        default=256,
        metavar="N",
        help="result-cache capacity in entries; 0 disables "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        metavar="N",
        help="consecutive worker-level failures on one fingerprint "
        "before its circuit opens (default: %(default)s)",
    )
    parser.add_argument(
        "--breaker-cooldown-s",
        type=float,
        default=30.0,
        dest="breaker_cooldown_s",
        metavar="SECONDS",
        help="seconds an open circuit sheds before one half-open trial "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--grace-s",
        type=float,
        default=5.0,
        dest="grace_s",
        metavar="SECONDS",
        help="drain window on SIGTERM/SIGINT (default: %(default)s)",
    )
    parser.add_argument(
        "--runlog",
        metavar="DIR",
        nargs="?",
        const="",
        default=None,
        help="append one flight-recorder record per analyzed program "
        "to a run-log store (default: .repro/runs)",
    )
    parser.add_argument(
        "--inject",
        metavar="POINT",
        action="append",
        default=None,
        help="arm fault injection inside the workers at a named point "
        "(repeatable; 'list' prints the catalogue); the chaos harness "
        "of the load test and CI",
    )
    parser.add_argument(
        "--inject-rate",
        type=float,
        default=1.0,
        dest="inject_rate",
        metavar="P",
        help="per-hit trip probability for --inject (default: %(default)s)",
    )
    parser.add_argument(
        "--inject-seed",
        type=int,
        default=None,
        dest="inject_seed",
        metavar="SEED",
        help="deterministic RNG seed for rate-based --inject",
    )
    parser.add_argument(
        "--inject-transient",
        action="store_true",
        dest="inject_transient",
        help="make injected faults transient (retryable) instead of "
        "hard crashes",
    )
    parser.add_argument(
        "--metrics",
        metavar="FILE",
        default=None,
        help="write the server's final metrics snapshot as JSON on drain",
    )
    parser.add_argument(
        "--prom",
        metavar="FILE",
        default=None,
        help="write the final metrics in Prometheus text format on drain",
    )
    _add_budget_arguments(parser)
    return parser


def serve_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro serve``."""
    import signal
    import threading

    from repro.obs import observing
    from repro.obs.runlog import DEFAULT_STORE
    from repro.resilience import all_fault_points
    from repro.resilience.budget import SERVICE_BUDGET
    from repro.service import AnalysisServer

    args = build_serve_parser().parse_args(argv)

    fault_spec = None
    if args.inject:
        if "list" in args.inject:
            for point in all_fault_points():
                print(point)
            return 0
        unknown = sorted(set(args.inject) - set(all_fault_points()))
        if unknown:
            print(
                f"error: unknown fault point(s) {', '.join(unknown)} "
                "(use --inject list)",
                file=sys.stderr,
            )
            return 2
        fault_spec = {
            "points": list(args.inject),
            "rate": args.inject_rate,
            "seed": args.inject_seed,
            "transient": args.inject_transient,
        }

    budget = _budget_from_args(args)
    if budget is not None:
        import dataclasses as _dc

        # the flags tighten the documented service default, they do not
        # replace its other caps
        overrides = {
            key: value
            for key, value in _dc.asdict(budget).items()
            if value is not None
        }
        budget = _dc.replace(SERVICE_BUDGET, **overrides)
    else:
        budget = SERVICE_BUDGET

    stop_requested = threading.Event()

    def _request_stop(signum, frame):  # noqa: ARG001 - signal signature
        stop_requested.set()

    previous_handlers = {
        signal.SIGTERM: signal.signal(signal.SIGTERM, _request_stop),
        signal.SIGINT: signal.signal(signal.SIGINT, _request_stop),
    }
    try:
        with observing() as observation:
            server = AnalysisServer(
                host=args.host,
                port=args.port,
                pool_size=args.workers,
                request_timeout_s=args.timeout_s,
                idle_timeout_s=args.idle_timeout_s,
                cache_capacity=args.cache,
                breaker_threshold=args.breaker_threshold,
                breaker_cooldown_s=args.breaker_cooldown_s,
                fault_spec=fault_spec,
                runlog_dir=(
                    (args.runlog or DEFAULT_STORE)
                    if args.runlog is not None
                    else None
                ),
                default_budget=budget,
            )
            try:
                host, port = server.start()
            except OSError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            print(f"listening on {host}:{port}", flush=True)
            while not stop_requested.is_set():
                stop_requested.wait(0.2)
            print("draining...", file=sys.stderr)
            server.stop(grace_s=args.grace_s)
            _write_observation_files(args, observation)
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
    print("drained", file=sys.stderr)
    return 0


def _corpus_report(args, observation_wanted: bool) -> int:
    """Report mode over a directory / embedded-program corpus.

    Runs the pipeline on every harvested program, printing one report per
    input.  Each input gets its own metrics scope
    (:func:`repro.obs.metrics.isolated`) and run-log origin label, so
    ``--runlog`` produces per-input flight-recorder records that
    ``repro stats`` can attribute.
    """
    from contextlib import ExitStack

    from repro.diagnostics.driver import collect_targets
    from repro.obs import metrics as metrics_mod, observing
    from repro.obs import runlog as runlog_mod

    for flag, name in (
        (args.dump_named_ir, "--dump-named-ir"),
        (args.dot_cfg, "--dot-cfg"),
        (args.dot_ssa, "--dot-ssa"),
        (args.dot_deps, "--dot-deps"),
        (args.explain, "--explain"),
    ):
        if flag:
            print(
                f"error: {name} is not supported with a directory input",
                file=sys.stderr,
            )
            return 2

    targets = _collect_or_fail(lambda: collect_targets([args.file]), "programs")
    if targets is None:
        return 2

    failures = 0
    with ExitStack() as stack:
        observation = None
        if observation_wanted:
            observation = stack.enter_context(observing())
        writer = None
        if args.runlog is not None:
            from repro.obs.runlog import DEFAULT_STORE

            writer = stack.enter_context(
                runlog_mod.recording(args.runlog or DEFAULT_STORE)
            )
        budget = _budget_from_args(args)
        for index, target in enumerate(targets):
            with metrics_mod.isolated(), runlog_mod.origin(target.origin):
                try:
                    program = analyze(
                        target.source,
                        optimize=not args.no_opt,
                        sanitize=args.sanitize,
                        strict=args.strict_errors,
                        ranges=args.ranges,
                        invariants=args.invariants,
                        budget=budget,
                    )
                except Exception as error:
                    failures += 1
                    print(f"warning: {target.origin}: {error}", file=sys.stderr)
                    continue
            if index:
                print()
            print(f"== {target.origin} ==")
            print(
                format_report(
                    program,
                    show_temporaries=args.temps,
                    show_dependences=not args.no_deps,
                    show_ir=args.dump_ir,
                )
            )
        _write_observation_files(args, observation)
    if writer is not None:
        print(
            f"recorded {writer.records_written} record(s) -> {writer.path}",
            file=sys.stderr,
        )
    return 0 if failures == 0 else 1


def _write_observation_files(args, observation) -> None:
    """Export --trace / --metrics / --prom files after a run."""
    if observation is None:
        return
    if getattr(args, "trace", None):
        from repro.obs.export import write_chrome

        write_chrome(observation.tracer, args.trace)
    if args.metrics:
        from repro.obs.export import write_metrics

        write_metrics(observation.metrics, args.metrics)
    if args.prom:
        from repro.obs.promexport import write_prometheus

        write_prometheus(observation.metrics, args.prom)


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        return lint_main(argv[1:])
    if argv and argv[0] == "pylint":
        return pylint_main(argv[1:])
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "stats":
        return stats_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "report":
        argv = argv[1:]
    args = build_argument_parser().parse_args(argv)

    observation_wanted = bool(
        args.trace or args.metrics or args.prom or args.runlog is not None
    )
    import os

    if args.file != "-" and (
        os.path.isdir(args.file) or args.file.endswith(".py")
    ):
        return _corpus_report(args, observation_wanted)

    if args.file == "-":
        source = sys.stdin.read()
    else:
        try:
            with open(args.file) as handle:
                source = handle.read()
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    from contextlib import nullcontext

    inject_ctx = nullcontext()
    if args.inject:
        from repro.resilience import FaultPlan, all_fault_points, injecting

        if "list" in args.inject:
            for point in all_fault_points():
                print(point)
            return 0
        unknown = sorted(set(args.inject) - set(all_fault_points()))
        if unknown:
            print(
                f"error: unknown fault point(s) {', '.join(unknown)} "
                "(use --inject list)",
                file=sys.stderr,
            )
            return 2
        inject_ctx = injecting(FaultPlan(points=set(args.inject)))

    observation = None
    try:
        from contextlib import ExitStack

        with inject_ctx, ExitStack() as stack:
            if observation_wanted:
                from repro.obs import observing

                observation = stack.enter_context(observing())
            if args.runlog is not None:
                from repro.obs import runlog as runlog_mod

                stack.enter_context(
                    runlog_mod.recording(args.runlog or runlog_mod.DEFAULT_STORE)
                )
                stack.enter_context(runlog_mod.origin(args.file))
            program = analyze(
                source,
                optimize=not args.no_opt,
                sanitize=args.sanitize,
                strict=args.strict_errors,
                ranges=args.ranges,
                invariants=args.invariants,
                budget=_budget_from_args(args),
            )
    except Exception as error:  # frontend/IR errors carry positions
        print(f"error: {error}", file=sys.stderr)
        return 1

    _write_observation_files(args, observation)

    if args.dump_named_ir:
        from repro.ir.printer import print_function

        print(print_function(program.named_ir))
        return 0
    if args.dot_cfg:
        from repro.ir.dot import cfg_to_dot

        print(cfg_to_dot(program.ssa))
        return 0
    if args.dot_ssa:
        from repro.ir.dot import ssa_graph_to_dot

        print(ssa_graph_to_dot(program.ssa))
        return 0
    if args.dot_deps:
        from repro.dependence.graph import build_dependence_graph
        from repro.ir.dot import dependence_graph_to_dot

        print(dependence_graph_to_dot(build_dependence_graph(program.result)))
        return 0

    diagnostics = None
    if args.verify or args.lint:
        from repro.diagnostics.diagnostic import DiagnosticCollector
        from repro.diagnostics.verifier import verify_collect
        from repro.resilience.isolation import diagnostics_of

        collector = DiagnosticCollector()
        verify_collect(program.ssa, ssa=True, collector=collector)
        if args.lint:
            from repro.diagnostics.lints import lint_program

            lint_program(program, collector=collector)
        if args.ranges and program.result.ranges is not None:
            from repro.ranges import check_ranges

            check_ranges(program.result, program.result.ranges, collector)
        if args.invariants and program.result.invariants is not None:
            from repro.invariants import check_invariants

            check_invariants(program, collector)
        diagnostics_of(program.degradations, collector)
        diagnostics = collector.sorted()

    print(
        format_report(
            program,
            show_temporaries=args.temps,
            show_dependences=not args.no_deps,
            show_ir=args.dump_ir,
            diagnostics=diagnostics,
        )
    )
    if args.explain:
        from repro.obs.explain import explain

        for var in args.explain:
            print()
            print(f"== explain {var} ==")
            print(explain(program, var))
    if args.strict and diagnostics is not None and any(d.is_error for d in diagnostics):
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
