"""Command-line interface: ``python -m repro [options] file.loop``.

Reads a loop-language program (or stdin with ``-``) and prints the full
analysis report: classifications in the paper's tuple notation, trip
counts, exit values, the dependence graph and parallelism verdicts.

Options::

    --dump-ir          include the SSA IR in the report
    --dump-named-ir    print the pre-SSA IR and exit
    --temps            include compiler temporaries ($t...) in the report
    --no-deps          skip dependence testing
    --no-opt           skip SCCP/simplification before classification
    --dot-cfg          emit the CFG in Graphviz DOT instead of a report
    --dot-ssa          emit the SSA graph in DOT
    --dot-deps         emit the dependence graph in DOT
    --verify           re-verify the final SSA, collect-all, report findings
    --lint             append the semantic-lint findings to the report
    --strict           with --verify/--lint: exit 1 on error-severity findings
    --sanitize         run the pipeline with the pass sanitizer enabled
    --version          print the package version and exit

Lint mode (``python -m repro lint``)::

    python -m repro lint [--format=text|json] [--strict] [--no-exec] PATH...

Paths may be ``.loop`` files, Python files with embedded programs
(harvested like ``examples/``), or directories of either.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__
from repro.pipeline import analyze
from repro.report import format_report


def build_argument_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SSA-based loop variable classification "
        "(Wolfe, 'Beyond Induction Variables', PLDI 1992)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument("file", help="loop-language source file, or - for stdin")
    parser.add_argument("--dump-ir", action="store_true", help="include the SSA IR")
    parser.add_argument(
        "--dump-named-ir", action="store_true", help="print pre-SSA IR and exit"
    )
    parser.add_argument(
        "--temps", action="store_true", help="include compiler temporaries"
    )
    parser.add_argument("--no-deps", action="store_true", help="skip dependence testing")
    parser.add_argument("--no-opt", action="store_true", help="skip SCCP/simplify")
    parser.add_argument("--dot-cfg", action="store_true", help="emit CFG as DOT")
    parser.add_argument("--dot-ssa", action="store_true", help="emit SSA graph as DOT")
    parser.add_argument("--dot-deps", action="store_true", help="emit dep graph as DOT")
    parser.add_argument(
        "--verify",
        action="store_true",
        help="verify the final SSA (collect-all) and report the findings",
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help="run the semantic lints and append their findings to the report",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when --verify/--lint report error-severity findings",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="re-verify the IR and audit caches after every pipeline pass",
    )
    return parser


def build_lint_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Lint loop-language programs: IR verification, pipeline "
        "sanitizing, and classification-soundness checks",
    )
    parser.add_argument(
        "paths",
        nargs="+",
        metavar="PATH",
        help=".loop file, Python file with embedded programs, or directory",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="format",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 when any error-severity finding is reported",
    )
    parser.add_argument(
        "--no-exec",
        action="store_true",
        help="skip the execution lints (interpreter cross-checks)",
    )
    return parser


def lint_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro lint``."""
    from repro.diagnostics import render_json, render_text
    from repro.diagnostics.diagnostic import DiagnosticCollector
    from repro.diagnostics.driver import collect_targets, lint_source

    args = build_lint_parser().parse_args(argv)
    try:
        targets = collect_targets(args.paths)
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not targets:
        print("error: no lint targets found", file=sys.stderr)
        return 2

    collector = DiagnosticCollector()
    for target in targets:
        lint_source(
            target.source,
            origin=target.origin,
            collector=collector,
            execution=not args.no_exec,
        )

    if args.format == "json":
        print(render_json(collector.sorted()))
    else:
        print(render_text(collector.sorted()))
    if args.strict and collector.has_errors:
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        return lint_main(argv[1:])
    args = build_argument_parser().parse_args(argv)
    if args.file == "-":
        source = sys.stdin.read()
    else:
        try:
            with open(args.file) as handle:
                source = handle.read()
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    try:
        program = analyze(source, optimize=not args.no_opt, sanitize=args.sanitize)
    except Exception as error:  # frontend/IR errors carry positions
        print(f"error: {error}", file=sys.stderr)
        return 1

    if args.dump_named_ir:
        from repro.ir.printer import print_function

        print(print_function(program.named_ir))
        return 0
    if args.dot_cfg:
        from repro.ir.dot import cfg_to_dot

        print(cfg_to_dot(program.ssa))
        return 0
    if args.dot_ssa:
        from repro.ir.dot import ssa_graph_to_dot

        print(ssa_graph_to_dot(program.ssa))
        return 0
    if args.dot_deps:
        from repro.dependence.graph import build_dependence_graph
        from repro.ir.dot import dependence_graph_to_dot

        print(dependence_graph_to_dot(build_dependence_graph(program.result)))
        return 0

    diagnostics = None
    if args.verify or args.lint:
        from repro.diagnostics.diagnostic import DiagnosticCollector
        from repro.diagnostics.verifier import verify_collect

        collector = DiagnosticCollector()
        verify_collect(program.ssa, ssa=True, collector=collector)
        if args.lint:
            from repro.diagnostics.lints import lint_program

            lint_program(program, collector=collector)
        diagnostics = collector.sorted()

    print(
        format_report(
            program,
            show_temporaries=args.temps,
            show_dependences=not args.no_deps,
            show_ir=args.dump_ir,
            diagnostics=diagnostics,
        )
    )
    if args.strict and diagnostics is not None and any(d.is_error for d in diagnostics):
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
