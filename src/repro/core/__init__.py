"""The paper's contribution: SSA-graph classification of loop variables.

Entry point: :func:`repro.core.driver.classify_function` (or the one-call
:func:`repro.pipeline.analyze`).  The submodules follow the paper's
structure:

* :mod:`repro.core.classes` -- the classification lattice (section 2, 4):
  invariant, linear/polynomial/geometric induction variable, wrap-around,
  periodic, monotonic, unknown.
* :mod:`repro.core.tarjan` -- Tarjan's SCR algorithm, modified to classify
  each strongly connected region "at the time the SCR is identified"
  (section 3.1).
* :mod:`repro.core.scr` -- classification of one nontrivial SCR: cumulative
  effect of the cycle on the loop-header phi (sections 3.1, 4.2-4.4).
* :mod:`repro.core.algebra` -- the "algebra of types and operators" for
  variables outside any cycle (section 5.1).
* :mod:`repro.core.tripcount` -- countable loops (section 5.2).
* :mod:`repro.core.driver` -- nested loops, exit values, the inner-to-outer
  walk and the outer-to-inner substitution (section 5.3).
"""

from repro.core.classes import (
    Classification,
    InductionVariable,
    Invariant,
    Monotonic,
    Periodic,
    Unknown,
    WrapAround,
)
from repro.core.driver import AnalysisResult, LoopSummary, classify_function
from repro.core.tripcount import TripCount, TripCountKind

__all__ = [
    "Classification",
    "InductionVariable",
    "Invariant",
    "Monotonic",
    "Periodic",
    "Unknown",
    "WrapAround",
    "AnalysisResult",
    "LoopSummary",
    "classify_function",
    "TripCount",
    "TripCountKind",
]
