"""The algebra of classifications (section 5.1).

"The result of each type of operation depends on how its operands have been
classified. ... In general the compiler needs an algebra of types and
operators."  This module is that algebra: generic combinators
(:func:`cls_add`, :func:`cls_mul`, :func:`cls_scale`) over the
classification lattice, and :func:`classify_operator`, which classifies one
non-cyclic SSA node from its already-classified operands.

Everything here is conservative: any combination without a sound rule
produces :class:`Unknown`.  Notable rules beyond the obvious closed-form
arithmetic:

* wrap-around +/- invariant or IV stays wrap-around (pre-values and inner
  sequence adjusted);
* periodic +/- invariant (and scaled by an invariant) stays periodic;
* monotonic combined with invariants, other monotonics, or direction-
  compatible IVs stays monotonic ("adding a monotonic variable to an
  induction variable to get another monotonic variable");
* integer division / modulo of invariants yields an *opaque* invariant --
  sound even though no polynomial form exists -- and ``mod`` of an integer
  linear IV by a positive constant is recognized as periodic (an extension
  the paper's framework makes natural);
* ``const ** linear-IV`` is recognized as a geometric IV.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional, Tuple

from repro.core.classes import (
    BranchDependent,
    Classification,
    InductionVariable,
    Invariant,
    Monotonic,
    Periodic,
    Unknown,
    WrapAround,
    closedform_strict_sign,
)
from repro.ir.instructions import (
    Assign,
    BinOp,
    Compare,
    Load,
    Phi,
    Store,
    UnOp,
)
from repro.ir.opcodes import BinaryOp
from repro.ir.values import Const, Ref
from repro.symbolic.closedform import ClosedForm
from repro.symbolic.expr import Expr


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def cf_to_class(loop: str, form: ClosedForm) -> Classification:
    """Wrap a closed form as Invariant (if constant over h) or IV."""
    if form.is_invariant:
        return Invariant(form.init, loop=loop)
    return InductionVariable(loop, form)


def class_closed_form(cls: Classification) -> Optional[ClosedForm]:
    """Closed form of Invariant / IV classes (None otherwise)."""
    if isinstance(cls, (Invariant, InductionVariable)):
        return cls.closed_form()
    return None


def iv_direction(cls: Classification) -> Optional[int]:
    """Provable direction of an Invariant/IV (0 for invariant)."""
    if isinstance(cls, Invariant):
        return 0
    if isinstance(cls, InductionVariable):
        return cls.direction()
    return None


def iv_is_strict(cls: Classification) -> bool:
    if isinstance(cls, InductionVariable):
        difference = cls.form.shift(1) - cls.form
        return closedform_strict_sign(difference) is not None
    return False


# ----------------------------------------------------------------------
# generic combinators
# ----------------------------------------------------------------------
def cls_add(loop: str, a: Classification, b: Classification) -> Classification:
    """Classification of ``a + b`` within loop ``loop``."""
    if isinstance(a, Unknown) or isinstance(b, Unknown):
        return Unknown()
    # closed-form pair
    form_a = class_closed_form(a)
    form_b = class_closed_form(b)
    if form_a is not None and form_b is not None:
        return cf_to_class(loop, form_a + form_b)
    # order so the "bigger" class is first
    if isinstance(b, WrapAround) and not isinstance(a, WrapAround):
        a, b = b, a
        form_a, form_b = form_b, form_a
    if isinstance(b, Periodic) and not isinstance(a, (WrapAround, Periodic)):
        a, b = b, a
        form_a, form_b = form_b, form_a
    if isinstance(b, BranchDependent) and not isinstance(
        a, (WrapAround, Periodic, BranchDependent)
    ):
        a, b = b, a
        form_a, form_b = form_b, form_a
    if isinstance(b, Monotonic) and not isinstance(
        a, (WrapAround, Periodic, BranchDependent, Monotonic)
    ):
        a, b = b, a
        form_a, form_b = form_b, form_a

    if isinstance(a, WrapAround):
        if isinstance(b, (Invariant, InductionVariable)):
            inner = cls_add(loop, a.inner, b)
            if isinstance(inner, Unknown):
                return Unknown()
            pre = []
            for h, value in enumerate(a.pre_values):
                other = b.value_at(h)
                if other is None:
                    return Unknown()
                pre.append(value + other)
            return WrapAround(loop, a.order, inner, tuple(pre)).simplify()
        if isinstance(b, WrapAround):
            order = max(a.order, b.order)
            inner = cls_add(loop, a.inner, b.inner)
            if isinstance(inner, Unknown):
                return Unknown()
            pre = []
            for h in range(order):
                left = a.value_at(h)
                right = b.value_at(h)
                if left is None or right is None:
                    return Unknown()
                pre.append(left + right)
            return WrapAround(loop, order, inner, tuple(pre)).simplify()
        return Unknown()

    if isinstance(a, Periodic):
        if isinstance(b, Invariant):
            return Periodic(loop, tuple(v + b.expr for v in a.values))
        if isinstance(b, Periodic):
            period = _lcm(a.period, b.period)
            values = tuple(a.value_at(h) + b.value_at(h) for h in range(period))
            return Periodic(loop, values).simplify()
        return Unknown()

    if isinstance(a, BranchDependent):
        return _branch_dependent_add(loop, a, b)

    if isinstance(a, Monotonic):
        if isinstance(b, Invariant):
            return Monotonic(loop, a.direction, a.strict)
        if isinstance(b, Monotonic):
            if a.direction == b.direction:
                return Monotonic(loop, a.direction, a.strict or b.strict)
            return Unknown()
        if isinstance(b, InductionVariable):
            direction = iv_direction(b)
            if direction is not None and direction in (0, a.direction):
                return Monotonic(loop, a.direction, a.strict or iv_is_strict(b))
            return Unknown()
        return Unknown()

    return Unknown()


#: most distinct per-path steps a combined branch-dependent class may carry
MAX_COMBINED_STEPS = 8


def _dedupe_steps(steps) -> Tuple[Expr, ...]:
    """Distinct steps in first-seen order (Expr is hash-consed)."""
    seen = []
    for step in steps:
        if step not in seen:
            seen.append(step)
    return tuple(seen)


def _branch_dependent_add(
    loop: str, a: BranchDependent, b: Classification
) -> Classification:
    """``branch-dependent + b``: shift the step set when that is exact."""
    if isinstance(b, Invariant):
        init = a.init + b.expr if a.init is not None else None
        return BranchDependent(loop, a.steps, init=init)
    if isinstance(b, InductionVariable) and b.is_linear:
        step = b.form.coeff(1)
        steps = _dedupe_steps(d + step for d in a.steps)
        if len(steps) >= 2:
            init = a.init + b.init if a.init is not None else None
            return BranchDependent(loop, steps, init=init)
    if isinstance(b, BranchDependent):
        # per iteration the sum adds d_a + d_b for *some* pair, whatever
        # the correlation between the two branch choices
        steps = _dedupe_steps(da + db for da in a.steps for db in b.steps)
        if 2 <= len(steps) <= MAX_COMBINED_STEPS:
            init = (
                a.init + b.init
                if a.init is not None and b.init is not None
                else None
            )
            return BranchDependent(loop, steps, init=init)
        if a.direction is not None and a.direction == b.direction:
            return Monotonic(loop, a.direction, a.strict or b.strict)
        return Unknown()
    # direction-only fallbacks (the classic monotonic rules)
    if a.direction is None:
        return Unknown()
    if isinstance(b, Monotonic):
        if a.direction == b.direction:
            return Monotonic(loop, a.direction, a.strict or b.strict)
        return Unknown()
    if isinstance(b, InductionVariable):
        direction = iv_direction(b)
        if direction is not None and direction in (0, a.direction):
            return Monotonic(loop, a.direction, a.strict or iv_is_strict(b))
    return Unknown()


def cls_neg(loop: str, a: Classification) -> Classification:
    return cls_scale(loop, a, Expr.const(-1))


def cls_sub(loop: str, a: Classification, b: Classification) -> Classification:
    return cls_add(loop, a, cls_neg(loop, b))


def cls_scale(loop: str, a: Classification, factor: Expr) -> Classification:
    """Classification of ``a * factor`` with ``factor`` loop invariant."""
    if isinstance(a, Unknown):
        return Unknown()
    if factor.is_zero:
        return Invariant(Expr.zero(), loop=loop)
    form = class_closed_form(a)
    if form is not None:
        return cf_to_class(loop, form.scale(factor))
    if isinstance(a, WrapAround):
        inner = cls_scale(loop, a.inner, factor)
        if isinstance(inner, Unknown):
            return Unknown()
        return WrapAround(
            loop, a.order, inner, tuple(v * factor for v in a.pre_values)
        ).simplify()
    if isinstance(a, Periodic):
        return Periodic(loop, tuple(v * factor for v in a.values))
    if isinstance(a, BranchDependent):
        steps = _dedupe_steps(d * factor for d in a.steps)
        if len(steps) >= 2:
            init = a.init * factor if a.init is not None else None
            return BranchDependent(loop, steps, init=init)
        return Unknown()
    if isinstance(a, Monotonic):
        sign = factor.known_sign()
        if sign is None or sign == 0:
            return Unknown()
        return Monotonic(loop, a.direction * sign, a.strict)
    return Unknown()


def cls_mul(loop: str, a: Classification, b: Classification) -> Classification:
    """Classification of ``a * b``."""
    if isinstance(a, Unknown) or isinstance(b, Unknown):
        return Unknown()
    if isinstance(a, Invariant):
        return cls_scale(loop, b, a.expr)
    if isinstance(b, Invariant):
        return cls_scale(loop, a, b.expr)
    form_a = class_closed_form(a)
    form_b = class_closed_form(b)
    if form_a is not None and form_b is not None:
        product = form_a.try_mul(form_b)
        if product is not None:
            return cf_to_class(loop, product)
        # "it may, however, be classified as monotonic" -- only with sign
        # information we do not track for general products; stay Unknown.
        return Unknown()
    return Unknown()


def _lcm(a: int, b: int) -> int:
    from math import gcd

    return a * b // gcd(a, b)


# ----------------------------------------------------------------------
# per-operator classification of non-cyclic nodes
# ----------------------------------------------------------------------
def operator_provenance(node, ctx) -> Tuple[str, Tuple]:
    """(rule, operand summary) of an operator node, for ``--explain``.

    Pure derivation from the finished region context -- the classifier
    itself pays nothing for it.
    """
    return _operator_rule(node.inst), _operand_summary(node, ctx)


_BINOP_RULE = {op: f"algebra.{op.name.lower()}" for op in BinaryOp}


def _operator_rule(inst) -> str:
    """The algebra-rule name for one instruction kind (explain output)."""
    if inst is None:
        return "algebra.exit-value"
    if isinstance(inst, BinOp):
        return _BINOP_RULE[inst.op]
    return _RULE_BY_TYPE.get(type(inst), f"algebra.{type(inst).__name__.lower()}")


_RULE_BY_TYPE = {
    Assign: "algebra.copy",
    UnOp: "algebra.neg",
    Phi: "algebra.phi-merge",
    Load: "algebra.load",
    Compare: "algebra.compare",
    Store: "algebra.store",
}


def _operand_summary(node, ctx):
    """(label, classification) pairs of the node's operands."""
    inst = node.inst
    out = []
    if inst is None:
        if node.exit_expr is not None:
            for sym in sorted(node.exit_expr.free_symbols()):
                out.append((sym, ctx.operand_class(Ref(sym))))
        return tuple(out)
    for value in inst.uses():
        if isinstance(value, Ref):
            out.append((value.name, ctx.operand_class(value)))
        elif isinstance(value, Const):
            out.append((f"const {value.value}", ctx.operand_class(value)))
    return tuple(out)


def classify_operator(node, ctx) -> Classification:
    """Classify one non-cyclic region node from its operand classes.

    ``node`` is a :class:`repro.core.driver.RegionNode`; ``ctx`` a
    :class:`repro.core.driver.RegionContext`.

    This is the per-node hot path, so it records nothing: the derivation
    (rule + operand classes) is reconstructed on demand by
    :func:`operator_provenance` from the region context the loop summary
    retains.
    """
    inst = node.inst
    if inst is None:
        # synthetic exit-value node (inner-loop summary)
        if node.exit_expr is None:
            return Unknown("inner-loop value with unknown exit value")
        return classify_expression(node.exit_expr, ctx)

    loop = ctx.loop_label
    if isinstance(inst, Assign):
        return ctx.operand_class(inst.src)
    if isinstance(inst, UnOp):
        return cls_neg(loop, ctx.operand_class(inst.operand))
    if isinstance(inst, Phi):
        # a merge that is not part of any cycle: all inputs must agree
        classes = [ctx.operand_class(v) for v in inst.incoming.values()]
        first = classes[0]
        if all(c == first for c in classes[1:]):
            return first
        return Unknown("merge of unequal classifications")
    if isinstance(inst, Load):
        if ctx.array_stored_in_loop(inst.array):
            return Unknown("load from array stored in loop")
        if inst.indices is not None:
            for index in inst.indices:
                index_class = ctx.operand_class(index)
                if not isinstance(index_class, Invariant):
                    return Unknown("load with varying address")
        return Invariant(ctx.opaque(("load", node.name)), loop=loop)
    if isinstance(inst, Compare):
        return Unknown("comparison result")
    if isinstance(inst, Store):
        # stores define nothing; classified for completeness ("a store
        # always takes the classification of the value being stored")
        return ctx.operand_class(inst.value)
    if isinstance(inst, BinOp):
        lhs = ctx.operand_class(inst.lhs)
        rhs = ctx.operand_class(inst.rhs)
        return _classify_binop(node, inst.op, lhs, rhs, ctx)
    return Unknown(f"unhandled instruction {type(inst).__name__}")


def _classify_binop(node, op: BinaryOp, lhs, rhs, ctx) -> Classification:
    loop = ctx.loop_label
    if op is BinaryOp.ADD:
        return cls_add(loop, lhs, rhs)
    if op is BinaryOp.SUB:
        return cls_sub(loop, lhs, rhs)
    if op is BinaryOp.MUL:
        return cls_mul(loop, lhs, rhs)
    if op is BinaryOp.DIV:
        if isinstance(lhs, Invariant) and isinstance(rhs, Invariant):
            # integer division of invariants is invariant, but truncation
            # has no polynomial form: introduce an opaque invariant symbol.
            quotient = _exact_const_div(lhs.expr, rhs.expr)
            if quotient is not None:
                return Invariant(quotient, loop=loop)
            return Invariant(ctx.opaque(("div", lhs.expr, rhs.expr)), loop=loop)
        if isinstance(rhs, Invariant) and rhs.expr.is_constant:
            divisor = rhs.expr.constant_value()
            if divisor in (1, -1):
                return cls_scale(loop, lhs, Expr.const(divisor))
        return Unknown("integer division")
    if op is BinaryOp.MOD:
        if isinstance(lhs, Invariant) and isinstance(rhs, Invariant):
            remainder = _exact_const_mod(lhs.expr, rhs.expr)
            if remainder is not None:
                return Invariant(remainder, loop=loop)
            return Invariant(ctx.opaque(("mod", lhs.expr, rhs.expr)), loop=loop)
        periodic = _linear_mod_periodic(loop, lhs, rhs)
        if periodic is not None:
            return periodic
        return Unknown("modulo")
    if op is BinaryOp.EXP:
        return _classify_exp(loop, lhs, rhs, ctx)
    return Unknown(f"operator {op}")


def _exact_const_div(lhs: Expr, rhs: Expr) -> Optional[Expr]:
    if not (lhs.is_constant and rhs.is_constant):
        return None
    divisor = rhs.constant_value()
    if divisor == 0:
        return None
    quotient = lhs.constant_value() / divisor
    if quotient.denominator != 1:
        # truncating division: fold exactly for constants
        value = abs(lhs.constant_value().numerator * divisor.denominator) // abs(
            divisor.numerator * lhs.constant_value().denominator
        )
        if (lhs.constant_value() >= 0) != (divisor >= 0):
            value = -value
        return Expr.const(value)
    return Expr.const(quotient)


def _exact_const_mod(lhs: Expr, rhs: Expr) -> Optional[Expr]:
    if not (lhs.is_constant and rhs.is_constant):
        return None
    left = lhs.constant_value()
    right = rhs.constant_value()
    if right == 0 or left.denominator != 1 or right.denominator != 1:
        return None
    a = left.numerator
    b = right.numerator
    quotient = abs(a) // abs(b)
    if (a >= 0) != (b >= 0):
        quotient = -quotient
    return Expr.const(a - quotient * b)


def _linear_mod_periodic(loop: str, lhs, rhs) -> Optional[Classification]:
    """``(i0 + s*h) mod m`` with integer constants and ``i0, s >= 0, m > 0``
    is periodic with period ``m / gcd(s, m)``."""
    from math import gcd

    if not (isinstance(lhs, InductionVariable) and lhs.is_linear):
        return None
    if not (isinstance(rhs, Invariant) and rhs.expr.is_constant):
        return None
    init = lhs.form.coeff(0)
    step = lhs.form.coeff(1)
    if not (init.is_constant and step.is_constant):
        return None
    try:
        i0 = init.as_int()
        s = step.as_int()
        m = rhs.expr.as_int()
    except Exception:
        return None
    if m <= 0 or i0 < 0 or s < 0:
        return None  # truncating mod differs from math mod on negatives
    period = m // gcd(s % m if s % m else m, m)
    if period < 2:
        period = 1
    values = tuple(Expr.const((i0 + s * h) % m) for h in range(max(period, 1)))
    if len(values) == 1:
        return Invariant(values[0], loop=loop)
    return Periodic(loop, values)


def _classify_exp(loop: str, lhs, rhs, ctx) -> Classification:
    if isinstance(lhs, Invariant) and isinstance(rhs, Invariant):
        if lhs.expr.is_constant and rhs.expr.is_constant:
            try:
                base = lhs.expr.as_int()
                power = rhs.expr.as_int()
                if power >= 0:
                    return Invariant(Expr.const(base**power), loop=loop)
            except Exception:
                pass
        return Invariant(ctx.opaque(("exp", lhs.expr, rhs.expr)), loop=loop)
    # const ** linear IV  ->  geometric:  b**(i0 + s*h) = b**i0 * (b**s)**h
    if (
        isinstance(lhs, Invariant)
        and lhs.expr.is_constant
        and isinstance(rhs, InductionVariable)
        and rhs.is_linear
    ):
        init = rhs.form.coeff(0)
        step = rhs.form.coeff(1)
        if init.is_constant and step.is_constant:
            try:
                base = lhs.expr.as_int()
                i0 = init.as_int()
                s = step.as_int()
            except Exception:
                return Unknown("exponent")
            if i0 >= 0 and s > 0 and base not in (0, 1, -1):
                geo_base = base**s
                coefficient = Expr.const(base**i0)
                return InductionVariable(loop, ClosedForm([], {geo_base: coefficient}))
            if s == 0 and i0 >= 0:
                return Invariant(Expr.const(base**i0), loop=loop)
    # IV ** small constant power
    if (
        isinstance(rhs, Invariant)
        and rhs.expr.is_constant
        and isinstance(lhs, (Invariant, InductionVariable))
    ):
        try:
            power = rhs.expr.as_int()
        except Exception:
            return Unknown("exponent")
        if 0 <= power <= 8:
            result = ClosedForm.invariant(Expr.one())
            base_form = class_closed_form(lhs)
            for _ in range(power):
                product = result.try_mul(base_form)
                if product is None:
                    return Unknown("exponent")
                result = product
            return cf_to_class(loop, result)
    return Unknown("exponent")


# ----------------------------------------------------------------------
# symbolic-expression classification (for exit-value nodes)
# ----------------------------------------------------------------------
def classify_expression(expr: Expr, ctx) -> Classification:
    """Classify a polynomial expression over SSA names.

    Each symbol resolves through ``ctx.operand_class``; the monomials are
    combined with the generic algebra.  Used for synthetic exit-value nodes,
    whose expression mixes outer-region names (possibly IVs of this loop)
    with invariants.
    """
    from repro.ir.values import Ref

    loop = ctx.loop_label
    total: Classification = Invariant(Expr.zero(), loop=loop)
    for mono, coeff in expr.terms().items():
        term: Classification = Invariant(Expr.const(coeff), loop=loop)
        for sym, power in mono:
            sym_class = ctx.operand_class(Ref(sym))
            for _ in range(power):
                term = cls_mul(loop, term, sym_class)
                if isinstance(term, Unknown):
                    return Unknown("exit value expression")
        total = cls_add(loop, total, term)
        if isinstance(total, Unknown):
            return Unknown("exit value expression")
    return total
