"""The classification lattice.

Every integer scalar SSA name in a loop is classified as one of:

* :class:`Invariant` -- same value on every iteration of the loop.
* :class:`InductionVariable` -- has a closed form
  ``sum s_k h**k + sum g_b b**h`` in the 0-based basic loop counter ``h``
  (``h = (L, 0, 1)`` in the paper's notation).  Linear, polynomial and
  geometric IVs are all this class, distinguished by the shape of the form.
* :class:`WrapAround` -- takes ``order`` special values on the first
  iterations, then behaves like another classification (section 4.1).
* :class:`Periodic` -- cycles through a fixed tuple of values
  (section 4.2); flip-flops are period 2.
* :class:`Monotonic` -- never decreases (or never increases); possibly
  strictly (section 4.4).
* :class:`BranchDependent` -- the per-path refinement of section 4.4's
  conditionally updated variables: each trip around the loop adds one
  value from a *finite set* of loop-invariant steps, one per acyclic
  path through the body.  Where every step has the same sign this is a
  monotonic variable that additionally knows its step set (and hence a
  min/max step for value ranges and dependence tightening); with mixed
  signs it still bounds the per-iteration change where the classic
  lattice drops to :class:`Unknown`.
* :class:`Unknown` -- bottom.

The paper's tuple notation ``(L, init, step)`` / ``(L, s0, s1, ..., sm)``
is produced by :meth:`Classification.describe`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional, Tuple

from repro.symbolic.closedform import ClosedForm, ClosedFormError
from repro.symbolic.expr import Expr


class Classification:
    """Base class.  ``loop`` is the loop-header label (None for Unknown)."""

    loop: Optional[str]

    # ------------------------------------------------------------------
    def closed_form(self) -> Optional[ClosedForm]:
        """The value sequence as a closed form, if one exists."""
        return None

    def value_at(self, h: int) -> Optional[Expr]:
        """Symbolic value on iteration ``h`` (0-based), when determinable."""
        form = self.closed_form()
        if form is None:
            return None
        try:
            return form.value_at(h)
        except ClosedFormError:
            return None

    def delayed(self) -> Optional["Classification"]:
        """The classification of this value seen one iteration later.

        If ``x`` has this classification, a loop-header phi whose carried
        value is ``x`` satisfies ``phi(h) = x(h-1)`` for ``h >= 1``;
        ``delayed()`` is that shifted classification (used to build
        wrap-around variables, section 4.1).  ``None`` when shifting is not
        meaningful for the class.
        """
        return None

    def describe(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.describe()


class Invariant(Classification):
    """A value that does not change across iterations of the loop."""

    __slots__ = ("loop", "expr", "_cf")

    def __init__(self, expr: Expr, loop: Optional[str] = None):
        self.loop = loop
        self.expr = expr
        self._cf: Optional[ClosedForm] = None

    def closed_form(self) -> ClosedForm:
        if self._cf is None:
            self._cf = ClosedForm.invariant(self.expr)
        return self._cf

    def delayed(self) -> "Invariant":
        return self

    def describe(self) -> str:
        return f"invariant {self.expr}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Invariant) and self.expr == other.expr

    def __hash__(self) -> int:
        return hash(("inv", self.expr))


class InductionVariable(Classification):
    """A generalized induction variable with closed form ``form``.

    ``form.is_linear`` gives the classical case, printed as the paper's
    ``(loop, init, step)`` triple.
    """

    __slots__ = ("loop", "form")

    def __init__(self, loop: str, form: ClosedForm):
        self.loop = loop
        self.form = form

    # shape predicates ---------------------------------------------------
    @property
    def is_linear(self) -> bool:
        return self.form.is_linear

    @property
    def is_polynomial(self) -> bool:
        return self.form.is_polynomial and not self.form.is_linear

    @property
    def is_geometric(self) -> bool:
        return bool(self.form.geo)

    @property
    def init(self) -> Expr:
        return self.form.init

    @property
    def step(self) -> Expr:
        """Step of a linear IV (raises for non-linear forms)."""
        return self.form.step

    def closed_form(self) -> ClosedForm:
        return self.form

    def delayed(self) -> "InductionVariable":
        return InductionVariable(self.loop, self.form.shift(-1))

    def direction(self) -> Optional[int]:
        """+1 if provably non-decreasing over h, -1 if non-increasing,
        0 if invariant, None if unknown."""
        difference = self.form.shift(1) - self.form
        return closedform_sign(difference)

    def describe(self) -> str:
        if self.is_linear:
            return f"({self.loop}, {self.form.coeff(0)}, {self.form.coeff(1)})"
        if self.form.is_polynomial:
            coeffs = ", ".join(str(self.form.coeff(k)) for k in range(self.form.degree + 1))
            return f"({self.loop}, {coeffs})"
        return f"({self.loop}, {self.form})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, InductionVariable)
            and self.loop == other.loop
            and self.form == other.form
        )

    def __hash__(self) -> int:
        return hash(("iv", self.loop, self.form))


class WrapAround(Classification):
    """First ``order`` iterations take ``pre_values``; afterwards the value
    follows ``inner`` (evaluated at the same ``h``).

    ``value(h) = pre_values[h]`` for ``h < order``, else ``inner.value(h)``.
    A first-order wrap-around of an IV is the paper's classic case; higher
    orders cascade (Figure 4's ``k2``).
    """

    __slots__ = ("loop", "order", "inner", "pre_values")

    def __init__(
        self,
        loop: str,
        order: int,
        inner: Classification,
        pre_values: Tuple[Expr, ...],
    ):
        if order < 1:
            raise ValueError("wrap-around order must be >= 1")
        if len(pre_values) != order:
            raise ValueError("need exactly `order` pre-values")
        self.loop = loop
        self.order = order
        self.inner = inner
        self.pre_values = tuple(pre_values)

    def value_at(self, h: int) -> Optional[Expr]:
        if h < self.order:
            return self.pre_values[h]
        return self.inner.value_at(h)

    def delayed(self) -> Optional["Classification"]:
        return None  # handled specially by the SCR classifier

    def simplify(self) -> Classification:
        """Collapse to ``inner`` when the pre-values fit its sequence.

        "If the initial value for the wrap-around variable fits the
        induction sequence, it may be more precisely identified as an
        induction variable" (section 4.1).
        """
        for h, pre in enumerate(self.pre_values):
            inner_value = self.inner.value_at(h)
            if inner_value is None or inner_value != pre:
                return self
        return self.inner

    def describe(self) -> str:
        pre = ", ".join(str(v) for v in self.pre_values)
        return f"wraparound(order {self.order}; [{pre}]; then {self.inner.describe()})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, WrapAround)
            and self.loop == other.loop
            and self.order == other.order
            and self.pre_values == other.pre_values
            and self.inner == other.inner
        )

    def __hash__(self) -> int:
        return hash(("wrap", self.loop, self.order, self.pre_values))


class Periodic(Classification):
    """``value(h) = values[h mod period]`` (section 4.2).

    Flip-flop variables are ``period == 2``.  Members of one family share a
    rotated tuple of values; two members with distinct value tuples never
    collide on the same iteration if their values are distinct -- that is
    the property dependence testing exploits.
    """

    __slots__ = ("loop", "values")

    def __init__(self, loop: str, values: Tuple[Expr, ...]):
        if len(values) < 2:
            raise ValueError("a periodic variable needs period >= 2")
        self.loop = loop
        self.values = tuple(values)

    @property
    def period(self) -> int:
        return len(self.values)

    def value_at(self, h: int) -> Expr:
        return self.values[h % self.period]

    def delayed(self) -> "Periodic":
        rotated = (self.values[-1],) + self.values[:-1]
        return Periodic(self.loop, rotated)

    def simplify(self) -> Classification:
        if all(v == self.values[0] for v in self.values[1:]):
            return Invariant(self.values[0], loop=self.loop)
        return self

    def describe(self) -> str:
        vals = ", ".join(str(v) for v in self.values)
        return f"periodic({self.loop}, period {self.period}; [{vals}])"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Periodic)
            and self.loop == other.loop
            and self.values == other.values
        )

    def __hash__(self) -> int:
        return hash(("per", self.loop, self.values))


class Monotonic(Classification):
    """Never moves against ``direction`` (+1 increasing / -1 decreasing).

    ``strict`` distinguishes the paper's "monotonically strictly
    increasing": consecutive *occurrences* of the value are strictly
    ordered, which upgrades dependence directions from ``<=`` to ``=``/``<``
    (sections 4.4, 5.4, 6).
    """

    __slots__ = ("loop", "direction", "strict", "init", "family")

    def __init__(
        self,
        loop: str,
        direction: int,
        strict: bool,
        init: Optional[Expr] = None,
        family: Optional[str] = None,
    ):
        if direction not in (1, -1):
            raise ValueError("direction must be +1 or -1")
        self.loop = loop
        self.direction = direction
        self.strict = strict
        self.init = init
        # SCR identity (the header phi name): two monotonic variables are
        # only comparable in dependence testing when they belong to the
        # same SCR family (Figure 10).  Arithmetic drops the family.
        self.family = family

    def describe(self) -> str:
        kind = "strictly " if self.strict else ""
        direction = "increasing" if self.direction > 0 else "decreasing"
        return f"monotonic({self.loop}, {kind}{direction})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Monotonic)
            and self.loop == other.loop
            and self.direction == other.direction
            and self.strict == other.strict
        )

    def __hash__(self) -> int:
        return hash(("mono", self.loop, self.direction, self.strict))


class BranchDependent(Classification):
    """Per-path updates: every iteration adds one of finitely many steps.

    ``x' = x + d_p`` where ``d_p`` is the loop-invariant full-cycle step
    of the acyclic path ``p`` taken on that iteration.  ``steps`` is the
    (distinct, deterministic-order) step set; ``direction``/``strict``
    are derived from the provable signs of the steps: all non-negative
    with at least one positive gives ``direction == 1`` (strict when
    every step is strictly positive), mirrored for negative, and
    ``None`` when the signs are mixed or unknown -- the case the classic
    monotonic rule cannot represent at all.

    ``init`` and ``family`` follow :class:`Monotonic`'s conventions (the
    family is the SCR's header-phi name; arithmetic drops both) and are
    excluded from equality.
    """

    __slots__ = ("loop", "steps", "init", "family", "direction", "strict")

    def __init__(
        self,
        loop: str,
        steps: Tuple[Expr, ...],
        init: Optional[Expr] = None,
        family: Optional[str] = None,
    ):
        steps = tuple(steps)
        if len(steps) < 2:
            raise ValueError("branch-dependent needs at least two distinct steps")
        self.loop = loop
        self.steps = steps
        self.init = init
        self.family = family
        signs = {step.known_sign() for step in steps}
        if None in signs:
            self.direction: Optional[int] = None
            self.strict = False
        elif signs <= {0, 1}:
            self.direction = 1
            self.strict = 0 not in signs
        elif signs <= {0, -1}:
            self.direction = -1
            self.strict = 0 not in signs
        else:
            self.direction = None
            self.strict = False

    # -- step bounds (value ranges, dependence, property oracles) ----------
    def constant_steps(self) -> Optional[Tuple[Fraction, ...]]:
        """The step set as exact numbers, or None if any step is symbolic."""
        if all(step.is_constant for step in self.steps):
            return tuple(step.constant_value() for step in self.steps)
        return None

    def min_step(self) -> Optional[Fraction]:
        steps = self.constant_steps()
        return min(steps) if steps is not None else None

    def max_step(self) -> Optional[Fraction]:
        steps = self.constant_steps()
        return max(steps) if steps is not None else None

    def as_monotonic(self) -> Optional["Monotonic"]:
        """The monotonic view, when every step moves one way."""
        if self.direction is None:
            return None
        return Monotonic(
            self.loop, self.direction, self.strict, init=self.init, family=self.family
        )

    def delayed(self) -> "BranchDependent":
        # one iteration later the value follows the same step set; the
        # delayed initial value is not representable
        return BranchDependent(self.loop, self.steps, init=None, family=self.family)

    def describe(self) -> str:
        steps = ", ".join(str(step) for step in self.steps)
        return f"branch-dependent({self.loop}, steps {{{steps}}})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BranchDependent)
            and self.loop == other.loop
            and frozenset(self.steps) == frozenset(other.steps)
        )

    def __hash__(self) -> int:
        return hash(("branch", self.loop, frozenset(self.steps)))


class Unknown(Classification):
    """Bottom of the lattice."""

    __slots__ = ("loop", "reason")

    def __init__(self, reason: str = "", loop: Optional[str] = None):
        self.loop = loop
        self.reason = reason

    def describe(self) -> str:
        return f"unknown({self.reason})" if self.reason else "unknown"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Unknown)

    def __hash__(self) -> int:
        return hash("unknown")


# ----------------------------------------------------------------------
# sign reasoning over closed forms (used by monotonic rules)
# ----------------------------------------------------------------------
def closedform_sign(form: ClosedForm) -> Optional[int]:
    """Sign of ``form(h)`` valid for *all* ``h >= 0``, or None.

    Conservative: all coefficients must have a provable sign, geometric
    bases must be positive (so ``b**h > 0``), and the signs must agree.
    Returns 0 only for the identically-zero form.
    """
    if form.is_zero:
        return 0
    signs = set()
    for coeff in form.coeffs:
        sign = coeff.known_sign()
        if sign is None:
            return None
        if sign != 0:
            signs.add(sign)
    for base, coeff in form.geo.items():
        if base < 0:
            return None
        sign = coeff.known_sign()
        if sign is None:
            return None
        if sign != 0:
            signs.add(sign)
    if len(signs) != 1:
        return None
    return signs.pop()


def closedform_strict_sign(form: ClosedForm) -> Optional[int]:
    """+1 if ``form(h) > 0`` for all ``h >= 0``, -1 if always negative.

    Requires the same-sign condition of :func:`closedform_sign` plus a
    nonzero value at ``h = 0``.
    """
    sign = closedform_sign(form)
    if sign in (None, 0):
        return None
    at_zero = form.value_at(0).known_sign()
    if at_zero == sign:
        return sign
    return None
