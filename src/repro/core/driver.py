"""The classification driver (section 5.3).

Processes loops **inner-first**.  For each loop it builds the SSA graph of
the loop's *own* region -- the loop body minus the bodies of nested loops --
and runs the modified Tarjan pass over it (:mod:`repro.core.tarjan`),
classifying each SCR as it is identified.

References from a loop's region into a nested loop are replaced by
synthetic **exit-value nodes**: "when an inner loop is classified as a
countable loop, the cumulative effect of the execution of the loop on all
induction variables in the loop can be expressed in closed form ... this
value can be assigned to a new variable, and all references outside this
inner loop to the exit value are changed to refer to the new variable"
(Figure 8's ``k6 = k2 + 101*2``).  Here the new variable is an analysis-side
node carrying the symbolic exit expression; the IR is untouched (the
:mod:`repro.transforms` package can materialize them).

References to values defined *outside* the loop are loop invariant
(section 5.3) and enter the algebra as plain symbols; references into inner
loops that are not countable (or not classifiable) become Unknown, "treated
as an unknown without tracing further".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.dominators import DominatorTree, dominator_tree
from repro.analysis.loops import Loop, LoopNest, find_loops
from repro.core.algebra import class_closed_form, classify_operator
from repro.core.classes import (
    Classification,
    InductionVariable,
    Invariant,
    Monotonic,
    Periodic,
    Unknown,
    WrapAround,
)
from repro.core.scr import classify_cycle_scr, classify_trivial_header_phi
from repro.core.tarjan import tarjan_scrs
from repro.core.tripcount import TripCount, TripCountKind, compute_trip_count
from repro.ir.function import Function, IRError
from repro.ir.instructions import Phi, Store
from repro.ir.values import Const, Ref, Value
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.obs.provenance import remember
from repro.resilience import budget as _budget
from repro.resilience import isolation as _isolation
from repro.resilience.errors import RecoveryPolicy, ReproError, wrap_exception
from repro.resilience.faultinject import fault_point
from repro.symbolic.closedform import ClosedFormError
from repro.symbolic.expr import Expr


class IrreducibleError(ReproError, IRError):
    """Irreducible control flow: classification would be unsound.

    Subclasses :class:`~repro.ir.function.IRError` so pre-taxonomy callers
    (and tests) that catch the historical type keep working; inside a
    resilient pipeline its DEGRADE policy turns the whole function's
    classification into an empty (all-Unknown) result instead.
    """

    default_code = "irreducible-cfg"


class RegionNode:
    """One vertex of a loop-region SSA graph.

    Either a real instruction (``inst``) or a synthetic exit-value node
    (``inst is None``) whose value is ``exit_expr`` -- an expression over
    names visible in this region (or ``None`` when the inner loop's exit
    value is unknown).
    """

    __slots__ = ("name", "block", "inst", "exit_expr", "_operands")

    def __init__(self, name: str, block: Optional[str], inst, exit_expr: Optional[Expr] = None):
        self.name = name
        self.block = block
        self.inst = inst
        self.exit_expr = exit_expr
        self._operands: Optional[List[str]] = None

    def operand_names(self) -> List[str]:
        """Operand (source) names; computed once and cached -- region nodes
        are immutable for the lifetime of the analysis."""
        operands = self._operands
        if operands is None:
            if self.inst is not None:
                operands = [v.name for v in self.inst.uses() if isinstance(v, Ref)]
            elif self.exit_expr is not None:
                operands = sorted(self.exit_expr.free_symbols())
            else:
                operands = []
            self._operands = operands
        return operands


class RegionContext:
    """Everything :mod:`repro.core.scr` / :mod:`repro.core.algebra` need."""

    def __init__(self, function: Function, loop: Loop, nodes: Dict[str, RegionNode], result: "AnalysisResult"):
        self.function = function
        self.loop = loop
        self.loop_label = loop.header
        self.header = loop.header
        self.nodes = nodes
        self.result = result
        self.classifications: Dict[str, Classification] = {}
        self._stored_arrays: Optional[Set[str]] = None
        # memo for constant / loop-external operand classes: those are
        # rebuilt for every use site otherwise (str names and const
        # values never collide as dict keys)
        self._operand_memo: Dict[object, Classification] = {}
        # names classified by the SCR rules (cycles, wrap-around phis):
        # their derivation lives on the classification object itself;
        # everything else is an operator node whose provenance is derived
        # on demand from this context (see repro.obs.explain)
        self.scr_classified: Set[str] = set()

    # -- graph access ----------------------------------------------------
    def node(self, name: str) -> Optional[RegionNode]:
        return self.nodes.get(name)

    def classification(self, name: str) -> Classification:
        return self.classifications.get(name, Unknown("unclassified"))

    def is_header_phi(self, name: str) -> bool:
        node = self.nodes.get(name)
        return (
            node is not None
            and isinstance(node.inst, Phi)
            and node.block == self.header
        )

    def phi_split(self, phi: Phi) -> Tuple[Value, Value]:
        """Split a loop-header phi into (initial, loop-carried) values."""
        init = None
        carried = None
        for pred, value in phi.incoming.items():
            if pred in self.loop.body:
                carried = value
            else:
                init = value
        if init is None or carried is None:
            raise ValueError(
                f"header phi %{phi.result} of {self.header} is not in "
                "canonical preheader/latch form (run simplify_loops)"
            )
        return init, carried

    # -- operand classification -------------------------------------------
    def operand_class(self, value: Value) -> Classification:
        if isinstance(value, Const):
            cached = self._operand_memo.get(value.value)
            if cached is None:
                cached = remember(
                    Invariant(Expr.const(value.value), loop=self.loop_label),
                    "algebra.const",
                )
                self._operand_memo[value.value] = cached
            return cached
        if isinstance(value, Ref):
            if value.name in self.nodes:
                return self.classification(value.name)
            cached = self._operand_memo.get(value.name)
            if cached is not None:
                return cached
            block = self.result._def_block.get(value.name)
            if block is not None and block in self.loop.body:
                # defined inside the loop (in a nested loop) but never
                # summarized into this region: not invariant here
                cached = Unknown("unsummarized inner-loop value")
            else:
                cached = remember(
                    Invariant(Expr.sym(value.name), loop=self.loop_label),
                    "algebra.loop-invariant",
                    note=f"defined outside loop {self.loop_label}",
                )
            self._operand_memo[value.name] = cached
            return cached
        return Unknown("bad operand")

    # scr.py uses this alias
    operand_class_of_value = operand_class

    def value_expr(self, value: Value) -> Optional[Expr]:
        """Symbolic expression of an operand that must be loop invariant."""
        cls = self.operand_class(value)
        if isinstance(cls, Invariant):
            return cls.expr
        return None

    def invariant_symbol(self, name: str) -> Expr:
        return Expr.sym(name)

    def opaque(self, key: tuple) -> Expr:
        return self.result.opaque(key)

    def array_stored_in_loop(self, array: str) -> bool:
        if self._stored_arrays is None:
            stored: Set[str] = set()
            for label in self.loop.body:
                for inst in self.function.block(label):
                    if isinstance(inst, Store):
                        stored.add(inst.array)
            self._stored_arrays = stored
        return array in self._stored_arrays


@dataclass
class LoopSummary:
    """Classification results for one loop."""

    loop: Loop
    label: str
    classifications: Dict[str, Classification]
    trip: TripCount
    graph_size: int = 0
    scr_count: int = 0
    #: the classification-time region context, kept for provenance
    #: resolution (``--explain``); not part of the summary's value
    region_ctx: Optional[RegionContext] = field(
        default=None, repr=False, compare=False
    )
    #: per-path update summary attached by the optional invariants phase
    #: (a :class:`repro.invariants.paths.PathSummary`, or None)
    path_summary: object = field(default=None, repr=False, compare=False)
    #: polynomial equalities attached by the optional invariants phase
    #: (a tuple of :class:`repro.invariants.poly.LoopInvariant`)
    invariants: tuple = field(default=(), repr=False, compare=False)

    def classification_of(self, name: str) -> Optional[Classification]:
        return self.classifications.get(name)

    @property
    def degraded(self) -> bool:
        return False


@dataclass
class DegradedLoopSummary(LoopSummary):
    """A loop whose classification failed and was contained.

    Quacks like a :class:`LoopSummary` -- empty classifications (every
    name in the loop reads as ``Unknown``) and an unknown trip count --
    but carries the reason, so reports can say *why* the loop degraded.
    """

    reason: str = ""

    @property
    def degraded(self) -> bool:
        return True


def _degraded_summary(
    loop: Loop,
    reason: str,
    classifications: Optional[Dict[str, Classification]] = None,
) -> DegradedLoopSummary:
    return DegradedLoopSummary(
        loop=loop,
        label=loop.header,
        classifications=dict(classifications) if classifications else {},
        trip=TripCount(TripCountKind.UNKNOWN),
        reason=reason,
    )


class AnalysisResult:
    """Results of :func:`classify_function` for a whole function."""

    def __init__(self, function: Function, nest: LoopNest, domtree: DominatorTree):
        self.function = function
        self.nest = nest
        self.domtree = domtree
        self.loops: Dict[str, LoopSummary] = {}
        #: optional RangeInfo attached by the pipeline's ranges phase;
        #: dependence testing consults it for symbolic trip-count bounds
        self.ranges = None
        #: optional InvariantInfo attached by the pipeline's invariants phase
        self.invariants = None
        self._opaque: Dict[tuple, Expr] = {}
        self.opaque_definitions: Dict[str, tuple] = {}
        self._def_block: Dict[str, str] = {
            name: block for name, (block, _inst) in function.definitions().items()
        }

    # -- postdominators (section 5.4 refinements) --------------------------
    _postdom = None

    def postdominators(self):
        """Cached postdominator tree (used by the section 5.4 refinement:
        a use postdominated by a strictly monotonic assignment is itself
        at a strictly monotonic point)."""
        if self._postdom is None:
            from repro.analysis.postdom import postdominator_tree

            self._postdom = postdominator_tree(self.function)
        return self._postdom

    def definition_site(self, name: str):
        """(block, position) of a definition, or None.

        Delegates to the function's precomputed ``def_site`` index (one
        whole-function walk, cached) instead of scanning the block.
        """
        return self.function.def_site(name)

    # -- opaque invariant symbols -----------------------------------------
    def opaque(self, key: tuple) -> Expr:
        if key not in self._opaque:
            symbol = f"$k{len(self._opaque) + 1}"
            self._opaque[key] = Expr.sym(symbol)
            self.opaque_definitions[symbol] = key
        return self._opaque[key]

    # -- lookups -----------------------------------------------------------
    def defining_loop(self, name: str) -> Optional[Loop]:
        block = self._def_block.get(name)
        if block is None:
            return None
        return self.nest.innermost(block)

    def classification_of(self, name: str) -> Classification:
        """Classification of ``name`` in its innermost enclosing loop.

        Names defined outside every loop (and parameters) are Invariant.
        """
        loop = self.defining_loop(name)
        if loop is None:
            return remember(
                Invariant(Expr.sym(name)),
                "algebra.top-level-invariant",
                note="defined outside every loop",
            )
        summary = self.loops.get(loop.header)
        if summary is None:
            return Unknown("loop not analyzed")
        cls = summary.classifications.get(name)
        if cls is None:
            return Unknown("not classified")
        return cls

    def summary(self, header: str) -> LoopSummary:
        return self.loops[header]

    def trip_count(self, header: str) -> TripCount:
        return self.loops[header].trip

    # -- exit values (section 5.3) -----------------------------------------
    def exit_value(self, header: str, name: str) -> Optional[Expr]:
        """Symbolic value of ``name`` after loop ``header`` exits.

        The expression only mentions names invariant in that loop (i.e.
        visible to the enclosing region), like Figure 8's
        ``k6 = k2 + 101*2``.  ``None`` when unknown (uncountable loop,
        non-IV variable, several exits...).
        """
        summary = self.loops.get(header)
        if summary is None:
            return None
        trip = summary.trip
        if trip.kind is TripCountKind.ZERO:
            # zero trips: every name holds its h=0 value at the (first) exit
            count: object = 0
        elif trip.exit_block is None or not trip.exact:
            return None
        elif trip.kind is TripCountKind.FINITE:
            constant = trip.constant()
            count = constant if constant is not None else trip.count
        else:
            return None

        cls = summary.classifications.get(name)
        if cls is None:
            # defined in a nested loop: its exit expression, with this
            # loop's region names substituted by *their* exit values
            inner_loop = self.defining_loop(name)
            if inner_loop is None:
                return None
            # find the child of `header` on the path to inner_loop
            child = inner_loop
            while child is not None and (child.parent is None or child.parent.header != header):
                child = child.parent
            if child is None:
                return None
            inner_expr = self.exit_value(child.header, name)
            if inner_expr is None:
                return None
            return self._resolve_at_exit(header, inner_expr)

        form = class_closed_form(cls)
        if form is None:
            value = None
            if isinstance(cls, (Periodic, WrapAround)) and isinstance(count, int):
                value = cls.value_at(count)
            return value
        try:
            return form.value_at(count)
        except (ClosedFormError, TypeError):
            return None

    def _resolve_at_exit(self, header: str, expr: Expr) -> Optional[Expr]:
        """Substitute region-defined symbols in ``expr`` by their exit values."""
        summary = self.loops[header]
        mapping: Dict[str, Expr] = {}
        for symbol in expr.free_symbols():
            if symbol in summary.classifications:
                exit_expr = self.exit_value(header, symbol)
                if exit_expr is None:
                    return None
                mapping[symbol] = exit_expr
        return expr.substitute(mapping)

    # -- display -----------------------------------------------------------
    def describe(self, name: str) -> str:
        return self.classification_of(name).describe()

    def nested_describe(self, name: str) -> str:
        """The paper's nested-tuple view: outer-loop IVs substituted into
        inner initial values, e.g. ``(L18, (L17, 0, 204), 2)``."""
        cls = self.classification_of(name)
        text = cls.describe()
        form = class_closed_form(cls)
        if form is None:
            return text
        for symbol in sorted(form.free_symbols(), key=len, reverse=True):
            outer = self.classification_of(symbol)
            if isinstance(outer, (InductionVariable, WrapAround, Periodic, Monotonic)):
                text = text.replace(symbol, self.nested_describe(symbol))
        return text

    def all_assumptions(self) -> Dict[str, Tuple[str, ...]]:
        """Per-loop assumptions under which symbolic results hold.

        Following the paper (which substitutes symbolic trip counts like
        Figure 9's ``i`` without the ``max(0, .)`` guard), symbolic exit
        values and the outer-loop classifications built on them are valid
        only when each inner loop's trip-count expression is non-negative
        at run time -- e.g. ``n >= 1`` for ``for i = 1 to n``.  Clients that
        need unconditional facts should check these (or version the loop).
        """
        out: Dict[str, Tuple[str, ...]] = {}
        for header, summary in self.loops.items():
            if summary.trip.assumptions:
                out[header] = summary.trip.assumptions
        return out

    def all_classifications(self) -> Dict[str, Classification]:
        out: Dict[str, Classification] = {}
        for summary in self.loops.values():
            out.update(summary.classifications)
        return out


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------
def classify_function(
    function: Function,
    nest: Optional[LoopNest] = None,
    domtree: Optional[DominatorTree] = None,
) -> AnalysisResult:
    """Classify every scalar in every loop of an SSA-form function."""
    fault_point("classify.function")
    if domtree is None:
        domtree = dominator_tree(function)
    from repro.analysis.reducibility import irreducible_edges

    offending = irreducible_edges(function, domtree)
    if offending:
        raise IrreducibleError(
            "irreducible control flow (retreating non-back edges "
            f"{offending}): natural-loop classification would be unsound"
        )
    if nest is None:
        nest = find_loops(function, domtree)
    result = AnalysisResult(function, nest, domtree)
    with _trace.span("classify", function=function.name):
        with _budget.phase_deadline("classify"):
            for loop in nest.inner_to_outer():
                with _trace.span("classify.loop", loop=loop.header):
                    result.loops[loop.header] = _classify_loop_contained(
                        function, loop, result
                    )
    registry = _metrics.active()
    if registry is not None:
        registry.inc("classify.loops", len(result.loops))
        for summary in result.loops.values():
            registry.inc("classify.names", len(summary.classifications))
            for cls in summary.classifications.values():
                registry.inc(f"classify.class.{type(cls).__name__}")
    return result


def _classify_loop_contained(
    function: Function, loop: Loop, result: AnalysisResult
) -> LoopSummary:
    """Classify one loop, containing any failure to that loop.

    Outside a resilient context (or under ``--strict-errors``) failures
    propagate unchanged.  Inside one, a RETRY-policy error re-runs the
    loop once; anything else (or a failed retry) degrades the loop: its
    summary is a :class:`DegradedLoopSummary`, so every name it defines
    reads as ``Unknown`` and -- because loops are processed inner-first --
    enclosing regions see its exit values as unknown, which contains the
    damage without further special-casing.
    """
    partial: Dict[str, Classification] = {}
    try:
        fault_point("classify.loop")
        _budget.check_deadline("classify")
        return _analyze_loop(function, loop, result, partial=partial)
    except Exception as error:  # noqa: BLE001 - the isolation boundary
        wrapped = wrap_exception(error, "classify.loop")
        if wrapped.policy is RecoveryPolicy.RETRY and _isolation.isolating():
            log = _isolation.active_log()
            log.record(
                phase="classify.loop",
                code=wrapped.code,
                message=wrapped.message,
                diag_code="RES504",
                scope=loop.header,
                action="retried",
            )
            try:
                partial.clear()
                return _analyze_loop(function, loop, result, partial=partial)
            except Exception as retry_error:  # noqa: BLE001
                error = retry_error
        _isolation.absorb(
            error, "classify.loop", scope=loop.header, diag_code="RES501"
        )
        # keep whatever per-SCR classifications were computed before the
        # failure: each one was sound when made (SCRs classify in
        # dependence order), so partial beats bare Unknown
        return _degraded_summary(
            loop, str(error) or type(error).__name__, classifications=partial
        )


def _analyze_loop(
    function: Function,
    loop: Loop,
    result: AnalysisResult,
    partial: Optional[Dict[str, Classification]] = None,
) -> LoopSummary:
    own_blocks = set(loop.body)
    for child in loop.children:
        own_blocks -= child.body

    nodes: Dict[str, RegionNode] = {}
    for label in own_blocks:
        for inst in function.block(label):
            if inst.result is not None:
                nodes[inst.result] = RegionNode(inst.result, label, inst)

    # synthetic exit-value nodes for inner-loop definitions referenced here
    referenced: List[str] = []
    for node in list(nodes.values()):
        referenced.extend(node.operand_names())
    seen: Set[str] = set()
    queue = [n for n in referenced if n not in nodes]
    while queue:
        name = queue.pop()
        if name in seen or name in nodes:
            continue
        seen.add(name)
        defining = result.defining_loop(name)
        if defining is None or name not in result._def_block:
            continue  # external or parameter: plain invariant symbol
        block = result._def_block[name]
        if block in loop.body:
            # defined in a nested loop: summarize via its exit value
            child = _child_containing(loop, defining)
            exit_expr = result.exit_value(child.header, name) if child else None
            nodes[name] = RegionNode(name, None, None, exit_expr)
            if exit_expr is not None:
                for symbol in exit_expr.free_symbols():
                    if symbol not in nodes:
                        queue.append(symbol)
        # names defined outside loop.body stay external (invariant)

    ctx = RegionContext(function, loop, nodes, result)
    if partial is not None:
        # alias the context's classification map so the containment
        # boundary can salvage whatever was classified before a failure
        ctx.classifications = partial

    # the region's adjacency, built exactly once: operand edges restricted
    # to region members.  Tarjan consumes it directly (prefiltered) and the
    # graph size falls out of that same single traversal.
    adjacency: Dict[str, List[str]] = {
        name: [n for n in node.operand_names() if n in nodes]
        for name, node in nodes.items()
    }

    # one lookup per loop, not per SCR: the tracer cannot appear or
    # vanish mid-analysis (``observing`` wraps whole pipeline calls)
    tracer = _trace.active()

    def on_scr(members: List[str], is_cycle: bool) -> None:
        try:
            if is_cycle:
                ctx.scr_classified.update(members)
                ctx.classifications.update(classify_cycle_scr(members, ctx))
            else:
                name = members[0]
                node = nodes[name]
                if ctx.is_header_phi(name):
                    ctx.scr_classified.add(name)
                    ctx.classifications[name] = classify_trivial_header_phi(node, ctx)
                else:
                    ctx.classifications[name] = classify_operator(node, ctx)
        except Exception as error:  # noqa: BLE001 - per-SCR containment
            _isolation.absorb(
                error,
                "classify.scr",
                scope=f"{loop.header}:{members[0]}",
                diag_code="RES501",
            )
            for member in members:
                ctx.classifications[member] = Unknown(
                    "classification degraded: " + (str(error) or type(error).__name__),
                    loop=loop.header,
                )
        if tracer is not None:
            _trace.event(
                "classify.scr",
                loop=loop.header,
                members=list(members),
                cycle=is_cycle,
                classes={m: ctx.classifications[m].describe() for m in members},
            )

    stats = tarjan_scrs(nodes, adjacency.__getitem__, on_scr, prefiltered=True)
    registry = _metrics.active()
    if registry is not None:
        registry.inc("tarjan.nodes", stats.node_count)
        registry.inc("tarjan.edges", stats.edge_count)
        registry.inc("tarjan.scrs", stats.scr_count)

    def class_of_value(value: Value) -> Classification:
        return ctx.operand_class(value)

    try:
        fault_point("classify.tripcount")
        trip = compute_trip_count(function, loop, class_of_value, result.opaque)
    except Exception as error:  # noqa: BLE001 - keep the classifications
        _isolation.absorb(
            error, "classify.tripcount", scope=loop.header, diag_code="RES501"
        )
        trip = TripCount(TripCountKind.UNKNOWN)

    return LoopSummary(
        loop=loop,
        label=loop.header,
        classifications=ctx.classifications,
        trip=trip,
        graph_size=stats.node_count + stats.edge_count,
        scr_count=stats.scr_count,
        region_ctx=ctx,
    )


def _child_containing(loop: Loop, descendant: Optional[Loop]) -> Optional[Loop]:
    """The immediate child of ``loop`` on the path down to ``descendant``."""
    node = descendant
    while node is not None and node.parent is not loop:
        node = node.parent
    return node
