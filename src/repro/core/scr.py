"""Classification of strongly connected regions (sections 3.1, 4.1-4.4).

Given one SCR of the loop's SSA graph, with every out-of-SCR operand already
classified (Tarjan's visit order guarantees this), we compute the
*cumulative effect* of one trip around the loop on the loop-header phi:
every value feeding back into the phi is expanded as

    ``carried  =  mult * header  +  addend(h)``

per control-flow path, where ``mult`` is an exact rational and ``addend`` a
closed form in the iteration counter ``h`` (built from the classifications
of operands outside the SCR).  The classification then falls out:

* one path effect, ``mult == 1``, invariant addend -> linear IV family;
* one path effect, ``mult == 1``, IV addend -> polynomial/geometric IV of
  the next order (solved with the paper's matrix method);
* one path effect, integer ``mult`` -> geometric IV; ``mult == -1`` with an
  invariant addend is the flip-flop, reported as periodic of period two;
* several header phis, no arithmetic -> a family of periodic variables,
  period = number of header phis;
* several differing path effects with provable sign -> monotonic variables,
  with the per-member strictness analysis of Figure 10 (``k3`` strictly
  increasing, ``k2``/``k4`` merely non-decreasing);
* anything else -> unknown.

Trivial SCRs consisting of a loop-header phi alone are the wrap-around
variables of section 4.1 (handled by :func:`classify_trivial_header_phi`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.core.classes import (
    BranchDependent,
    Classification,
    InductionVariable,
    Invariant,
    Monotonic,
    Periodic,
    Unknown,
    WrapAround,
    closedform_sign,
    closedform_strict_sign,
)
from repro.core.algebra import cf_to_class, class_closed_form
from repro.ir.instructions import Assign, BinOp, Phi, UnOp
from repro.ir.opcodes import BinaryOp
from repro.ir.values import Const, Ref, Value
from repro.obs.provenance import remember
from repro.symbolic.closedform import ClosedForm, solve_affine_recurrence
from repro.symbolic.expr import Expr

MAX_PATHS = 32


@dataclass
class PathEffect:
    """Effect of one path: ``value = mult * header + addend(h)``.

    ``visits`` records, for members traversed on this path, their own
    (mult, addend) at the point of their definition -- the pairing needed
    for the per-member strictness rule.  ``through`` additionally lists
    members whose visit info was lost to merging (conservative fallback).
    """

    mult: Fraction
    addend: ClosedForm
    visits: Dict[str, Tuple[Fraction, ClosedForm]] = field(default_factory=dict)
    through: frozenset = frozenset()

    def key(self) -> Tuple[Fraction, ClosedForm]:
        return (self.mult, self.addend)


def _merge_visits(a: PathEffect, b: PathEffect) -> Tuple[Dict, frozenset]:
    visits: Dict[str, Tuple[Fraction, ClosedForm]] = dict(a.visits)
    through = set(a.through) | set(b.through)
    for name, info in b.visits.items():
        if name in visits and visits[name] != info:
            del visits[name]  # conflicting pairing: keep only membership
        else:
            visits[name] = info
    through |= set(a.visits) | set(b.visits)
    return visits, frozenset(through)


class _ExpansionFailure(Exception):
    pass


class _Expander:
    """Expands SCR members into path effects relative to the header phi."""

    def __init__(self, ctx, members: List[str], header_phi: str):
        self.ctx = ctx
        self.members = set(members)
        self.header_phi = header_phi
        self.memo: Dict[str, List[PathEffect]] = {}
        self.in_progress: set = set()

    # -- operand expansion: ClosedForm (header-independent) or effects ----
    def expand_value(self, value: Value):
        if isinstance(value, Const):
            return ClosedForm.invariant(Expr.const(value.value))
        if isinstance(value, Ref):
            if value.name in self.members:
                return self.expand(value.name)
            node = self.ctx.node(value.name)
            if node is not None:
                form = class_closed_form(self.ctx.classification(value.name))
                if form is None:
                    raise _ExpansionFailure(f"operand {value.name} has no closed form")
                return form
            return ClosedForm.invariant(self.ctx.invariant_symbol(value.name))
        raise _ExpansionFailure(f"bad operand {value!r}")

    def expand(self, name: str) -> List[PathEffect]:
        if name in self.memo:
            return self.memo[name]
        if name in self.in_progress:
            raise _ExpansionFailure(f"cycle avoiding the header phi at {name}")
        if name == self.header_phi:
            base = [PathEffect(Fraction(1), ClosedForm.zero(), {name: (Fraction(1), ClosedForm.zero())}, frozenset({name}))]
            self.memo[name] = base
            return base
        self.in_progress.add(name)
        try:
            effects = self._expand_node(name)
        finally:
            self.in_progress.discard(name)
        if len(effects) > MAX_PATHS:
            raise _ExpansionFailure("too many control-flow paths")
        # record this member's own effect in each path's visits
        stamped = []
        for pe in effects:
            visits = dict(pe.visits)
            visits[name] = (pe.mult, pe.addend)
            stamped.append(
                PathEffect(pe.mult, pe.addend, visits, pe.through | {name})
            )
        self.memo[name] = stamped
        return stamped

    def _expand_node(self, name: str) -> List[PathEffect]:
        node = self.ctx.node(name)
        inst = node.inst
        if inst is None:
            if node.exit_expr is None:
                raise _ExpansionFailure("inner-loop value with unknown exit value")
            return self._expand_expression(node.exit_expr)
        if isinstance(inst, Assign):
            return self._as_effects(self.expand_value(inst.src))
        if isinstance(inst, UnOp):
            return self._scale(self._as_effects(self.expand_value(inst.operand)), Fraction(-1))
        if isinstance(inst, Phi):
            out: List[PathEffect] = []
            for value in inst.uses():
                expanded = self.expand_value(value)
                if isinstance(expanded, ClosedForm):
                    raise _ExpansionFailure(
                        f"phi {name} merges a value independent of the header"
                    )
                out.extend(expanded)
            return out
        if isinstance(inst, BinOp):
            if inst.op is BinaryOp.ADD:
                return self._add(self.expand_value(inst.lhs), self.expand_value(inst.rhs))
            if inst.op is BinaryOp.SUB:
                return self._add(
                    self.expand_value(inst.lhs),
                    self._negate(self.expand_value(inst.rhs)),
                )
            if inst.op is BinaryOp.MUL:
                return self._mul(self.expand_value(inst.lhs), self.expand_value(inst.rhs))
            raise _ExpansionFailure(f"operator {inst.op} in cycle")
        raise _ExpansionFailure(f"{type(inst).__name__} in cycle")

    def _expand_expression(self, expr: Expr) -> List[PathEffect]:
        """Expand a synthetic exit-value expression (inner-loop summary)."""
        total = None
        for mono, coeff in expr.terms().items():
            member_syms = [(s, p) for s, p in mono if s in self.members]
            other_syms = [(s, p) for s, p in mono if s not in self.members]
            if sum(p for _, p in member_syms) > 1:
                raise _ExpansionFailure("exit value nonlinear in the cycle")
            # closed form of the non-member part
            part = ClosedForm.invariant(Expr.const(coeff))
            for sym, power in other_syms:
                factor = self.expand_value(Ref(sym))
                if not isinstance(factor, ClosedForm):
                    raise _ExpansionFailure("unexpected member in exit value")
                for _ in range(power):
                    product = part.try_mul(factor)
                    if product is None:
                        raise _ExpansionFailure("exit value product not representable")
                    part = product
            if member_syms:
                member_effects = self.expand(member_syms[0][0])
                term = self._mul(member_effects, part)
            else:
                term = part
            total = term if total is None else self._add(total, term)
        if total is None:
            total = ClosedForm.zero()
        return self._as_effects(total)

    # -- combination helpers ---------------------------------------------
    def _as_effects(self, value) -> List[PathEffect]:
        if isinstance(value, ClosedForm):
            return [PathEffect(Fraction(0), value)]
        return value

    def _negate(self, value):
        if isinstance(value, ClosedForm):
            return -value
        return self._scale(value, Fraction(-1))

    def _scale(self, effects: List[PathEffect], factor: Fraction) -> List[PathEffect]:
        # visits dicts are shared, never mutated in place (copied on stamp)
        return [
            PathEffect(pe.mult * factor, pe.addend.scale(factor), pe.visits, pe.through)
            for pe in effects
        ]

    def _scale_cf(self, effects: List[PathEffect], form: ClosedForm) -> List[PathEffect]:
        """Multiply effects by a header-independent closed form."""
        if form.is_invariant and form.init.is_constant:
            return self._scale(effects, form.init.constant_value())
        out = []
        for pe in effects:
            if pe.mult != 0:
                raise _ExpansionFailure("symbolic multiplier on the header value")
            product = pe.addend.try_mul(form)
            if product is None:
                raise _ExpansionFailure("product not representable")
            out.append(PathEffect(Fraction(0), product, pe.visits, pe.through))
        return out

    def _add(self, left, right):
        if isinstance(left, ClosedForm) and isinstance(right, ClosedForm):
            return left + right
        if isinstance(left, ClosedForm):
            left, right = right, left
        if isinstance(right, ClosedForm):
            return [
                PathEffect(pe.mult, pe.addend + right, pe.visits, pe.through)
                for pe in left
            ]
        out = []
        for a in left:
            for b in right:
                visits, through = _merge_visits(a, b)
                out.append(PathEffect(a.mult + b.mult, a.addend + b.addend, visits, through))
        if len(out) > MAX_PATHS:
            raise _ExpansionFailure("too many control-flow paths")
        return out

    def _mul(self, left, right):
        if isinstance(left, ClosedForm) and isinstance(right, ClosedForm):
            product = left.try_mul(right)
            if product is None:
                raise _ExpansionFailure("product not representable")
            return product
        if isinstance(left, ClosedForm):
            left, right = right, left
        if isinstance(right, ClosedForm):
            return self._scale_cf(left, right)
        # both sides depend on the header: only degenerate cases are affine
        out = []
        for a in left:
            for b in right:
                if a.mult == 0 and a.addend.is_invariant and a.addend.init.is_constant:
                    factor = a.addend.init.constant_value()
                    visits, through = _merge_visits(a, b)
                    out.append(
                        PathEffect(b.mult * factor, b.addend.scale(factor), visits, through)
                    )
                elif b.mult == 0 and b.addend.is_invariant and b.addend.init.is_constant:
                    factor = b.addend.init.constant_value()
                    visits, through = _merge_visits(a, b)
                    out.append(
                        PathEffect(a.mult * factor, a.addend.scale(factor), visits, through)
                    )
                else:
                    raise _ExpansionFailure("nonlinear cycle (header * header)")
        if len(out) > MAX_PATHS:
            raise _ExpansionFailure("too many control-flow paths")
        return out


# ----------------------------------------------------------------------
# provenance helpers (repro.obs explain layer)
# ----------------------------------------------------------------------
def _value_label(value: Value) -> str:
    if isinstance(value, Ref):
        return value.name
    if isinstance(value, Const):
        return f"const {value.value}"
    return repr(value)


def _recurrence_rule(mult: Fraction, addend: ClosedForm) -> str:
    """Which solver rule produced a unique-effect cycle's header class."""
    if mult == 1:
        if addend.is_zero:
            return "scr.invariant-cycle"
        if addend.is_invariant:
            return "scr.linear-recurrence"
        return "scr.polynomial-recurrence"
    if mult == -1 and addend.is_invariant:
        return "scr.flip-flop"
    if mult == 0:
        return "scr.wrap-around"
    return "scr.geometric-recurrence"


# ----------------------------------------------------------------------
# trivial SCR: wrap-around variables (section 4.1)
# ----------------------------------------------------------------------
def classify_trivial_header_phi(node, ctx) -> Classification:
    """A loop-header phi in an SCR by itself: (n+1)-order wrap-around."""
    cls = _classify_trivial_header_phi(node, ctx)
    init_value, carried_value = ctx.phi_split(node.inst)
    return remember(
        cls,
        "scr.wrap-around",
        (
            (_value_label(init_value), ctx.operand_class_of_value(init_value)),
            (_value_label(carried_value), ctx.operand_class_of_value(carried_value)),
        ),
        note="loop-header phi alone in its SCR (section 4.1); "
        "value(h) = carried(h-1) after the first iteration",
    )


def _classify_trivial_header_phi(node, ctx) -> Classification:
    loop = ctx.loop_label
    init_value, carried_value = ctx.phi_split(node.inst)
    init = ctx.value_expr(init_value)
    if init is None:
        return Unknown("wrap-around with unrepresentable initial value")
    carried = ctx.operand_class_of_value(carried_value)

    if isinstance(carried, Unknown):
        return Unknown("wrap-around of unknown")
    if isinstance(carried, Invariant):
        return WrapAround(loop, 1, Invariant(carried.expr, loop=loop), (init,)).simplify()
    if isinstance(carried, (InductionVariable, Periodic)):
        delayed = carried.delayed()
        return WrapAround(loop, 1, delayed, (init,)).simplify()
    if isinstance(carried, WrapAround):
        inner_delayed = carried.inner.delayed()
        if inner_delayed is None:
            return Unknown("wrap-around of unshiftable class")
        pre = (init,) + carried.pre_values
        return WrapAround(loop, carried.order + 1, inner_delayed, pre).simplify()
    if isinstance(carried, Monotonic):
        # the value is monotonic from the second iteration on
        inner = Monotonic(loop, carried.direction, carried.strict, init=None)
        return WrapAround(loop, 1, inner, (init,))
    if isinstance(carried, BranchDependent):
        # same step set, one iteration later
        return WrapAround(loop, 1, carried.delayed(), (init,))
    return Unknown("wrap-around of unhandled class")


# ----------------------------------------------------------------------
# non-trivial SCRs
# ----------------------------------------------------------------------
def classify_cycle_scr(members: List[str], ctx) -> Dict[str, Classification]:
    """Classify every member of one non-trivial SCR."""
    loop = ctx.loop_label
    header_phis = [m for m in members if ctx.is_header_phi(m)]
    if not header_phis:
        return {m: Unknown("cycle without a loop-header phi") for m in members}
    if len(header_phis) > 1:
        return _classify_periodic_family(members, header_phis, ctx)

    header = header_phis[0]
    init_value, carried_value = ctx.phi_split(ctx.node(header).inst)
    init = ctx.value_expr(init_value)
    if init is None:
        return {m: Unknown("unrepresentable initial value") for m in members}

    expander = _Expander(ctx, members, header)
    try:
        if not (isinstance(carried_value, Ref) and carried_value.name in expander.members):
            raise _ExpansionFailure("carried value outside the SCR")
        carried_effects = expander.expand(carried_value.name)
    except _ExpansionFailure as failure:
        return {m: Unknown(str(failure)) for m in members}

    unique = {(pe.mult, pe.addend) for pe in carried_effects}
    if len(unique) == 1:
        mult, addend = next(iter(unique))
        header_class = _solve_unique(loop, mult, addend, init)
        if header_class is not None:
            remember(
                header_class,
                _recurrence_rule(mult, addend),
                ((_value_label(init_value), ctx.operand_class_of_value(init_value)),),
                note=lambda mult=mult, addend=addend, init=init: (
                    f"solved x' = {mult}*x + ({addend}); x(0) = {init}"
                ),
            )
            return _classify_members(loop, members, header, header_class, expander, init)
    branch_class = _branch_dependent_header(loop, header, unique, init)
    if branch_class is not None:
        return _classify_branch_dependent(
            loop, members, header, branch_class, carried_effects, expander,
            init, ctx, init_value,
        )
    return _classify_monotonic(loop, members, header, carried_effects, expander, init, ctx)


def _solve_unique(
    loop: str, mult: Fraction, addend: ClosedForm, init: Expr
) -> Optional[Classification]:
    """Solve ``x' = mult*x + addend(h)``, ``x(0) = init``; None -> fall back."""
    if mult == 1:
        if addend.is_zero:
            return Invariant(init, loop=loop)
        if addend.is_invariant:
            return InductionVariable(loop, ClosedForm.linear(init, addend.init))
        form = solve_affine_recurrence(1, addend, init)
        if form is None:
            return None
        return cf_to_class(loop, form)
    if mult == -1 and addend.is_invariant:
        # flip-flop: "equivalent to a periodic variable of period two"
        return Periodic(loop, (init, addend.init - init)).simplify()
    if mult == 0:
        # the carried value ignores the header: first-order wrap-around
        inner = cf_to_class(loop, addend.shift(-1))
        return WrapAround(loop, 1, inner, (init,)).simplify()
    if mult.denominator == 1:
        form = solve_affine_recurrence(int(mult), addend, init)
        if form is None:
            return None
        return cf_to_class(loop, form)
    return None


def _classify_members(
    loop: str,
    members: List[str],
    header: str,
    header_class: Classification,
    expander: _Expander,
    init: Expr,
) -> Dict[str, Classification]:
    """Each member is ``mult*header + addend`` applied to the header class."""
    out: Dict[str, Classification] = {header: header_class}
    header_form = class_closed_form(header_class)
    for member in members:
        if member == header:
            continue
        try:
            effects = expander.expand(member)
        except _ExpansionFailure as failure:
            out[member] = Unknown(str(failure))
            continue
        unique = {(pe.mult, pe.addend) for pe in effects}
        if len(unique) != 1:
            out[member] = Unknown("member value differs between paths")
            continue
        mult, addend = next(iter(unique))
        if header_form is not None:
            out[member] = cf_to_class(loop, header_form.scale(mult) + addend)
        elif isinstance(header_class, Periodic) and addend.is_invariant:
            values = tuple(v * mult + addend.init for v in header_class.values)
            out[member] = Periodic(loop, values).simplify()
        elif isinstance(header_class, WrapAround):
            from repro.core.algebra import cls_add, cls_scale

            scaled = cls_scale(loop, header_class, Expr.const(mult))
            out[member] = cls_add(loop, scaled, cf_to_class(loop, addend))
        else:
            out[member] = Unknown("member of unrepresentable family")
        remember(
            out[member],
            "scr.member",
            ((header, header_class),),
            # lazy: str(ClosedForm) per member is too hot for attach time
            note=lambda member=member, mult=mult, header=header, addend=addend: (
                f"{member} = {mult}*{header} + ({addend}) each iteration"
            ),
        )
    return out


# ----------------------------------------------------------------------
# periodic families (section 4.2)
# ----------------------------------------------------------------------
def _classify_periodic_family(
    members: List[str], header_phis: List[str], ctx
) -> Dict[str, Classification]:
    """Several header phis, values rotated through copies: period = #phis."""
    loop = ctx.loop_label
    failure = {m: Unknown("not a periodic rotation") for m in members}

    # only header phis and copies allowed ("no arithmetic and no other
    # phi-functions")
    copies: Dict[str, str] = {}
    for member in members:
        inst = ctx.node(member).inst
        if ctx.is_header_phi(member):
            continue
        if isinstance(inst, Assign) and isinstance(inst.src, Ref) and inst.src.name in members:
            copies[member] = inst.src.name
        else:
            return failure

    # successor function sigma: header phi -> header phi reached by its
    # carried value through copies
    sigma: Dict[str, str] = {}
    inits: Dict[str, Expr] = {}
    for phi_name in header_phis:
        init_value, carried = ctx.phi_split(ctx.node(phi_name).inst)
        init = ctx.value_expr(init_value)
        if init is None:
            return failure
        inits[phi_name] = init
        if not isinstance(carried, Ref):
            return failure
        target = carried.name
        seen = set()
        while target in copies:
            if target in seen:
                return failure
            seen.add(target)
            target = copies[target]
        if target not in header_phis:
            return failure
        sigma[phi_name] = target

    period = len(header_phis)
    out: Dict[str, Classification] = {}
    for phi_name in header_phis:
        values = []
        current = phi_name
        for _ in range(period):
            values.append(inits[current])
            current = sigma[current]
        if current != phi_name:
            return failure  # not a single rotation cycle
        out[phi_name] = remember(
            Periodic(loop, tuple(values)).simplify(),
            "scr.periodic-family",
            tuple(
                (p, Invariant(inits[p], loop=loop)) for p in header_phis
            ),
            note=f"{period} header phis rotating through copies (section 4.2)",
        )

    # copies take the classification of their source
    remaining = dict(copies)
    while remaining:
        progressed = False
        for member, source in list(remaining.items()):
            if source in out:
                out[member] = out[source]
                del remaining[member]
                progressed = True
        if not progressed:
            for member in remaining:
                out[member] = Unknown("unresolvable copy chain")
            break
    return out


# ----------------------------------------------------------------------
# branch-dependent cycles (path-sensitive refinement of section 4.4)
# ----------------------------------------------------------------------
def _step_sort_key(expr: Expr):
    """Deterministic step order: numeric steps first, then by rendering."""
    if expr.is_constant:
        return (0, expr.constant_value(), "")
    return (1, Fraction(0), str(expr))


def _branch_dependent_header(
    loop: str, header: str, unique, init: Expr
) -> Optional[BranchDependent]:
    """Several differing path effects, each ``x' = x + d_p`` with an
    invariant step ``d_p``: the header is branch dependent -- per
    iteration it adds one value from the finite step set."""
    if len(unique) < 2:
        return None
    if not all(mult == 1 and addend.is_invariant for mult, addend in unique):
        return None
    steps = tuple(
        sorted((addend.init for _mult, addend in unique), key=_step_sort_key)
    )
    return BranchDependent(loop, steps, init=init, family=header)


def _classify_branch_dependent(
    loop: str,
    members: List[str],
    header: str,
    header_class: BranchDependent,
    carried_effects: List[PathEffect],
    expander: _Expander,
    init: Expr,
    ctx,
    init_value: Value,
) -> Dict[str, Classification]:
    """Header = branch dependent; members via Figure 10 where possible."""
    remember(
        header_class,
        "scr.branch-dependent",
        ((_value_label(init_value), ctx.operand_class_of_value(init_value)),),
        note=lambda header_class=header_class: (
            f"{len(header_class.steps)} distinct per-path updates "
            f"{{{', '.join(str(s) for s in header_class.steps)}}}; "
            "every carried path is x' = x + step (path-sensitive section 4.4)"
        ),
    )
    if header_class.direction is not None:
        # all steps move one way: members keep the per-member strictness
        # analysis of Figure 10; only the header carries the step set
        out = _classify_monotonic(
            loop, members, header, carried_effects, expander, init, ctx
        )
        out[header] = header_class
        return out

    # mixed-sign steps: the classic rules have nothing; a member still
    # follows the header exactly when its offset is path independent
    out: Dict[str, Classification] = {header: header_class}
    for member in members:
        if member == header:
            continue
        try:
            effects = expander.expand(member)
        except _ExpansionFailure as failure:
            out[member] = Unknown(str(failure))
            continue
        unique_m = {(pe.mult, pe.addend) for pe in effects}
        if len(unique_m) == 1:
            mult, addend = next(iter(unique_m))
            if mult == 1 and addend.is_invariant:
                out[member] = BranchDependent(
                    loop,
                    header_class.steps,
                    init=init + addend.init,
                    family=header,
                )
            else:
                out[member] = Unknown(
                    "member with multiplier in branch-dependent cycle"
                )
        else:
            out[member] = Unknown("branch-dependent member differs between paths")
        remember(
            out[member],
            "scr.branch-member",
            ((header, header_class),),
            note="path-independent offset from a branch-dependent header",
        )
    return out


# ----------------------------------------------------------------------
# monotonic fallback (section 4.4)
# ----------------------------------------------------------------------
def _unconditional_in_loop(ctx, member: str) -> bool:
    """True when ``member``'s definition executes on *every* iteration
    (its block dominates every latch).  Such a member is observed each
    iteration even on carried paths that bypass it in the phi web -- e.g.
    when GVN reuses an unconditional computation as a conditional phi
    input -- so every carried path is relevant to its monotonicity."""
    if ctx is None:
        return False
    node = ctx.node(member)
    if node is None or node.block is None:
        return False
    domtree = ctx.result.domtree
    latches = ctx.loop.latches
    return bool(latches) and all(
        domtree.dominates(node.block, latch) for latch in latches
    )


def _classify_monotonic(
    loop: str,
    members: List[str],
    header: str,
    carried_effects: List[PathEffect],
    expander: _Expander,
    init: Expr,
    ctx=None,
) -> Dict[str, Classification]:
    direction = _family_direction(carried_effects, init)
    if direction is None:
        return {m: Unknown("cycle is neither induction nor monotonic") for m in members}

    sign_of = closedform_sign if direction > 0 else (lambda cf: -_sign_or_none(cf))
    strict_of = (
        closedform_strict_sign if direction > 0 else (lambda cf: -_strict_or_none(cf))
    )

    out: Dict[str, Classification] = {}
    additive = all(pe.mult == 1 for pe in carried_effects)
    header_strict = additive and all(strict_of(pe.addend) == 1 for pe in carried_effects)
    out[header] = remember(
        Monotonic(loop, direction, header_strict, init=init, family=header),
        "scr.monotonic-family",
        ((f"x(0) = {init}", Invariant(init, loop=loop)),),
        note=(
            f"{len(carried_effects)} carried path(s), every one moves the "
            f"value {'up' if direction > 0 else 'down'} (section 4.4)"
        ),
    )

    for member in members:
        if member == header:
            continue
        if not additive:
            out[member] = _multiplicative_member(loop, member, direction, expander, header)
        else:
            try:
                effects = expander.expand(member)
            except _ExpansionFailure as failure:
                out[member] = Unknown(str(failure))
                continue
            out[member] = _additive_member(
                loop, member, direction, effects, carried_effects, sign_of, strict_of, header,
                all_paths_relevant=_unconditional_in_loop(ctx, member),
            )
        remember(
            out[member],
            "scr.monotonic-member",
            ((header, out[header]),),
            note="per-member strictness rule of Figure 10",
        )
    return out


def _sign_or_none(form: ClosedForm):
    sign = closedform_sign(form)
    return sign if sign is not None else 99


def _strict_or_none(form: ClosedForm):
    sign = closedform_strict_sign(form)
    return sign if sign is not None else 99


def _family_direction(effects: List[PathEffect], init: Expr) -> Optional[int]:
    """+1 / -1 when every path provably moves one way; None otherwise."""
    for direction in (1, -1):
        ok = True
        for pe in effects:
            sign = closedform_sign(pe.addend)
            if sign is None or (sign != 0 and sign != direction):
                ok = False
                break
            if pe.mult == 1:
                continue
            # multiplicative path: a*x + d keeps direction when a >= 1,
            # d has the right sign, and x never crosses zero -- guaranteed
            # when the initial value already lies on the right side.
            if pe.mult.denominator != 1 or pe.mult < 1:
                ok = False
                break
            init_sign = init.known_sign()
            if init_sign is None or (init_sign != 0 and init_sign != direction):
                ok = False
                break
        if ok and any(
            closedform_sign(pe.addend) == direction or pe.mult > 1 for pe in effects
        ):
            return direction
    return None


def _additive_member(
    loop: str,
    member: str,
    direction: int,
    effects: List[PathEffect],
    carried_effects: List[PathEffect],
    sign_of,
    strict_of,
    family: str,
    all_paths_relevant: bool = False,
) -> Classification:
    """Per-member monotonicity with the pairing rule (see module docstring).

    For occurrences at iterations h1 < h2 of member ``m = x + d_m``:
    ``m(h2) - m(h1) >= (f(p1) - d_m(p1)) + d_m(h2)`` where ``f(p1)`` is the
    full-cycle addend of the path taken at h1 (which went through ``m``).
    Non-decreasing needs ``f(p) - d_m(p) + d_m >= 0`` per path and next
    offset; strictness needs ``f(p) - d_m(p) + min(d_m) > 0``.

    A path that bypasses ``m`` in the phi web is normally irrelevant (``m``
    is only observed when a path through it runs) -- but a member that
    executes unconditionally (``all_paths_relevant``) is observed on every
    iteration, so all carried paths count for it.
    """
    if any(pe.mult != 1 for pe in effects):
        return Unknown("member with multiplier in monotonic cycle")
    offsets = [pe.addend for pe in effects]
    if any(sign_of(d) not in (0, 1) for d in offsets):
        return Unknown("member offset with wrong sign")

    relevant = [pe for pe in carried_effects if member in pe.through]
    if not relevant:
        return Unknown("member not on any carried path")
    if all_paths_relevant:
        relevant = carried_effects

    nondecreasing = True
    strict = True
    for pe in relevant:
        if member in pe.visits:
            _, offset_here = pe.visits[member]
            candidates = [offset_here]
        else:
            candidates = offsets  # pairing lost: check all offsets
        for offset in candidates:
            slack = pe.addend - offset
            # the next execution contributes its own offset: the difference
            # is slack + d(h2), so a negative slack can be compensated by
            # every possible next offset
            if sign_of(slack) not in (0, 1) and not all(
                sign_of(slack + other) in (0, 1) for other in offsets
            ):
                nondecreasing = False
            # strict needs slack + min(d_m) > 0; without a provable minimum
            # we conservatively require slack + d > 0 for every offset d
            if not all(strict_of(slack + other) == 1 for other in offsets):
                strict = False
    if not nondecreasing:
        return Unknown("member not provably monotonic")
    return Monotonic(loop, direction, strict, family=family)


def _multiplicative_member(
    loop: str, member: str, direction: int, expander, family: str
) -> Classification:
    try:
        effects = expander.expand(member)
    except _ExpansionFailure as failure:
        return Unknown(str(failure))
    for pe in effects:
        if pe.mult.denominator != 1 or pe.mult < 1:
            return Unknown("member with non-positive multiplier")
        sign = closedform_sign(pe.addend)
        if sign is None or (sign != 0 and sign != direction):
            return Unknown("member offset with wrong sign")
    return Monotonic(loop, direction, False, family=family)
