"""Tarjan's strongly-connected-region algorithm, classification-ready.

"Our algorithm to find the induction variables is based on Tarjan's
well-known algorithm to find strongly connected regions in directed graphs.
... The advantage to using Tarjan's algorithm is that when it identifies an
SCR in the graph, it will have visited all the successors of the SCR;
because of the way the edges are directed in our graph, when an SCR is
identified, all the source operands reaching the SCR will already have been
visited and identified.  Our modifications to Tarjan's algorithm are to
classify each SCR ... at the time the SCR is identified" (section 3.1).

This module implements exactly that: an iterative (explicit stack) Tarjan
that invokes a callback on each SCR at pop time.  The callback sees SCRs in
reverse topological order of the condensation, so every out-of-SCR operand
is already classified -- the single property the whole paper rests on.
The run is one pass, linear in nodes + edges.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence, Set


def tarjan_scrs(
    nodes: Iterable[str],
    successors: Callable[[str], Sequence[str]],
    on_scr: Callable[[List[str], bool], None],
) -> int:
    """Run Tarjan over ``nodes``; call ``on_scr(members, is_cycle)`` per SCR.

    ``is_cycle`` is True for nontrivial SCRs *and* for single nodes with a
    self-edge.  Returns the number of SCRs found.
    """
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = 0
    scr_count = 0

    all_nodes = list(nodes)
    node_set = set(all_nodes)

    for root in all_nodes:
        if root in index:
            continue
        # iterative DFS: work stack of (node, iterator position)
        work: List[List] = [[root, 0, None]]  # node, child index, cached succs
        while work:
            frame = work[-1]
            node, child_index = frame[0], frame[1]
            if frame[2] is None:
                frame[2] = [s for s in successors(node) if s in node_set]
            if child_index == 0:
                index[node] = counter
                lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            succs = frame[2]
            advanced = False
            while frame[1] < len(succs):
                succ = succs[frame[1]]
                frame[1] += 1
                if succ not in index:
                    work.append([succ, 0, None])
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            # node finished
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                members: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    members.append(member)
                    if member == node:
                        break
                members.reverse()
                is_cycle = len(members) > 1 or node in successors(node)
                on_scr(members, is_cycle)
                scr_count += 1
    return scr_count
