"""Tarjan's strongly-connected-region algorithm, classification-ready.

"Our algorithm to find the induction variables is based on Tarjan's
well-known algorithm to find strongly connected regions in directed graphs.
... The advantage to using Tarjan's algorithm is that when it identifies an
SCR in the graph, it will have visited all the successors of the SCR;
because of the way the edges are directed in our graph, when an SCR is
identified, all the source operands reaching the SCR will already have been
visited and identified.  Our modifications to Tarjan's algorithm are to
classify each SCR ... at the time the SCR is identified" (section 3.1).

This module implements exactly that: an iterative (explicit stack) Tarjan
that invokes a callback on each SCR at pop time.  The callback sees SCRs in
reverse topological order of the condensation, so every out-of-SCR operand
is already classified -- the single property the whole paper rests on.

The run is one pass, linear in nodes + edges -- and it *proves* it: the
returned :class:`TraversalStats` carries the exact node and edge counts of
the traversed graph, so callers (the driver's ``graph_size``, the B01
linearity benchmark) get the graph size as a byproduct of the single
traversal instead of re-deriving every node's successors a second time.
``successors`` is called exactly once per node.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, NamedTuple, Sequence, Set


class TraversalStats(NamedTuple):
    """What one Tarjan run saw: SCRs popped, nodes visited, edges followed.

    ``edge_count`` counts edges between in-set nodes (successors outside the
    node set are filtered before counting, matching the region graph the
    classification actually runs on).  ``node_count + edge_count`` is the
    SSA-graph size of the paper's linearity claim.
    """

    scr_count: int
    node_count: int
    edge_count: int


def tarjan_scrs(
    nodes: Iterable[str],
    successors: Callable[[str], Sequence[str]],
    on_scr: Callable[[List[str], bool], None],
    prefiltered: bool = False,
) -> TraversalStats:
    """Run Tarjan over ``nodes``; call ``on_scr(members, is_cycle)`` per SCR.

    ``is_cycle`` is True for nontrivial SCRs *and* for single nodes with a
    self-edge.  ``successors`` is invoked exactly once per node; pass
    ``prefiltered=True`` when every returned successor is already known to
    be a member of ``nodes`` (e.g. a precomputed adjacency dict) to skip
    the membership filter.  Returns :class:`TraversalStats`.
    """
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    self_loops: Set[str] = set()
    counter = 0
    scr_count = 0
    edge_count = 0

    all_nodes = list(nodes)
    node_set = set(all_nodes)

    index_get = index.get

    for root in all_nodes:
        if root in index:
            continue
        # iterative DFS: work stack of [node, successor iterator]
        work: List[List] = [[root, None]]
        while work:
            frame = work[-1]
            node = frame[0]
            child_iter = frame[1]
            if child_iter is None:
                index[node] = counter
                lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
                succs = successors(node)
                if not prefiltered:
                    succs = [s for s in succs if s in node_set]
                edge_count += len(succs)
                if node in succs:
                    self_loops.add(node)
                child_iter = frame[1] = iter(succs)
            advanced = False
            for succ in child_iter:
                succ_index = index_get(succ)
                if succ_index is None:
                    work.append([succ, None])
                    advanced = True
                    break
                if succ in on_stack and succ_index < lowlink[node]:
                    lowlink[node] = succ_index
            if advanced:
                continue
            # node finished
            work.pop()
            low = lowlink[node]
            if work:
                parent = work[-1][0]
                if low < lowlink[parent]:
                    lowlink[parent] = low
            if low == index[node]:
                members: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    members.append(member)
                    if member == node:
                        break
                members.reverse()
                is_cycle = len(members) > 1 or node in self_loops
                on_scr(members, is_cycle)
                scr_count += 1
    return TraversalStats(scr_count, len(index), edge_count)
