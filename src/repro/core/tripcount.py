"""Trip counts of countable loops (section 5.2).

"If there is a single loop exit and the condition is an integer comparison,
the compiler can convert the comparison into the form ``if (left >= right)
exit`` ... treat the comparison as a subtraction, and try to classify it as
a linear induction sequence (L, i, s).  The trip count can be computed as::

    tripcount = 0            if i <= 0
                ceil(i / -s) if i > 0 and s < 0
                infinity     if i > 0 and s >= 0"

where here ``(i, s)`` describes ``q = right - left`` (the loop stays while
``q > 0``).  The conversion table for all four relations, on both the true-
and false-exits, is :data:`CONVERSION_TABLE`.

For symbolic bounds the count is an :class:`~repro.symbolic.expr.Expr`
(e.g. the triangular inner loop of Figure 9 has trip count ``i``); when the
ceiling division does not simplify, an opaque invariant symbol is returned
instead, with the definition recorded.  When several exits exist only a
maximum trip count may be found ("this information is useful for dependence
testing, to place bounds on the solution space").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, List, Optional, Tuple

from repro.core.algebra import class_closed_form
from repro.core.classes import Classification
from repro.ir.function import Function
from repro.ir.instructions import Branch, Compare
from repro.ir.opcodes import Relation
from repro.ir.values import Ref, Value
from repro.symbolic.closedform import ClosedForm
from repro.symbolic.expr import Expr


class TripCountKind(enum.Enum):
    ZERO = "zero"
    FINITE = "finite"
    INFINITE = "infinite"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class TripCount:
    """Trip count of one loop.

    ``count`` is the symbolic count for FINITE results.  ``exact`` is False
    when ``count`` is only an upper bound (multi-exit loops).
    ``assumptions`` lists conditions under which a symbolic count is valid
    (the paper's formula returns 0 when the initial difference is already
    non-positive; a symbolic count like ``n`` carries ``n >= 0``).
    ``exit_block`` is the block whose test fires, when unique -- exit
    values are computed there.
    """

    kind: TripCountKind
    count: Optional[Expr] = None
    exact: bool = True
    assumptions: Tuple[str, ...] = ()
    exit_block: Optional[str] = None

    @property
    def is_countable(self) -> bool:
        return self.kind is TripCountKind.FINITE and self.exact

    def constant(self) -> Optional[int]:
        if self.kind is TripCountKind.ZERO:
            return 0
        if self.kind is TripCountKind.FINITE and self.count is not None and self.count.is_constant:
            try:
                return self.count.as_int()
            except Exception:
                return None
        return None


#: exit condition -> canonical ``exit if left >= right`` (section 5.2 table).
#: Key: (relation, True if the *true* branch exits).  Value: a function
#: mapping the operand forms (a, b) to (left, right).
CONVERSION_TABLE = {
    # true branch exits: exit when a REL b
    (Relation.LT, True): lambda a, b: (b, a + ClosedForm.invariant(1)),
    (Relation.LE, True): lambda a, b: (b, a),
    (Relation.GT, True): lambda a, b: (a, b + ClosedForm.invariant(1)),
    (Relation.GE, True): lambda a, b: (a, b),
    # false branch exits: exit when NOT (a REL b)
    (Relation.LT, False): lambda a, b: (a, b),
    (Relation.LE, False): lambda a, b: (a, b + ClosedForm.invariant(1)),
    (Relation.GT, False): lambda a, b: (b, a),
    (Relation.GE, False): lambda a, b: (b, a + ClosedForm.invariant(1)),
}


def compute_trip_count(
    function: Function,
    loop,
    class_of_value: Callable[[Value], Classification],
    opaque: Callable[[tuple], Expr],
) -> TripCount:
    """Trip count of ``loop`` given the finished classification of its body."""
    exits = loop.exit_edges(function)
    if not exits:
        return TripCount(TripCountKind.INFINITE)

    per_exit: List[TripCount] = []
    for source, _target in exits:
        per_exit.append(_one_exit(function, loop, source, class_of_value, opaque))

    if len(per_exit) == 1:
        return per_exit[0]

    # several exits: the real count is the minimum over the exits
    finites = [t for t in per_exit if t.kind is TripCountKind.FINITE]
    zeros = [t for t in per_exit if t.kind is TripCountKind.ZERO]
    if zeros:
        return TripCount(TripCountKind.ZERO)
    if not finites:
        if all(t.kind is TripCountKind.INFINITE for t in per_exit):
            return TripCount(TripCountKind.INFINITE)
        return TripCount(TripCountKind.UNKNOWN)
    if len(finites) == 1 and all(
        t.kind is TripCountKind.INFINITE for t in per_exit if t is not finites[0]
    ):
        return finites[0]
    constants = [t.constant() for t in finites]
    if all(c is not None for c in constants):
        best = min(range(len(finites)), key=lambda k: constants[k])
        exact = all(t.kind is TripCountKind.INFINITE or t is finites[best] for t in per_exit)
        chosen = finites[best]
        return TripCount(
            TripCountKind.FINITE,
            chosen.count,
            exact=exact and chosen.exact,
            assumptions=chosen.assumptions,
            exit_block=chosen.exit_block if exact else None,
        )
    # symbolic counts from several exits: only an unordered bound; report
    # the first as a non-exact bound
    first = finites[0]
    return TripCount(
        TripCountKind.FINITE, first.count, exact=False, assumptions=first.assumptions
    )


def _one_exit(
    function: Function,
    loop,
    source_label: str,
    class_of_value,
    opaque,
) -> TripCount:
    """Trip count implied by the exit edge leaving ``source_label``."""
    block = function.block(source_label)
    terminator = block.terminator
    if not isinstance(terminator, Branch):
        return TripCount(TripCountKind.UNKNOWN, exit_block=source_label)
    true_exits = terminator.true_target not in loop.body
    false_exits = terminator.false_target not in loop.body
    if true_exits and false_exits:
        # both targets leave: executes at most once; treat as unknown
        return TripCount(TripCountKind.UNKNOWN, exit_block=source_label)

    cond = terminator.cond
    if not isinstance(cond, Ref):
        # constant condition (typically folded by SCCP)
        from repro.ir.values import Const

        if isinstance(cond, Const):
            exits_now = bool(cond.value) if true_exits else not cond.value
            if not exits_now:
                return TripCount(TripCountKind.INFINITE, exit_block=source_label)
            if source_label == loop.header:
                # the header runs on iteration 0 and exits immediately
                return TripCount(TripCountKind.ZERO, exit_block=source_label)
        return TripCount(TripCountKind.UNKNOWN, exit_block=source_label)
    compare = _find_definition(function, loop, cond.name)
    if not isinstance(compare, Compare):
        return TripCount(TripCountKind.UNKNOWN, exit_block=source_label)

    form_a = class_closed_form(class_of_value(compare.lhs))
    form_b = class_closed_form(class_of_value(compare.rhs))
    if form_a is None or form_b is None:
        return TripCount(TripCountKind.UNKNOWN, exit_block=source_label)

    relation = compare.relation
    if relation in (Relation.EQ, Relation.NE):
        return TripCount(TripCountKind.UNKNOWN, exit_block=source_label)
    convert = CONVERSION_TABLE[(relation, true_exits)]
    left, right = convert(form_a, form_b)

    # q = right - left; stay while q > 0, exit when q <= 0
    q = right - left
    if not q.is_linear:
        return TripCount(TripCountKind.UNKNOWN, exit_block=source_label)
    init = q.coeff(0)
    step = q.coeff(1)

    init_sign = init.known_sign()
    step_sign = step.known_sign()

    if init_sign is not None and init_sign <= 0:
        return TripCount(TripCountKind.ZERO, exit_block=source_label)
    if step_sign is not None and step_sign >= 0:
        if init_sign == 1:
            return TripCount(TripCountKind.INFINITE, exit_block=source_label)
        # symbolic init, non-decreasing difference: 0 or infinity
        return TripCount(TripCountKind.UNKNOWN, exit_block=source_label)
    if step_sign is None:
        return TripCount(TripCountKind.UNKNOWN, exit_block=source_label)

    # step < 0: count = ceil(init / -step), valid when init > 0
    divisor = -step.constant_value()
    assumptions: Tuple[str, ...] = ()
    if init_sign is None:
        assumptions = (f"{init} >= 1",)
    if init.is_constant:
        value = init.constant_value()
        count = -((-value) // divisor)  # ceil for positive value
        count_int = int(count) if count == int(count) else int(count)
        return TripCount(
            TripCountKind.FINITE,
            Expr.const(count_int),
            exit_block=source_label,
        )
    quotient = init.try_div(Expr.const(divisor))
    if quotient is not None and divisor == 1:
        # exact symbolic count (ceil(x/1) = x)
        return TripCount(
            TripCountKind.FINITE,
            quotient,
            assumptions=assumptions,
            exit_block=source_label,
        )
    # ceil of a symbolic quantity: opaque invariant symbol
    symbol = opaque(("ceildiv", init, divisor))
    return TripCount(
        TripCountKind.FINITE,
        symbol,
        assumptions=assumptions + (f"{symbol} = ceil(({init}) / {divisor})",),
        exit_block=source_label,
    )


def _find_definition(function: Function, loop, name: str):
    for label in loop.body:
        for inst in function.block(label):
            if inst.result == name:
                return inst
    return None
