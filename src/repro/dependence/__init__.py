"""Data dependence testing with the extended variable classes (section 6).

"The driving force for classifying the variables in loops as shown in this
paper is to improve the generality of dependence testing."  The flow:

1. :mod:`repro.dependence.subscript` turns a classified subscript value
   into an affine descriptor over the counters of the enclosing loops
   (or flags it periodic / monotonic / wrap-around).
2. :mod:`repro.dependence.testing` builds the dependence equation for a
   pair of references and dispatches to the solvers: ZIV, strong/weak SIV
   (:mod:`repro.dependence.siv`), GCD (:mod:`repro.dependence.gcd`) and
   Banerjee bounds (:mod:`repro.dependence.banerjee`) under a hierarchy of
   direction vectors (:mod:`repro.dependence.direction`).
3. :mod:`repro.dependence.extended` applies the paper's translations:
   periodic ``=`` solutions become loop-level ``!=``; monotonic solutions
   become ``<=`` / ``=`` (strict); wrap-around dependences are flagged as
   holding only after the first ``k`` iterations.
4. :mod:`repro.dependence.graph` assembles the dependence graph of a whole
   function (flow / anti / output edges between array references).
"""

from repro.dependence.direction import Direction, DirectionVector
from repro.dependence.subscript import SubscriptDescriptor, SubscriptKind, describe_subscript
from repro.dependence.testing import DependenceResult, test_dependence
from repro.dependence.graph import DependenceEdge, DependenceGraph, build_dependence_graph
from repro.dependence.loopinfo import (
    InterchangeVerdict,
    LoopParallelism,
    analyze_parallelism,
    check_interchange,
)
from repro.dependence.distribution import DistributionPlan, plan_distribution

__all__ = [
    "InterchangeVerdict",
    "LoopParallelism",
    "analyze_parallelism",
    "check_interchange",
    "DistributionPlan",
    "plan_distribution",
    "Direction",
    "DirectionVector",
    "SubscriptDescriptor",
    "SubscriptKind",
    "describe_subscript",
    "DependenceResult",
    "test_dependence",
    "DependenceEdge",
    "DependenceGraph",
    "build_dependence_graph",
]
