"""Banerjee-style bound testing [BCKT79].

For the dependence equation ``sum_k (a_k h_k - b_k h'_k) = delta`` with
``h, h' in [0, U_k - 1]`` and a direction constraint per common loop, we
bound the left side by interval arithmetic and declare independence when
``delta`` falls outside.  Unknown (symbolic) trip counts give half-infinite
ranges.  The per-direction term bounds use the decoupled relaxation

* ``=`` : ``(a-b) * h``,                   ``h  in [0, U-1]``
* ``<`` : ``(a-b) * h - b * d``,           ``h  in [0, U-2], d in [1, U-1]``
* ``>`` : ``(a-b) * h' + a * d``,          ``h' in [0, U-2], d in [1, U-1]``

which over-approximates the true polytope (sound: a superset of achievable
values can only miss independence, never fabricate it).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

NEG_INF = "-inf"
POS_INF = "+inf"
Bound = object  # Fraction | NEG_INF | POS_INF


@dataclass(frozen=True)
class Interval:
    """A closed interval with possibly infinite endpoints; may be empty."""

    lo: Bound
    hi: Bound
    empty: bool = False

    @staticmethod
    def point(value: Fraction) -> "Interval":
        return Interval(value, value)

    @staticmethod
    def empty_interval() -> "Interval":
        return Interval(Fraction(0), Fraction(0), empty=True)

    def __add__(self, other: "Interval") -> "Interval":
        if self.empty or other.empty:
            return Interval.empty_interval()
        return Interval(_add(self.lo, other.lo), _add(self.hi, other.hi))

    def union(self, other: "Interval") -> "Interval":
        if self.empty:
            return other
        if other.empty:
            return self
        return Interval(_min(self.lo, other.lo), _max(self.hi, other.hi))

    def contains(self, value: Fraction) -> bool:
        if self.empty:
            return False
        lo_ok = self.lo is NEG_INF or (self.lo is not POS_INF and self.lo <= value)
        hi_ok = self.hi is POS_INF or (self.hi is not NEG_INF and value <= self.hi)
        return lo_ok and hi_ok


def _add(a: Bound, b: Bound) -> Bound:
    if a is NEG_INF or b is NEG_INF:
        return NEG_INF
    if a is POS_INF or b is POS_INF:
        return POS_INF
    return a + b


def _min(a: Bound, b: Bound) -> Bound:
    if a is NEG_INF or b is NEG_INF:
        return NEG_INF
    if a is POS_INF:
        return b
    if b is POS_INF:
        return a
    return min(a, b)


def _max(a: Bound, b: Bound) -> Bound:
    if a is POS_INF or b is POS_INF:
        return POS_INF
    if a is NEG_INF:
        return b
    if b is NEG_INF:
        return a
    return max(a, b)


def scaled_range(coeff: Fraction, lo: int, hi: Optional[int]) -> Interval:
    """Values of ``coeff * v`` for integer ``v in [lo, hi]`` (hi None = inf).

    Empty when hi is not None and hi < lo.
    """
    if coeff == 0:
        return Interval.point(Fraction(0))
    if hi is not None and hi < lo:
        return Interval.empty_interval()
    low_end = coeff * lo
    if hi is None:
        if coeff > 0:
            return Interval(low_end, POS_INF)
        return Interval(NEG_INF, low_end)
    high_end = coeff * hi
    return Interval(min(low_end, high_end), max(low_end, high_end))


def direction_term_interval(
    a: Fraction, b: Fraction, trip: Optional[int], signs: FrozenSet[int]
) -> Interval:
    """Bounds of ``a*h - b*h'`` under the direction constraint ``signs``.

    ``trip`` is the loop's trip count (``h, h' in [0, trip-1]``), or None
    when unknown/unbounded.  ``signs`` is the allowed sign set of
    ``h' - h`` ({1} = '<', {0} = '=', {-1} = '>').
    """
    upper = None if trip is None else trip - 1
    result = Interval.empty_interval()
    if 0 in signs:
        result = result.union(scaled_range(a - b, 0, upper))
    if 1 in signs:
        # h' = h + d, d >= 1
        h_upper = None if upper is None else upper - 1
        part = scaled_range(a - b, 0, h_upper) + scaled_range(-b, 1, upper)
        result = result.union(part)
    if -1 in signs:
        h_upper = None if upper is None else upper - 1
        part = scaled_range(a - b, 0, h_upper) + scaled_range(a, 1, upper)
        result = result.union(part)
    return result


def banerjee_feasible(
    common: Sequence[Tuple[Fraction, Fraction, Optional[int]]],
    private: Sequence[Tuple[Fraction, Optional[int]]],
    delta: Fraction,
    signs_per_level: Sequence[FrozenSet[int]],
) -> bool:
    """May the equation hold under the given direction vector?

    ``common``: per common loop (a_k, b_k, trip_k).
    ``private``: (coefficient, trip) for loop variables private to one side
    (sign convention: already folded so the equation reads
    ``sum common-terms + sum coeff*v = delta``).
    """
    total = Interval.point(Fraction(0))
    for (a, b, trip), signs in zip(common, signs_per_level):
        total = total + direction_term_interval(a, b, trip, signs)
        if total.empty:
            return False
    for coeff, trip in private:
        upper = None if trip is None else trip - 1
        total = total + scaled_range(coeff, 0, upper)
        if total.empty:
            return False
    return total.contains(delta)
