"""Banerjee-style bound testing [BCKT79].

For the dependence equation ``sum_k (a_k h_k - b_k h'_k) = delta`` with
``h, h' in [0, U_k - 1]`` and a direction constraint per common loop, we
bound the left side by interval arithmetic and declare independence when
``delta`` falls outside.  Unknown (symbolic) trip counts give half-infinite
ranges.  The per-direction term bounds use the decoupled relaxation

* ``=`` : ``(a-b) * h``,                   ``h  in [0, U-1]``
* ``<`` : ``(a-b) * h - b * d``,           ``h  in [0, U-2], d in [1, U-1]``
* ``>`` : ``(a-b) * h' + a * d``,          ``h' in [0, U-2], d in [1, U-1]``

which over-approximates the true polytope (sound: a superset of achievable
values can only miss independence, never fabricate it).

The interval arithmetic itself lives in :mod:`repro.ranges.interval` --
one algebra shared with the value-range analysis; this module re-exports
:class:`Interval`, :class:`Bound` and the infinities for its callers.
"""

from __future__ import annotations

from fractions import Fraction
from typing import FrozenSet, Optional, Sequence, Tuple

from repro.ranges.interval import NEG_INF, POS_INF, Bound, Interval
from repro.ranges.interval import _canonical as _num

__all__ = [
    "Bound",
    "Interval",
    "NEG_INF",
    "POS_INF",
    "banerjee_feasible",
    "direction_term_interval",
    "scaled_range",
]


def scaled_range(coeff: Fraction, lo: int, hi: Optional[int]) -> Interval:
    """Values of ``coeff * v`` for integer ``v in [lo, hi]`` (hi None = inf).

    Empty when hi is not None and hi < lo.
    """
    if coeff == 0:
        return Interval.point(0)
    if hi is not None and hi < lo:
        return Interval.empty_interval()
    coeff = _num(coeff)  # integral coefficients take the int fast path
    low_end = coeff * lo
    if hi is None:
        if coeff > 0:
            return Interval(low_end, POS_INF)
        return Interval(NEG_INF, low_end)
    high_end = coeff * hi
    return Interval(min(low_end, high_end), max(low_end, high_end))


def direction_term_interval(
    a: Fraction, b: Fraction, trip: Optional[int], signs: FrozenSet[int]
) -> Interval:
    """Bounds of ``a*h - b*h'`` under the direction constraint ``signs``.

    ``trip`` is the loop's trip count (``h, h' in [0, trip-1]``), or None
    when unknown/unbounded.  ``signs`` is the allowed sign set of
    ``h' - h`` ({1} = '<', {0} = '=', {-1} = '>').
    """
    upper = None if trip is None else trip - 1
    result = Interval.empty_interval()
    if 0 in signs:
        result = result.union(scaled_range(a - b, 0, upper))
    if 1 in signs:
        # h' = h + d, d >= 1
        h_upper = None if upper is None else upper - 1
        part = scaled_range(a - b, 0, h_upper) + scaled_range(-b, 1, upper)
        result = result.union(part)
    if -1 in signs:
        h_upper = None if upper is None else upper - 1
        part = scaled_range(a - b, 0, h_upper) + scaled_range(a, 1, upper)
        result = result.union(part)
    return result


def banerjee_feasible(
    common: Sequence[Tuple[Fraction, Fraction, Optional[int]]],
    private: Sequence[Tuple[Fraction, Optional[int]]],
    delta: Fraction,
    signs_per_level: Sequence[FrozenSet[int]],
) -> bool:
    """May the equation hold under the given direction vector?

    ``common``: per common loop (a_k, b_k, trip_k).
    ``private``: (coefficient, trip) for loop variables private to one side
    (sign convention: already folded so the equation reads
    ``sum common-terms + sum coeff*v = delta``).
    """
    total = Interval.point(0)
    for (a, b, trip), signs in zip(common, signs_per_level):
        total = total + direction_term_interval(a, b, trip, signs)
        if total.empty:
            return False
    for coeff, trip in private:
        upper = None if trip is None else trip - 1
        total = total + scaled_range(coeff, 0, upper)
        if total.empty:
            return False
    return total.contains(delta)
