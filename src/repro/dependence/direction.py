"""Direction and distance vectors.

A *direction* per loop level is the set of possible signs of ``h2 - h1``
(sink iteration minus source iteration): ``<`` means the source runs in an
earlier iteration.  The classic lattice refines ``*`` (all three) into
``<``, ``=``, ``>`` children.

Representation: a frozenset drawn from {-1, 0, +1} (sign of ``h2 - h1``);
``+1`` prints as ``<`` (source earlier), ``-1`` as ``>``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

LT: FrozenSet[int] = frozenset({1})
EQ: FrozenSet[int] = frozenset({0})
GT: FrozenSet[int] = frozenset({-1})
LE: FrozenSet[int] = frozenset({0, 1})
GE: FrozenSet[int] = frozenset({-1, 0})
NE: FrozenSet[int] = frozenset({-1, 1})
ANY: FrozenSet[int] = frozenset({-1, 0, 1})

_NAMES = {
    LT: "<",
    EQ: "=",
    GT: ">",
    LE: "<=",
    GE: ">=",
    NE: "!=",
    ANY: "*",
    frozenset(): "none",
}


class Direction:
    """Helpers for the per-level sign sets."""

    LT = LT
    EQ = EQ
    GT = GT
    LE = LE
    GE = GE
    NE = NE
    ANY = ANY

    @staticmethod
    def name(signs: FrozenSet[int]) -> str:
        return _NAMES.get(frozenset(signs), "?")


class DirectionVector:
    """One direction per common loop, outermost first."""

    __slots__ = ("elements",)

    def __init__(self, elements: Iterable[FrozenSet[int]]):
        self.elements: Tuple[FrozenSet[int], ...] = tuple(frozenset(e) for e in elements)

    def __len__(self) -> int:
        return len(self.elements)

    def __getitem__(self, index: int) -> FrozenSet[int]:
        return self.elements[index]

    def refine(self, level: int, signs: FrozenSet[int]) -> "DirectionVector":
        out = list(self.elements)
        out[level] = frozenset(out[level] & signs)
        return DirectionVector(out)

    @property
    def is_empty(self) -> bool:
        return any(not e for e in self.elements)

    @property
    def is_exact(self) -> bool:
        """Every level fixed to a single sign."""
        return all(len(e) == 1 for e in self.elements)

    def leading_sign(self) -> Optional[int]:
        """Sign of the first non-'=' level, when determined."""
        for element in self.elements:
            if element == EQ:
                continue
            if len(element) == 1:
                return next(iter(element))
            return None
        return 0

    @property
    def is_plausible(self) -> bool:
        """A dependence from source to sink requires the source not to run
        *after* the sink: lexicographically non-negative direction."""
        for element in self.elements:
            if element == EQ:
                continue
            return 1 in element or 0 in element
        return True

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DirectionVector) and self.elements == other.elements

    def __hash__(self) -> int:
        return hash(self.elements)

    def __repr__(self) -> str:
        return f"({', '.join(Direction.name(e) for e in self.elements)})"

    @staticmethod
    def star(levels: int) -> "DirectionVector":
        return DirectionVector([ANY] * levels)


class DistanceVector:
    """Exact per-level iteration distances ``h2 - h1`` (ints), when known."""

    __slots__ = ("distances",)

    def __init__(self, distances: Sequence[Optional[int]]):
        self.distances: Tuple[Optional[int], ...] = tuple(distances)

    def direction(self) -> DirectionVector:
        out: List[FrozenSet[int]] = []
        for d in self.distances:
            if d is None:
                out.append(ANY)
            elif d > 0:
                out.append(LT)
            elif d < 0:
                out.append(GT)
            else:
                out.append(EQ)
        return DirectionVector(out)

    def __repr__(self) -> str:
        return f"({', '.join('*' if d is None else str(d) for d in self.distances)})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DistanceVector) and self.distances == other.distances

    def __hash__(self) -> int:
        return hash(self.distances)
