"""Loop distribution planning (Kennedy's pi-block algorithm).

Loop distribution -- splitting one loop into several, one per group of
statements -- is the first transformation the paper's introduction names
("loop distribution and loop interchanging ... require analysis of array
subscripts").  The classical legality algorithm:

1. build the statement-level dependence graph of the loop body
   (array dependences from :mod:`repro.dependence.graph`, attributed to
   *statements* = each store together with the loads feeding it through
   same-iteration scalar flow);
2. find its strongly connected components (Tarjan again!) -- each SCC is a
   **pi-block** that must stay in one distributed loop (it contains a
   dependence cycle);
3. emit the pi-blocks in a topological order of the condensation; the
   remaining (loop-independent and forward loop-carried) dependences are
   then respected.

A loop distributes non-trivially iff it has more than one pi-block.  The
classification pays off exactly as in parallelization: periodic/monotonic/
wrap-around subscripts that a linear-only analyzer must treat as '*'
create spurious cycles that fuse everything into one pi-block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.loops import Loop
from repro.core.driver import AnalysisResult
from repro.core.tarjan import tarjan_scrs
from repro.dependence.graph import DependenceGraph, build_dependence_graph
from repro.dependence.testing import RefSite
from repro.ir.instructions import Load, Store
from repro.ir.values import Ref


@dataclass
class Statement:
    """One distributable unit: a store and the loads that feed it."""

    store: RefSite
    loads: Tuple[RefSite, ...] = ()

    @property
    def sites(self) -> Tuple[RefSite, ...]:
        return (self.store,) + self.loads

    def __repr__(self) -> str:
        return f"S({self.store!r})"


@dataclass
class DistributionPlan:
    """Pi-blocks in a legal execution order."""

    loop: str
    pi_blocks: List[List[Statement]] = field(default_factory=list)

    @property
    def distributable(self) -> bool:
        return len(self.pi_blocks) > 1

    def summary(self) -> str:
        lines = [f"loop {self.loop}: {len(self.pi_blocks)} pi-block(s)"]
        for index, block in enumerate(self.pi_blocks):
            members = ", ".join(repr(s.store) for s in block)
            lines.append(f"  pi{index}: {members}")
        return "\n".join(lines)


def _statements_of_loop(analysis: AnalysisResult, loop: Loop) -> List[Statement]:
    """Group each store with the loads that flow into it (same iteration,
    through SSA scalar defs inside the loop)."""
    function = analysis.function
    defs = function.definitions()

    # map: SSA name -> RefSite of the load defining it (inside the loop)
    load_sites: Dict[str, RefSite] = {}
    for label in sorted(loop.body):
        for position, inst in enumerate(function.block(label).instructions):
            if isinstance(inst, Load):
                indices = tuple(inst.indices) if inst.indices is not None else None
                load_sites[inst.result] = RefSite(
                    inst.array, indices, label, position, False
                )

    def reaching_loads(value) -> Set[str]:
        """Loads feeding ``value`` through defs inside the loop."""
        out: Set[str] = set()
        stack = [value]
        seen = set()
        while stack:
            v = stack.pop()
            if not isinstance(v, Ref) or v.name in seen:
                continue
            seen.add(v.name)
            if v.name in load_sites:
                out.add(v.name)
                continue
            entry = defs.get(v.name)
            if entry is None or entry[0] not in loop.body:
                continue
            stack.extend(entry[1].uses())
        return out

    statements: List[Statement] = []
    for label in sorted(loop.body):
        for position, inst in enumerate(function.block(label).instructions):
            if not isinstance(inst, Store):
                continue
            indices = tuple(inst.indices) if inst.indices is not None else None
            store = RefSite(inst.array, indices, label, position, True)
            feeders = set()
            for value in inst.uses():
                feeders |= reaching_loads(value)
            loads = tuple(sorted((load_sites[n] for n in feeders), key=repr))
            statements.append(Statement(store, loads))
    return statements


def plan_distribution(
    analysis: AnalysisResult,
    loop: Loop,
    graph: Optional[DependenceGraph] = None,
) -> DistributionPlan:
    """Compute the pi-block partition of ``loop``'s stores."""
    if graph is None:
        graph = build_dependence_graph(analysis)
    statements = _statements_of_loop(analysis, loop)
    site_owner: Dict[Tuple[str, int], int] = {}
    for index, statement in enumerate(statements):
        for site in statement.sites:
            site_owner[(site.block, site.position)] = index

    # statement dependence edges (within this loop)
    successors: Dict[str, Set[str]] = {str(i): set() for i in range(len(statements))}
    for edge in graph.edges:
        src = site_owner.get((edge.source.block, edge.source.position))
        dst = site_owner.get((edge.sink.block, edge.sink.position))
        if src is None or dst is None or src == dst:
            continue
        if loop.header not in edge.result.common_loops:
            continue
        # dependence source must precede the sink: edge src -> dst
        successors[str(src)].add(str(dst))

    # Tarjan pops SCCs in reverse topological order of the condensation:
    # collecting them in pop order and reversing yields a legal schedule.
    blocks: List[List[Statement]] = []

    def on_scr(members: List[str], _is_cycle: bool) -> None:
        blocks.append([statements[int(m)] for m in sorted(members, key=int)])

    # every successor is a statement index, so the traversal is prefiltered
    tarjan_scrs(
        [str(i) for i in range(len(statements))],
        lambda n: sorted(successors[n]),
        on_scr,
        prefiltered=True,
    )
    blocks.reverse()
    return DistributionPlan(loop.header, blocks)
