"""Dependence testing for the new variable classes (section 6).

* **Wrap-around** subscripts: "the same dependence equation can be
  constructed and solved, but the dependence relation should be flagged as
  holding only after k iterations, the order of the wrap-around variable."
* **Periodic** subscripts: the equation is solved in family-member space;
  an ``=`` solution between members with distinct values translates to a
  ``!=`` loop direction ("j_h = k_h' only when h != h'").
* **Monotonic** subscripts: an ``m = m'`` solution translates to ``=`` for
  strictly monotonic same-member references and to ``<=`` otherwise
  (Figure 10: dependence on B has direction ``(=)``; the flow dependence on
  F has ``(<=)`` and the anti-dependence ``(<)`` -- the ``<`` arises here
  from the intra-iteration plausibility filter).
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Tuple

from repro.core.classes import InductionVariable, Invariant, Monotonic, Periodic, WrapAround
from repro.dependence.direction import ANY, EQ, GE, GT, LE, LT, NE, DirectionVector
from repro.dependence.subscript import SubscriptDescriptor, SubscriptKind
from repro.dependence.testing import DependenceResult
from repro.symbolic.expr import Expr


# ----------------------------------------------------------------------
# wrap-around (section 4.1 + 6)
# ----------------------------------------------------------------------
def test_wraparound(analysis, d_source, d_sink, common, source, sink, source_first):
    from repro.dependence.testing import _dispatch

    holds_after = 0
    stripped_source, k1 = _strip_wraparound(analysis, d_source)
    stripped_sink, k2 = _strip_wraparound(analysis, d_sink)
    holds_after = max(k1, k2)
    if stripped_source is None or stripped_sink is None:
        return DependenceResult.conservative(
            common, "wrap-around with unknown inner class", cause="wraparound"
        )
    result = _dispatch(
        analysis, stripped_source, stripped_sink, common, source, sink, source_first
    )
    result.holds_after = max(result.holds_after, holds_after)
    if result.dependent and result.cause is None:
        result.cause = "wraparound"
    if holds_after:
        result.notes.append(
            f"valid after the first {holds_after} iteration(s); peel to be exact"
        )
        result.exact = False
    return result


def _strip_wraparound(
    analysis, descriptor: SubscriptDescriptor
) -> Tuple[Optional[SubscriptDescriptor], int]:
    """Replace a wrap-around descriptor by its steady-state inner form."""
    if descriptor.kind is not SubscriptKind.WRAPAROUND:
        return descriptor, 0
    cls = descriptor.cls
    assert isinstance(cls, WrapAround)
    inner = cls.inner
    if isinstance(inner, InductionVariable) and inner.is_linear:
        from repro.dependence.subscript import _resolve_affine

        step = inner.form.coeff(1)
        if not step.is_constant:
            return None, cls.order
        resolved = _resolve_affine(analysis, inner.form.coeff(0), set(descriptor.loop_chain))
        if resolved is None:
            const, coeffs = inner.form.coeff(0), {}
        else:
            const, coeffs = resolved
        coeffs = dict(coeffs)
        coeffs[cls.loop] = coeffs.get(cls.loop, Fraction(0)) + step.constant_value()
        return (
            SubscriptDescriptor(
                SubscriptKind.LINEAR, descriptor.loop_chain, const=const, coeffs=coeffs
            ),
            cls.order,
        )
    if isinstance(inner, Invariant):
        return (
            SubscriptDescriptor(
                SubscriptKind.LINEAR, descriptor.loop_chain, const=inner.expr
            ),
            cls.order,
        )
    if isinstance(inner, (Periodic, Monotonic)):
        kind = (
            SubscriptKind.PERIODIC if isinstance(inner, Periodic) else SubscriptKind.MONOTONIC
        )
        return (
            SubscriptDescriptor(
                kind,
                descriptor.loop_chain,
                cls=inner,
                base_name=descriptor.base_name,
            ),
            cls.order,
        )
    return None, cls.order


# ----------------------------------------------------------------------
# periodic (section 4.2 + 6)
# ----------------------------------------------------------------------
def _provably_different(a: Expr, b: Expr) -> bool:
    difference = a - b
    return difference.is_constant and not difference.is_zero


def test_periodic(d_source, d_sink, common) -> DependenceResult:
    source_cls = d_source.cls
    sink_cls = d_sink.cls
    assert isinstance(source_cls, Periodic) and isinstance(sink_cls, Periodic)
    if source_cls.loop != sink_cls.loop or source_cls.loop not in common:
        return DependenceResult.conservative(
            common, "periodic in different loops", cause="periodic"
        )
    if source_cls.period != sink_cls.period:
        return DependenceResult.conservative(
            common, "different periods", cause="periodic"
        )
    period = source_cls.period
    level = common.index(source_cls.loop)

    # offsets (h' - h) mod period at which the values may collide
    possible = set()
    for r1 in range(period):
        for r2 in range(period):
            if not _provably_different(source_cls.values[r1], sink_cls.values[r2]):
                possible.add((r2 - r1) % period)
    if not possible:
        return DependenceResult.independent(common, "periodic values never collide")

    elements = [ANY] * len(common)
    notes = [f"collision offsets mod {period}: {sorted(possible)}"]
    if 0 not in possible:
        elements[level] = NE
        notes.append("periodic '=' solution translates to '!=' loop direction")
        exact = True
    else:
        exact = False
    return DependenceResult(
        True, common, [DirectionVector(elements)], exact=exact, notes=notes,
        cause="periodic",
    )


# ----------------------------------------------------------------------
# monotonic (section 4.4 + 6)
# ----------------------------------------------------------------------
def _site_strict(analysis, cls: Monotonic, site) -> bool:
    """Section 5.4's refinement: a use site is *effectively strict* when a
    strictly monotonic assignment of the same family postdominates it ("any
    uses of k2 in this region are post-dominated by the strictly monotonic
    assignment") -- between two executions of the site, the family value
    must strictly advance."""
    if cls.strict:
        return True
    if analysis is None or site is None or cls.family is None:
        return False
    summary = analysis.loops.get(cls.loop)
    if summary is None:
        return False
    postdom = analysis.postdominators()
    for name, other in summary.classifications.items():
        if not isinstance(other, Monotonic):
            continue
        if other.family != cls.family or not other.strict:
            continue
        defsite = analysis.definition_site(name)
        if defsite is None:
            continue
        def_block, def_position = defsite
        if def_block == site.block:
            if def_position > site.position:
                return True
        else:
            try:
                if postdom.dominates(def_block, site.block):
                    return True
            except Exception:
                continue
    return False


def test_monotonic(
    d_source, d_sink, common, source_first, analysis=None, source_site=None
) -> DependenceResult:
    source_cls = d_source.cls
    sink_cls = d_sink.cls
    assert isinstance(source_cls, Monotonic) and isinstance(sink_cls, Monotonic)
    if source_cls.loop != sink_cls.loop or source_cls.loop not in common:
        return DependenceResult.conservative(
            common, "monotonic in different loops", cause="monotonic"
        )
    if source_cls.direction != sink_cls.direction:
        return DependenceResult.conservative(
            common, "opposite monotonic directions", cause="monotonic"
        )
    same_family = (
        source_cls.family is not None and source_cls.family == sink_cls.family
    )
    if not same_family:
        return DependenceResult.conservative(
            common, "unrelated monotonic variables", cause="monotonic"
        )

    level = common.index(source_cls.loop)
    elements = [ANY] * len(common)
    notes: List[str] = []

    same_member = (
        d_source.base_name is not None and d_source.base_name == d_sink.base_name
    )
    if same_member and (
        (source_cls.strict and sink_cls.strict)
        or _site_strict(analysis, source_cls, source_site)
    ):
        # "k3 is monotonically strictly increasing ... the dependence due to
        # the assignment and reuse of array B will have direction (=)";
        # the section 5.4 refinement extends this to uses postdominated by
        # the strict assignment (e.g. C[k2] inside the conditional)
        elements[level] = EQ
        if not source_cls.strict:
            notes.append("strict at this site (postdominated by the strict assignment)")
        else:
            notes.append("strictly monotonic: solutions only at equal iterations")
        exact = True
    elif source_cls.direction > 0:
        # "since k2 and k4 are only monotonic, the flow dependence due to
        # array F has dependence direction (<=)"
        elements[level] = LE
        notes.append("monotonic increasing: dependence direction (<=)")
        exact = False
    else:
        elements[level] = GE
        notes.append("monotonic decreasing: dependence direction (>=)")
        exact = False
    return DependenceResult(
        True, common, [DirectionVector(elements)], exact=exact, notes=notes,
        cause="monotonic",
    )
