"""The GCD test.

A linear diophantine equation ``sum c_i x_i = delta`` has integer solutions
iff ``gcd(c_i) | delta``.  Applied per direction vector: under an ``=``
constraint the pair contributes one coefficient ``a - b``; otherwise ``a``
and ``b`` enter separately.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import FrozenSet, Optional, Sequence, Tuple


def _to_int_coeffs(values: Sequence[Fraction]) -> Tuple[Tuple[int, ...], int]:
    """Scale rationals to a common integer basis; returns (ints, scale)."""
    lcm = 1
    for v in values:
        lcm = lcm * v.denominator // gcd(lcm, v.denominator)
    return tuple(int(v * lcm) for v in values), lcm


def gcd_feasible(
    common: Sequence[Tuple[Fraction, Fraction]],
    private: Sequence[Fraction],
    delta: Fraction,
    signs_per_level: Sequence[FrozenSet[int]],
) -> bool:
    """May integer solutions exist (ignoring bounds)?"""
    coeffs = []
    for (a, b), signs in zip(common, signs_per_level):
        if signs == frozenset({0}):
            coeffs.append(a - b)
        else:
            coeffs.append(a)
            coeffs.append(-b)
    coeffs.extend(private)

    scaled, lcm = _to_int_coeffs(list(coeffs) + [delta])
    *int_coeffs, int_delta = scaled
    g = 0
    for c in int_coeffs:
        g = gcd(g, abs(c))
    if g == 0:
        return int_delta == 0
    return int_delta % g == 0
