"""The loop dependence graph.

Collects every subscripted array reference in a function, tests all pairs
that can conflict (at least one write, same array), and records flow, anti
and output dependence edges with their direction vectors -- "generating
more precise dependence graphs and allowing more aggressive optimization"
(section 6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.driver import AnalysisResult
from repro.dependence.testing import DependenceResult, RefSite, test_dependence
from repro.ir.function import Function
from repro.ir.instructions import Load, Store
from repro.obs import metrics as _metrics
from repro.obs.trace import traced
from repro.resilience.faultinject import fault_point


class DependenceKind(enum.Enum):
    FLOW = "flow"  # write -> read
    ANTI = "anti"  # read -> write
    OUTPUT = "output"  # write -> write
    INPUT = "input"  # read -> read (only on request)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class DependenceEdge:
    kind: DependenceKind
    source: RefSite
    sink: RefSite
    result: DependenceResult

    def __repr__(self) -> str:
        return f"{self.kind.value}: {self.source} -> {self.sink} {self.result!r}"


@dataclass
class DependenceGraph:
    refs: List[RefSite]
    edges: List[DependenceEdge] = field(default_factory=list)

    def edges_for_array(self, array: str) -> List[DependenceEdge]:
        return [e for e in self.edges if e.source.array == array]

    def edges_of_kind(self, kind: DependenceKind) -> List[DependenceEdge]:
        return [e for e in self.edges if e.kind is kind]

    def has_loop_carried(self) -> bool:
        from repro.dependence.direction import EQ

        for edge in self.edges:
            for vector in edge.result.directions:
                if not vector.elements:
                    continue
                if any(element != EQ for element in vector.elements):
                    return True
            if not edge.result.directions and edge.result.dependent:
                return True
        return False

    def summary(self) -> str:
        lines = [f"{len(self.refs)} references, {len(self.edges)} dependence edges"]
        for edge in self.edges:
            lines.append(f"  {edge!r}")
        return "\n".join(lines)


def collect_references(function: Function) -> List[RefSite]:
    """All subscripted (and scalar-memory) references, in program order."""
    refs: List[RefSite] = []
    for block in function:
        for position, inst in enumerate(block.instructions):
            if isinstance(inst, Load):
                indices = tuple(inst.indices) if inst.indices is not None else None
                refs.append(RefSite(inst.array, indices, block.label, position, False))
            elif isinstance(inst, Store):
                indices = tuple(inst.indices) if inst.indices is not None else None
                refs.append(RefSite(inst.array, indices, block.label, position, True))
    return refs


@traced("dependence.graph")
def build_dependence_graph(
    analysis: AnalysisResult,
    include_input: bool = False,
) -> DependenceGraph:
    """Test all conflicting reference pairs of the analyzed function."""
    fault_point("dependence.graph")
    function = analysis.function
    refs = collect_references(function)
    graph = DependenceGraph(refs)

    for i, a in enumerate(refs):
        for b in refs[i:]:
            if a.array != b.array:
                continue
            if not (a.is_write or b.is_write) and not include_input:
                continue
            _metrics.inc("dependence.pairs")
            for source, sink in _orientations(a, b):
                order = _intra_iteration_order(analysis, source, sink)
                result = test_dependence(analysis, source, sink, source_first=order)
                if result.dependent:
                    graph.edges.append(
                        DependenceEdge(_kind_of(source, sink), source, sink, result)
                    )
    return graph


def _orientations(a: RefSite, b: RefSite):
    if a == b:
        return [(a, b)]
    return [(a, b), (b, a)]


def _kind_of(source: RefSite, sink: RefSite) -> DependenceKind:
    if source.is_write and sink.is_write:
        return DependenceKind.OUTPUT
    if source.is_write:
        return DependenceKind.FLOW
    if sink.is_write:
        return DependenceKind.ANTI
    return DependenceKind.INPUT


def _intra_iteration_order(
    analysis: AnalysisResult, source: RefSite, sink: RefSite
) -> Optional[bool]:
    """Does the source site execute before the sink site within one
    iteration of their common loops?  None when undecidable (e.g. the two
    sites sit on exclusive branches)."""
    if source.block == sink.block:
        if source.position == sink.position:
            return False  # the very same access
        return source.position < sink.position
    domtree = analysis.domtree
    try:
        if domtree.dominates(source.block, sink.block):
            return True
        if domtree.dominates(sink.block, source.block):
            return False
    except Exception:
        return None
    return None
