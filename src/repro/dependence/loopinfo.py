"""Loop-level conclusions from the dependence graph.

The paper's motivation: "advanced loop transformations (such as loop
distribution and loop interchanging) ... require analysis of array
subscripts to determine the data dependence relations in loops"
(section 1).  This module draws the standard conclusions:

* **parallelizable (DOALL)**: a loop is parallelizable when no dependence
  is carried by it — every direction vector is '=' at its level, or the
  dependence is already carried by an outer level;
* **interchange legality** for a pair of adjacent levels: interchanging is
  illegal iff some direction vector has the form (…, <, >, …) at exactly
  those levels with '=' further out (the interchange would reverse it);
* per-loop lists of the carried dependence edges (for diagnostics).

Wrap-around dependences flagged ``holds_after > 0`` are treated as real
(sound); a client that peels can re-run the analysis on the peeled loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.driver import AnalysisResult
from repro.dependence.direction import EQ, DirectionVector
from repro.dependence.graph import DependenceEdge, DependenceGraph, build_dependence_graph


@dataclass
class LoopParallelism:
    header: str
    parallelizable: bool
    carried: List[DependenceEdge] = field(default_factory=list)
    #: structured why-not-DOALL chain, one
    #: :class:`~repro.obs.attribution.BlockReason` per carried edge
    #: (always non-empty for a serial verdict)
    blockers: List = field(default_factory=list)

    def __repr__(self) -> str:
        verdict = "DOALL" if self.parallelizable else "serial"
        return f"<{self.header}: {verdict}, {len(self.carried)} carried deps>"


def _carried_at_level(vector: DirectionVector, level: int) -> bool:
    """May this direction vector represent a dependence carried by
    ``level``?  Carried there = '=' on all outer levels and a '<'
    possibility at the level itself."""
    if level >= len(vector.elements):
        return False
    for outer in vector.elements[:level]:
        if 0 not in outer:
            return False  # always carried further out
    return 1 in vector.elements[level] or -1 in vector.elements[level]


def edge_carried_by(edge: DependenceEdge, header: str) -> bool:
    """Is the dependence (possibly) carried by loop ``header``?"""
    common = edge.result.common_loops
    if header not in common:
        return False
    level = common.index(header)
    if not edge.result.directions:
        return True  # conservative: no direction information
    return any(_carried_at_level(v, level) for v in edge.result.directions)


def analyze_parallelism(
    analysis: AnalysisResult, graph: Optional[DependenceGraph] = None
) -> Dict[str, LoopParallelism]:
    """DOALL verdict for every loop of the function."""
    if graph is None:
        graph = build_dependence_graph(analysis)
    from repro.obs.attribution import why_not_doall

    ranges = getattr(analysis, "ranges", None)
    verdicts: Dict[str, LoopParallelism] = {}
    for header in analysis.loops:
        carried = [e for e in graph.edges if edge_carried_by(e, header)]
        parallel = not carried
        if not parallel and ranges is not None:
            # a loop that provably runs at most once cannot carry a
            # dependence: there is no second iteration to depend on
            bound = ranges.trip_upper_bound(header)
            if bound is not None and bound <= 1:
                parallel = True
                carried = []
        blockers = [] if parallel else why_not_doall(analysis, header, carried)
        verdicts[header] = LoopParallelism(header, parallel, carried, blockers)
    return verdicts


@dataclass
class InterchangeVerdict:
    outer: str
    inner: str
    legal: bool
    blocking: List[DependenceEdge] = field(default_factory=list)


def _blocks_interchange(vector: DirectionVector, outer_level: int) -> bool:
    """A (<, >) pattern at (outer, inner) with '=' possible further out
    becomes (>, <) after interchange: lexicographically negative (illegal).
    """
    inner_level = outer_level + 1
    if inner_level >= len(vector.elements):
        return False
    for further_out in vector.elements[:outer_level]:
        if 0 not in further_out:
            return False  # carried further out: unaffected by interchange
    return 1 in vector.elements[outer_level] and -1 in vector.elements[inner_level]


def check_interchange(
    analysis: AnalysisResult,
    outer: str,
    inner: str,
    graph: Optional[DependenceGraph] = None,
) -> InterchangeVerdict:
    """Legality of interchanging the (perfectly nested) ``outer``/``inner``
    pair, by the classical direction-vector criterion.

    This is exactly the transformation the paper's L23/L24 discussion is
    about: the (<, >) vector of the triangular loop blocks interchange.
    """
    if graph is None:
        graph = build_dependence_graph(analysis)
    blocking: List[DependenceEdge] = []
    for edge in graph.edges:
        common = edge.result.common_loops
        if outer not in common or inner not in common:
            continue
        outer_level = common.index(outer)
        if common.index(inner) != outer_level + 1:
            continue
        if not edge.result.directions:
            blocking.append(edge)  # conservative
            continue
        if any(_blocks_interchange(v, outer_level) for v in edge.result.directions):
            blocking.append(edge)
    return InterchangeVerdict(outer, inner, not blocking, blocking)
