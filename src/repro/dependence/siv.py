"""Exact single-index-variable (SIV) tests [GKT91].

When the dependence equation involves exactly one common loop (and no
private variables), the classic special cases give exact answers:

* **strong SIV** (``a == b != 0``): the distance is ``(h' - h) = -delta/a``;
  integer and within the trip count, or independent.
* **weak-zero SIV** (``b == 0``): the source iteration is pinned to
  ``h = delta/a``; dependence to every sink iteration.
* **weak-crossing SIV** (``b == -a``): ``h + h' = delta/a``; solutions mirror
  around the crossing point.

Results feed the exact distance/direction of
:class:`repro.dependence.testing.DependenceResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Optional

from repro.dependence.direction import (
    ANY,
    EQ,
    GT,
    LT,
    NE,
    DirectionVector,
    DistanceVector,
)


@dataclass
class SIVResult:
    independent: bool
    directions: Optional[List[DirectionVector]] = None  # length-1 vectors
    distance: Optional[int] = None  # h' - h when exact
    note: str = ""


def strong_siv(a: Fraction, delta: Fraction, trip: Optional[int]) -> SIVResult:
    """``a*h - a*h' = delta``."""
    d = -delta / a
    if d.denominator != 1:
        return SIVResult(True, note="non-integer distance")
    distance = int(d)
    if trip is not None and abs(distance) >= trip:
        return SIVResult(True, note="distance exceeds trip count")
    if distance > 0:
        direction = LT
    elif distance < 0:
        direction = GT
    else:
        direction = EQ
    return SIVResult(
        False, [DirectionVector([direction])], distance, note=f"strong SIV distance {distance}"
    )


def weak_zero_siv(
    a: Fraction, delta: Fraction, trip: Optional[int], zero_side_is_sink: bool
) -> SIVResult:
    """One coefficient is zero: the other side's iteration is pinned."""
    h = delta / a
    if h.denominator != 1:
        return SIVResult(True, note="non-integer pinned iteration")
    pinned = int(h)
    if pinned < 0 or (trip is not None and pinned >= trip):
        return SIVResult(True, note="pinned iteration outside loop")
    # the pinned side runs at one iteration; the other side at any
    return SIVResult(False, [DirectionVector([ANY])], note=f"weak-zero SIV at h={pinned}")


def weak_crossing_siv(a: Fraction, delta: Fraction, trip: Optional[int]) -> SIVResult:
    """``b == -a``: ``h + h' = delta/a``."""
    total = delta / a
    # h + h' must be a non-negative integer; crossing at total/2
    if total.denominator != 1:
        return SIVResult(True, note="non-integer crossing sum")
    crossing_sum = int(total)
    if crossing_sum < 0:
        return SIVResult(True, note="crossing before the loop")
    if trip is not None and crossing_sum > 2 * (trip - 1):
        return SIVResult(True, note="crossing after the loop")
    return SIVResult(False, [DirectionVector([ANY])], note="weak-crossing SIV")
