"""Subscript descriptors.

"The algorithm used to classify variables will actually classify each
subexpression as one of the generalized variable types.  Thus, each
subscript expression will be classified as an induction expression,
monotonic expression, etc." (section 6).

:func:`describe_subscript` turns a subscript operand (at a specific array
reference site) into one of:

* ``LINEAR``: an affine form ``const + sum coeff[L] * h_L`` over the
  counters of the enclosing loops, with exact rational coefficients --
  the input to the classical dependence solvers;
* ``PERIODIC`` / ``MONOTONIC`` / ``WRAPAROUND``: ``scale * v + offset``
  where ``v`` carries that classification -- the inputs to the section-6
  translations;
* ``UNKNOWN``: anything else (coupled nonlinear subscripts, loads, ...).

Polynomial/geometric IVs with a provable direction degrade gracefully to
``MONOTONIC`` (the paper: "there are currently few dependence testing
algorithms that can take advantage of this additional knowledge").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.core.algebra import iv_is_strict
from repro.core.classes import (
    BranchDependent,
    Classification,
    InductionVariable,
    Invariant,
    Monotonic,
    Periodic,
    Unknown,
    WrapAround,
)
from repro.core.driver import AnalysisResult
from repro.ir.values import Const, Ref, Value
from repro.symbolic.expr import Expr


class SubscriptKind(enum.Enum):
    LINEAR = "linear"
    PERIODIC = "periodic"
    MONOTONIC = "monotonic"
    WRAPAROUND = "wraparound"
    UNKNOWN = "unknown"


@dataclass
class SubscriptDescriptor:
    """Classified subscript at one reference site."""

    kind: SubscriptKind
    loop_chain: Tuple[str, ...]  # enclosing loops, outermost first
    const: Expr = field(default_factory=Expr.zero)
    coeffs: Dict[str, Fraction] = field(default_factory=dict)  # loop -> coeff
    # non-linear kinds: subscript = scale * variable + offset
    cls: Optional[Classification] = None
    base_name: Optional[str] = None
    scale: Fraction = Fraction(1)
    offset: Expr = field(default_factory=Expr.zero)
    reason: str = ""

    @property
    def is_ziv(self) -> bool:
        return self.kind is SubscriptKind.LINEAR and not any(self.coeffs.values())

    def coeff(self, loop: str) -> Fraction:
        return self.coeffs.get(loop, Fraction(0))

    def __repr__(self) -> str:
        if self.kind is SubscriptKind.LINEAR:
            parts = [str(self.const)]
            for loop, coeff in self.coeffs.items():
                if coeff:
                    parts.append(f"{coeff}*h[{loop}]")
            return f"linear({' + '.join(parts)})"
        return f"{self.kind.value}({self.scale}*{self.base_name} + {self.offset})"


def loop_chain_of(result: AnalysisResult, block: str) -> Tuple[str, ...]:
    """Headers of the loops enclosing ``block``, outermost first."""
    chain: List[str] = []
    loop = result.nest.innermost(block)
    while loop is not None:
        chain.append(loop.header)
        loop = loop.parent
    chain.reverse()
    return tuple(chain)


def describe_subscript(
    result: AnalysisResult, value: Value, block: str
) -> SubscriptDescriptor:
    """Classify the subscript ``value`` used at a reference in ``block``."""
    chain = loop_chain_of(result, block)
    if isinstance(value, Const):
        return SubscriptDescriptor(
            SubscriptKind.LINEAR, chain, const=Expr.const(value.value)
        )
    if not isinstance(value, Ref):
        return SubscriptDescriptor(SubscriptKind.UNKNOWN, chain, reason="bad operand")

    linear = _resolve_affine(result, Expr.sym(value.name), set(chain))
    if linear is not None:
        const, coeffs = linear
        return SubscriptDescriptor(SubscriptKind.LINEAR, chain, const=const, coeffs=coeffs)

    special = _resolve_special(result, value.name, chain)
    if special is not None:
        return special
    return SubscriptDescriptor(
        SubscriptKind.UNKNOWN, chain, base_name=value.name, reason="unclassifiable subscript"
    )


def _resolve_affine(
    result: AnalysisResult, expr: Expr, loops: set, depth: int = 0
) -> Optional[Tuple[Expr, Dict[str, Fraction]]]:
    """Rewrite ``expr`` as ``const + sum coeff[L]*h_L`` with constant coeffs.

    Symbols classified as linear IVs of enclosing loops are expanded as
    ``init + step*h``; their inits recurse (multi-loop IVs), their steps
    must resolve to rational constants (a step varying in an outer loop
    makes the subscript bilinear -- not affine -- and fails here).
    """
    if depth > 16:
        return None
    affine = expr.as_affine()
    if affine is None:
        return None
    const_part, sym_coeffs = affine
    const = Expr.const(const_part)
    coeffs: Dict[str, Fraction] = {}
    for symbol, factor in sym_coeffs.items():
        cls = result.classification_of(symbol)
        if isinstance(cls, Invariant):
            if cls.expr == Expr.sym(symbol):
                const = const + Expr.sym(symbol) * factor
            else:
                inner = _resolve_affine(result, cls.expr, loops, depth + 1)
                if inner is None:
                    return None
                inner_const, inner_coeffs = inner
                const = const + inner_const * factor
                for loop, coeff in inner_coeffs.items():
                    coeffs[loop] = coeffs.get(loop, Fraction(0)) + coeff * factor
        elif isinstance(cls, InductionVariable) and cls.is_linear and cls.loop in loops:
            step = cls.form.coeff(1)
            if not step.is_constant:
                return None
            init = _resolve_affine(result, cls.form.coeff(0), loops, depth + 1)
            if init is None:
                return None
            init_const, init_coeffs = init
            const = const + init_const * factor
            for loop, coeff in init_coeffs.items():
                coeffs[loop] = coeffs.get(loop, Fraction(0)) + coeff * factor
            coeffs[cls.loop] = coeffs.get(cls.loop, Fraction(0)) + step.constant_value() * factor
        else:
            return None
    return const, coeffs


def _resolve_special(
    result: AnalysisResult, name: str, chain: Tuple[str, ...]
) -> Optional[SubscriptDescriptor]:
    """``scale * v + offset`` where ``v`` is periodic/monotonic/wrap-around
    (or a directionally-monotonic nonlinear IV)."""
    cls = result.classification_of(name)
    scale = Fraction(1)
    offset = Expr.zero()
    base = name

    # one level of affine wrapping: the subscript may be e.g. ``2*j`` (L22)
    if isinstance(cls, Invariant) or isinstance(cls, Unknown):
        return None
    if isinstance(cls, InductionVariable):
        direction = cls.direction()
        if direction in (1, -1):
            # the degraded view of a nonlinear IV: its own name is the
            # family (one SSA name always denotes one value per iteration)
            mono = Monotonic(cls.loop, direction, iv_is_strict(cls), family=name)
            return SubscriptDescriptor(
                SubscriptKind.MONOTONIC,
                chain,
                cls=mono,
                base_name=base,
                scale=scale,
                offset=offset,
            )
        return None
    if isinstance(cls, BranchDependent):
        # the degraded view of a branch-dependent sequence: when every
        # per-path step agrees in sign it is still (strictly) monotonic
        mono = cls.as_monotonic()
        if mono is None:
            return None
        if mono.family is None:
            mono = Monotonic(mono.loop, mono.direction, mono.strict, init=mono.init, family=name)
        return SubscriptDescriptor(
            SubscriptKind.MONOTONIC, chain, cls=mono, base_name=base, scale=scale, offset=offset
        )
    if isinstance(cls, Periodic):
        return SubscriptDescriptor(
            SubscriptKind.PERIODIC, chain, cls=cls, base_name=base, scale=scale, offset=offset
        )
    if isinstance(cls, Monotonic):
        return SubscriptDescriptor(
            SubscriptKind.MONOTONIC, chain, cls=cls, base_name=base, scale=scale, offset=offset
        )
    if isinstance(cls, WrapAround):
        return SubscriptDescriptor(
            SubscriptKind.WRAPAROUND, chain, cls=cls, base_name=base, scale=scale, offset=offset
        )
    return None
