"""The dependence-testing driver (section 6).

``test_dependence(analysis, source, sink)`` decides whether the memory
reference ``source`` may conflict with ``sink`` on a later (or equal)
execution, and with which direction vectors over their common loops.

The dependence equation is built from the classified subscripts: for linear
subscripts ``sum_k a_k h_k - sum_k b_k h'_k = delta`` with ``delta`` the
difference of the invariant parts; the classic battery (ZIV, exact SIV
cases, GCD, Banerjee bounds under a hierarchy of direction vectors) then
applies.  Periodic / monotonic / wrap-around subscripts take the translated
paths of :mod:`repro.dependence.extended`.

Soundness convention: ``dependent=False`` is a *proof* of independence;
``dependent=True`` with ``exact=False`` merely means "could not disprove".
Direction vectors are filtered to those plausible for the source-to-sink
orientation (lexicographically forward; the all-``=`` vector only when the
source executes before the sink inside one iteration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.driver import AnalysisResult
from repro.dependence.banerjee import banerjee_feasible
from repro.obs.trace import traced
from repro.dependence.direction import (
    ANY,
    EQ,
    GT,
    LT,
    DirectionVector,
    DistanceVector,
)
from repro.dependence.gcd import gcd_feasible
from repro.dependence.siv import strong_siv, weak_crossing_siv, weak_zero_siv
from repro.dependence.subscript import (
    SubscriptDescriptor,
    SubscriptKind,
    describe_subscript,
)
from repro.ir.values import Value

MAX_ENUMERATED_LEVELS = 4


@dataclass(frozen=True)
class RefSite:
    """One static array reference.  ``indices`` is None for scalar memory,
    otherwise one subscript value per dimension."""

    array: str
    indices: Optional[Tuple[Value, ...]]
    block: str
    position: int
    is_write: bool

    def __repr__(self) -> str:
        kind = "W" if self.is_write else "R"
        return f"{kind}:{self.array}@{self.block}:{self.position}"


@dataclass
class DependenceResult:
    """Outcome of one source-to-sink dependence test."""

    dependent: bool
    common_loops: Tuple[str, ...] = ()
    directions: List[DirectionVector] = field(default_factory=list)
    distance: Optional[DistanceVector] = None
    holds_after: int = 0  # wrap-around: valid only after this many iterations
    exact: bool = False
    notes: List[str] = field(default_factory=list)
    #: why-not-DOALL attribution slug (see ``repro.obs.attribution``):
    #: which decision site failed to disprove this dependence
    cause: Optional[str] = None

    @staticmethod
    def independent(common: Tuple[str, ...] = (), note: str = "") -> "DependenceResult":
        return DependenceResult(False, common, [], exact=True, notes=[note] if note else [])

    @staticmethod
    def conservative(
        common: Tuple[str, ...], note: str, cause: str = "no-direction-info"
    ) -> "DependenceResult":
        return DependenceResult(
            True,
            common,
            [DirectionVector.star(len(common))],
            exact=False,
            notes=[note],
            cause=cause,
        )

    def __repr__(self) -> str:
        if not self.dependent:
            return "independent"
        dirs = ", ".join(map(repr, self.directions))
        extra = f" after {self.holds_after} iters" if self.holds_after else ""
        return f"dependent[{dirs}]{extra}"


def common_loop_prefix(
    analysis: AnalysisResult, block_a: str, block_b: str
) -> Tuple[str, ...]:
    from repro.dependence.subscript import loop_chain_of

    chain_a = loop_chain_of(analysis, block_a)
    chain_b = loop_chain_of(analysis, block_b)
    common: List[str] = []
    for a, b in zip(chain_a, chain_b):
        if a != b:
            break
        common.append(a)
    return tuple(common)


@traced("dependence.test")
def test_dependence(
    analysis: AnalysisResult,
    source: RefSite,
    sink: RefSite,
    source_first: Optional[bool] = None,
) -> DependenceResult:
    """May ``sink`` touch the same element as an earlier-or-equal ``source``?

    ``source_first``: whether the source site executes before the sink site
    within a single iteration of their common loops (decides whether the
    all-``=`` direction is plausible).  ``None`` keeps it conservatively.
    """
    if source.array != sink.array:
        return DependenceResult.independent(note="different arrays")
    common = common_loop_prefix(analysis, source.block, sink.block)
    if source.indices is None or sink.indices is None:
        result = DependenceResult.conservative(
            common, "unsubscripted reference", cause="unsubscripted"
        )
        return _filter_plausible(result, source_first)
    if len(source.indices) != len(sink.indices):
        result = DependenceResult.conservative(
            common, "rank mismatch", cause="rank-mismatch"
        )
        return _filter_plausible(result, source_first)

    # subscript-by-subscript: each dimension constrains the same iteration
    # pair, so the results intersect (independence in any dimension proves
    # independence overall)
    combined: Optional[DependenceResult] = None
    for src_index, sink_index in zip(source.indices, sink.indices):
        d_source = describe_subscript(analysis, src_index, source.block)
        d_sink = describe_subscript(analysis, sink_index, sink.block)
        result = _dispatch(analysis, d_source, d_sink, common, source, sink, source_first)
        if not result.dependent:
            return result
        combined = result if combined is None else _intersect(combined, result)
        if not combined.dependent:
            return combined
    assert combined is not None
    return _filter_plausible(combined, source_first)


def _dispatch(
    analysis: AnalysisResult,
    d_source: SubscriptDescriptor,
    d_sink: SubscriptDescriptor,
    common: Tuple[str, ...],
    source: RefSite,
    sink: RefSite,
    source_first: Optional[bool],
) -> DependenceResult:
    from repro.dependence import extended

    kinds = (d_source.kind, d_sink.kind)
    if SubscriptKind.WRAPAROUND in kinds:
        return extended.test_wraparound(
            analysis, d_source, d_sink, common, source, sink, source_first
        )
    if kinds == (SubscriptKind.LINEAR, SubscriptKind.LINEAR):
        return solve_linear(analysis, d_source, d_sink, common)
    if kinds == (SubscriptKind.PERIODIC, SubscriptKind.PERIODIC):
        return extended.test_periodic(d_source, d_sink, common)
    if kinds == (SubscriptKind.MONOTONIC, SubscriptKind.MONOTONIC):
        return extended.test_monotonic(
            d_source, d_sink, common, source_first,
            analysis=analysis, source_site=source,
        )
    note = f"no test for {kinds[0].value} vs {kinds[1].value}"
    reasons = [
        d.reason
        for d in (d_source, d_sink)
        if d.kind is SubscriptKind.UNKNOWN and d.reason
    ]
    if reasons:
        note += " (" + "; ".join(dict.fromkeys(reasons)) + ")"
    cause = "non-affine" if SubscriptKind.UNKNOWN in kinds else "mixed-kinds"
    return DependenceResult.conservative(common, note, cause=cause)


# ----------------------------------------------------------------------
# linear solving
# ----------------------------------------------------------------------
def solve_linear(
    analysis: AnalysisResult,
    d_source: SubscriptDescriptor,
    d_sink: SubscriptDescriptor,
    common: Tuple[str, ...],
    holds_after: int = 0,
) -> DependenceResult:
    delta_expr = d_sink.const - d_source.const
    ranges = getattr(analysis, "ranges", None)
    used_range_bound = False
    trips: Dict[str, Optional[int]] = {}
    for header in set(common) | set(d_source.coeffs) | set(d_sink.coeffs):
        summary = analysis.loops.get(header)
        trips[header] = summary.trip.constant() if summary is not None else None
        if trips[header] is None and ranges is not None:
            # a symbolic trip count with a known finite range: any upper
            # bound is sound here (iteration variables span [0, trips-1],
            # and a superset of that span can only hide independence, not
            # fabricate it)
            bound = ranges.trip_upper_bound(header)
            if bound is not None:
                trips[header] = bound
                used_range_bound = True

    # private loops (not common to both references)
    private: List[Tuple[Fraction, Optional[int]]] = []
    for header, coeff in d_source.coeffs.items():
        if header not in common and coeff:
            private.append((coeff, trips.get(header)))
    for header, coeff in d_sink.coeffs.items():
        if header not in common and coeff:
            private.append((-coeff, trips.get(header)))

    pairs = [(d_source.coeff(h), d_sink.coeff(h), trips.get(h)) for h in common]

    def annotate(result: DependenceResult) -> DependenceResult:
        if used_range_bound:
            result.notes.append("trip bounds tightened by value ranges")
        return result

    if not delta_expr.is_constant:
        if delta_expr.is_zero:
            delta = Fraction(0)
        else:
            result = DependenceResult.conservative(
                common, "symbolic constant difference", cause="symbolic-delta"
            )
            result.holds_after = holds_after
            return result
    else:
        delta = delta_expr.constant_value()

    active = [i for i, (a, b, _t) in enumerate(pairs) if a or b]

    # ZIV
    if not active and not private:
        if delta == 0:
            return DependenceResult(
                True,
                common,
                [DirectionVector.star(len(common))],
                distance=DistanceVector([None] * len(common)),
                exact=True,
                holds_after=holds_after,
                notes=["ZIV: always the same element"],
                cause="ziv",
            )
        return DependenceResult.independent(common, "ZIV: constant difference nonzero")

    # exact SIV cases
    if len(active) == 1 and not private:
        level = active[0]
        a, b, trip = pairs[level]
        siv = _siv_dispatch(a, b, delta, trip)
        if siv is not None:
            if siv.independent:
                return annotate(DependenceResult.independent(common, siv.note))
            vectors = []
            for vec in siv.directions or []:
                elements = [ANY] * len(common)
                elements[level] = vec[0]
                vectors.append(DirectionVector(elements))
            distance = None
            if siv.distance is not None:
                distances: List[Optional[int]] = [None] * len(common)
                distances[level] = siv.distance
                distance = DistanceVector(distances)
            return annotate(
                DependenceResult(
                    True,
                    common,
                    vectors,
                    distance=distance,
                    exact=True,
                    holds_after=holds_after,
                    notes=[siv.note],
                    cause="siv",
                )
            )

    # MIV: hierarchical direction-vector refinement with GCD + Banerjee
    return annotate(_refine_directions(pairs, private, delta, common, holds_after))


def _siv_dispatch(a: Fraction, b: Fraction, delta: Fraction, trip: Optional[int]):
    if a and b:
        if a == b:
            return strong_siv(a, delta, trip)
        if a == -b:
            return weak_crossing_siv(a, delta, trip)
        return None
    if a and not b:
        return weak_zero_siv(a, delta, trip, zero_side_is_sink=True)
    if b and not a:
        # equation: -b * h' = delta
        return weak_zero_siv(-b, delta, trip, zero_side_is_sink=False)
    return None


def _refine_directions(
    pairs: Sequence[Tuple[Fraction, Fraction, Optional[int]]],
    private: Sequence[Tuple[Fraction, Optional[int]]],
    delta: Fraction,
    common: Tuple[str, ...],
    holds_after: int,
) -> DependenceResult:
    levels = len(common)

    def feasible(signs_per_level) -> bool:
        if not gcd_feasible([(a, b) for a, b, _ in pairs], [c for c, _ in private], delta, signs_per_level):
            return False
        return banerjee_feasible(pairs, private, delta, signs_per_level)

    if not feasible([ANY] * levels):
        return DependenceResult.independent(common, "Banerjee/GCD: no solution")

    if levels == 0:
        return DependenceResult(
            True, common, [DirectionVector([])], exact=False,
            holds_after=holds_after, notes=["loop-independent overlap possible"],
            cause="miv",
        )

    if levels > MAX_ENUMERATED_LEVELS:
        result = DependenceResult.conservative(
            common, "too many levels to enumerate", cause="too-many-levels"
        )
        result.holds_after = holds_after
        return result

    leaves: List[DirectionVector] = []

    def refine(prefix: List, level: int) -> None:
        if level == levels:
            leaves.append(DirectionVector(prefix))
            return
        for signs in (LT, EQ, GT):
            candidate = prefix + [signs] + [ANY] * (levels - level - 1)
            if feasible(candidate):
                refine(prefix + [signs], level + 1)

    refine([], 0)
    if not leaves:
        return DependenceResult.independent(common, "all direction vectors infeasible")
    return DependenceResult(
        True,
        common,
        leaves,
        exact=False,
        holds_after=holds_after,
        notes=["direction hierarchy (GCD + Banerjee)"],
        cause="miv",
    )


# ----------------------------------------------------------------------
def _intersect(a: DependenceResult, b: DependenceResult) -> DependenceResult:
    """Conjunction of two per-dimension results on the same iteration pair."""
    directions: List[DirectionVector] = []
    for va in a.directions:
        for vb in b.directions:
            if len(va) != len(vb):
                continue
            meet = DirectionVector(
                [ea & eb for ea, eb in zip(va.elements, vb.elements)]
            )
            if not meet.is_empty:
                directions.append(meet)
    directions = _dedupe(directions)
    if not directions and (a.directions or b.directions):
        return DependenceResult.independent(
            a.common_loops, "per-dimension directions are incompatible"
        )
    distance = _intersect_distance(a.distance, b.distance)
    if distance is _CONFLICT:
        return DependenceResult.independent(
            a.common_loops, "per-dimension distances are incompatible"
        )
    return DependenceResult(
        True,
        a.common_loops,
        directions,
        distance=distance,
        holds_after=max(a.holds_after, b.holds_after),
        exact=a.exact and b.exact,
        notes=a.notes + b.notes,
        cause=a.cause or b.cause,
    )


_CONFLICT = object()


def _intersect_distance(a: Optional[DistanceVector], b: Optional[DistanceVector]):
    if a is None:
        return b
    if b is None:
        return a
    merged: List[Optional[int]] = []
    for da, db in zip(a.distances, b.distances):
        if da is None:
            merged.append(db)
        elif db is None or da == db:
            merged.append(da)
        else:
            return _CONFLICT
    return DistanceVector(merged)


def _filter_plausible(
    result: DependenceResult, source_first: Optional[bool]
) -> DependenceResult:
    """Keep only directions meaningful for the source-to-sink orientation."""
    if not result.dependent:
        return result
    kept = []
    for vector in result.directions:
        if not vector.is_plausible:
            continue
        if source_first is False and vector.elements:
            # a same-iteration (all '=') dependence needs the source to
            # execute before the sink: subtract the all-'=' instance
            kept.extend(_drop_backward(v) for v in _without_all_equal(vector))
        else:
            kept.append(_drop_backward(vector))
    kept = [v for v in kept if not v.is_empty]
    if not kept and result.directions:
        return DependenceResult.independent(
            result.common_loops, "only backward directions (belongs to reversed pair)"
        )
    result.directions = _dedupe(kept)
    return result


def _without_all_equal(vector: DirectionVector) -> List[DirectionVector]:
    """Decompose ``vector`` minus its all-'=' instance (lexicographic split).

    The instance space minus (=, =, ..., =) is the union, over each level k
    whose element allows a non-'=' sign, of
    ``(=, ..., =, e_k - {0}, e_{k+1}, ...)``.
    """
    if not all(0 in element for element in vector.elements):
        return [vector]  # cannot instantiate all-'='
    out: List[DirectionVector] = []
    for level, element in enumerate(vector.elements):
        rest = frozenset(element - {0})
        if not rest:
            continue
        elements = [EQ] * level + [rest] + list(vector.elements[level + 1:])
        out.append(DirectionVector(elements))
    return out


def _drop_backward(vector: DirectionVector) -> DirectionVector:
    """Remove sign choices that would make the vector lexicographically
    negative (source after sink)."""
    elements = list(vector.elements)
    for index, element in enumerate(elements):
        if element == EQ:
            continue
        if len(element) == 1:
            break
        # leading non-fixed level: the backward component (-1) is only
        # reachable while every previous level is '='; drop it here
        elements[index] = frozenset(element - {-1}) if 1 in element or 0 in element else element
        break
    return DirectionVector(elements)


def _dedupe(vectors: List[DirectionVector]) -> List[DirectionVector]:
    seen = set()
    out = []
    for vector in vectors:
        if vector not in seen:
            seen.add(vector)
            out.append(vector)
    return out
