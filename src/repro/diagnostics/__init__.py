"""Diagnostics subsystem: collect-all verification, sanitizing, linting.

Layers (each usable on its own):

* :mod:`repro.diagnostics.diagnostic` -- the :class:`Diagnostic` model,
  :class:`Severity` scale and :class:`DiagnosticCollector`;
* :mod:`repro.diagnostics.registry` -- every diagnostic code, its default
  severity and description (``docs/DIAGNOSTICS.md`` is the catalogue);
* :mod:`repro.diagnostics.verifier` -- the collect-all structural/SSA
  verifier (:func:`verify_collect`); ``repro.ir.verify.verify_function``
  is its raise-on-first compatibility wrapper;
* :mod:`repro.diagnostics.sanitizer` -- opt-in re-verification after
  every pipeline pass plus cache-staleness cross-checks
  (:func:`sanitizing`, :func:`checkpoint`);
* :mod:`repro.diagnostics.lints` -- semantic audits of classification
  results against the reference interpreter and the algebra laws;
* :mod:`repro.diagnostics.driver` -- the ``repro lint`` engine over
  files, directories and embedded example programs.

``lints`` and ``driver`` import the pipeline, so they are exposed lazily
(PEP 562) to keep ``repro.pipeline -> repro.diagnostics.sanitizer``
import-cycle-free.
"""

from repro.diagnostics.diagnostic import Diagnostic, DiagnosticCollector, Severity
from repro.diagnostics.registry import CheckInfo, all_checks, all_codes, check_info
from repro.diagnostics.render import render_json, render_summary, render_text
from repro.diagnostics.sanitizer import (
    SanitizerError,
    audit_caches,
    checkpoint,
    sanitizing,
)
from repro.diagnostics.verifier import verify_collect

__all__ = [
    "CheckInfo",
    "Diagnostic",
    "DiagnosticCollector",
    "SanitizerError",
    "Severity",
    "all_checks",
    "all_codes",
    "audit_caches",
    "check_info",
    "checkpoint",
    "collect_targets",
    "harvest_python",
    "lint_paths",
    "lint_program",
    "lint_source",
    "render_json",
    "render_summary",
    "render_text",
    "sanitizing",
    "verify_collect",
]

_LAZY = {
    "lint_program": ("repro.diagnostics.lints", "lint_program"),
    "lint_source": ("repro.diagnostics.driver", "lint_source"),
    "lint_paths": ("repro.diagnostics.driver", "lint_paths"),
    "collect_targets": ("repro.diagnostics.driver", "collect_targets"),
    "harvest_python": ("repro.diagnostics.driver", "harvest_python"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
