"""The diagnostic model: one finding, a severity scale, and a collector.

Every checker in the diagnostics subsystem -- the structural/SSA verifier
(:mod:`repro.diagnostics.verifier`), the pipeline sanitizer
(:mod:`repro.diagnostics.sanitizer`) and the semantic lints
(:mod:`repro.diagnostics.lints`) -- reports through the same vocabulary: a
:class:`Diagnostic` carries a stable code (``IR004``, ``SAN201``,
``CLS301``...), a severity, the IR location (function / block / value
name), the pipeline stage that produced it, a human message and an
optional fix hint.  Codes are declared once in
:mod:`repro.diagnostics.registry`; ``docs/DIAGNOSTICS.md`` catalogues them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, List, Optional


class Severity(enum.IntEnum):
    """Ordered severity scale (higher is worse)."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class Diagnostic:
    """One finding.

    ``code`` identifies the check (see :mod:`repro.diagnostics.registry`);
    ``function``/``block``/``name`` locate it in the IR; ``stage`` records
    the pipeline pass after which the sanitizer observed it; ``origin`` is
    the source file (or embedded-program label) the lint driver was
    processing.
    """

    code: str
    severity: Severity
    message: str
    function: Optional[str] = None
    block: Optional[str] = None
    name: Optional[str] = None
    stage: Optional[str] = None
    origin: Optional[str] = None
    hint: Optional[str] = None

    @property
    def is_error(self) -> bool:
        return self.severity >= Severity.ERROR

    def located(self) -> str:
        """``function/block`` location prefix (empty when unknown)."""
        parts = [p for p in (self.function, self.block) if p]
        return "/".join(parts)

    def with_stage(self, stage: str) -> "Diagnostic":
        return replace(self, stage=stage)

    def with_origin(self, origin: str) -> "Diagnostic":
        return replace(self, origin=origin)

    def sort_key(self) -> tuple:
        return (
            self.origin or "",
            self.function or "",
            self.block or "",
            self.code,
            self.name or "",
            self.message,
        )

    def to_dict(self) -> dict:
        out = {"code": self.code, "severity": str(self.severity), "message": self.message}
        for key in ("function", "block", "name", "stage", "origin", "hint"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out


@dataclass
class DiagnosticCollector:
    """Accumulates diagnostics across checks (and pipeline stages)."""

    diagnostics: List[Diagnostic] = field(default_factory=list)

    def emit(
        self,
        code: str,
        message: str,
        *,
        severity: Optional[Severity] = None,
        function: Optional[str] = None,
        block: Optional[str] = None,
        name: Optional[str] = None,
        stage: Optional[str] = None,
        origin: Optional[str] = None,
        hint: Optional[str] = None,
    ) -> Diagnostic:
        """Record a finding; severity defaults to the registered one."""
        from repro.diagnostics.registry import check_info

        info = check_info(code)
        diagnostic = Diagnostic(
            code=code,
            severity=severity if severity is not None else info.severity,
            message=message,
            function=function,
            block=block,
            name=name,
            stage=stage,
            origin=origin,
            hint=hint if hint is not None else None,
        )
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    # -- queries -----------------------------------------------------------
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= Severity.ERROR]

    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity >= Severity.ERROR for d in self.diagnostics)

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def codes(self) -> List[str]:
        return sorted({d.code for d in self.diagnostics})

    def sorted(self) -> List[Diagnostic]:
        return sorted(self.diagnostics, key=Diagnostic.sort_key)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)
