"""The lint driver: run every check over whole programs (``repro lint``).

:func:`lint_source` takes one loop-language program through the full
pipeline with the sanitizer active, verifies the resulting SSA, and runs
the semantic lints.  :func:`lint_paths` extends that to files and
directories: ``*.loop`` files are linted directly, and ``*.py`` files are
*harvested* -- every string constant that parses as a loop-language
program containing a loop (the repo's ``examples/`` embed their programs
that way) becomes a lint target labelled ``file.py:LINE``.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.diagnostics.diagnostic import Diagnostic, DiagnosticCollector
from repro.diagnostics.lints import DEFAULT_SAMPLES, lint_program
from repro.diagnostics.sanitizer import sanitizing
from repro.diagnostics.verifier import verify_collect


@dataclass(frozen=True)
class LintTarget:
    """One program to lint: its origin label and source text."""

    origin: str
    source: str


def lint_source(
    source: str,
    origin: Optional[str] = None,
    collector: Optional[DiagnosticCollector] = None,
    execution: bool = True,
    samples: Sequence[int] = DEFAULT_SAMPLES,
    ranges: bool = False,
    invariants: bool = False,
    budget=None,
) -> List[Diagnostic]:
    """Lint one program; returns (and optionally collects) all findings.

    ``budget`` (an :class:`~repro.resilience.AnalysisBudget`) caps the
    underlying analysis; exhaustion degrades the affected scope and
    surfaces as RES5xx diagnostics rather than failing the lint run.

    ``ranges`` additionally runs the value-range analysis and its RNG6xx
    checker suite (out-of-bounds subscripts, possible division by zero,
    provably empty loops, ...; see ``docs/RANGES.md``).

    ``invariants`` additionally runs the polynomial-invariant phase and
    its INV7xx replay suite (every emitted equality and branch-dependent
    step bound is held against the interpreter; see
    ``docs/INVARIANTS.md``).
    """
    from repro.pipeline import analyze

    out = collector if collector is not None else DiagnosticCollector()
    local = DiagnosticCollector()
    try:
        with sanitizing(strict=False, collector=local):
            program = analyze(
                source, ranges=ranges, invariants=invariants, budget=budget
            )
    except Exception as error:
        local.emit("LNT001", f"analysis failed: {error}")
        return _publish(local, out, origin)

    seen = {(d.code, d.message) for d in local}
    for diagnostic in verify_collect(program.ssa, ssa=True):
        if (diagnostic.code, diagnostic.message) not in seen:
            local.diagnostics.append(diagnostic)

    if program.degradations:
        from repro.resilience.isolation import diagnostics_of

        diagnostics_of(program.degradations, local)

    if execution:
        lint_program(program, collector=local, samples=samples)
    else:
        from repro.diagnostics.lints import lint_lattice, lint_source as lint_src

        lint_lattice(program, local)
        lint_src(program, local)

    if ranges and program.result.ranges is not None:
        from repro.ranges import check_ranges

        check_ranges(program.result, program.result.ranges, local)

    if invariants and program.result.invariants is not None:
        from repro.invariants import check_invariants

        check_invariants(program, local, samples=samples)
    return _publish(local, out, origin)


def _publish(
    local: DiagnosticCollector, out: DiagnosticCollector, origin: Optional[str]
) -> List[Diagnostic]:
    published = [
        d.with_origin(origin) if origin and d.origin is None else d for d in local
    ]
    out.extend(published)
    return published


# ----------------------------------------------------------------------
# target discovery
# ----------------------------------------------------------------------
def harvest_python(path: str) -> List[LintTarget]:
    """Extract embedded loop-language programs from a Python file.

    Any string constant (module level or nested) that the loop-language
    parser accepts and that contains a loop (``do``) is a target; this is
    how ``examples/*.py`` carry their programs.
    """
    from repro.frontend.parser import parse_program

    with open(path) as handle:
        text = handle.read()
    targets: List[LintTarget] = []
    try:
        tree = ast.parse(text)
    except SyntaxError:
        return targets
    for node in ast.walk(tree):
        if not isinstance(node, ast.Constant) or not isinstance(node.value, str):
            continue
        source = node.value
        if "\n" not in source or " do" not in source:
            continue
        try:
            parse_program(source)
        except Exception:
            continue
        targets.append(LintTarget(f"{path}:{node.lineno}", source))
    return targets


def discover_files(paths: Sequence[str], suffixes: Sequence[str]) -> List[str]:
    """Expand files and directories into a deterministic file list.

    The one corpus walker behind ``repro report``, ``repro lint``, and
    ``repro pylint``: directories are walked recursively in sorted order
    and contribute every file matching ``suffixes``; explicit file paths
    are passed through untouched (whatever their suffix), so a user can
    always point a mode at one specific file.  Missing paths raise
    ``OSError`` like ``open`` would, so every caller reports absent
    inputs the same way.
    """
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                for filename in sorted(filenames):
                    if filename.endswith(tuple(suffixes)):
                        out.append(os.path.join(dirpath, filename))
        elif os.path.exists(path):
            out.append(path)
        else:
            raise OSError(f"no such file or directory: {path!r}")
    return out


def collect_targets(paths: Sequence[str]) -> List[LintTarget]:
    """Expand files and directories into lint targets.

    Directories contribute every ``*.loop`` file plus the programs
    harvested from every ``*.py`` file (via :func:`discover_files`, the
    shared corpus walker).  A ``.py`` path is harvested; any other file
    is read as loop-language source.
    """
    targets: List[LintTarget] = []
    for full in discover_files(paths, (".py", ".loop")):
        if full.endswith(".py"):
            targets.extend(harvest_python(full))
        else:
            targets.append(_file_target(full))
    return targets


def _file_target(path: str) -> LintTarget:
    with open(path) as handle:
        return LintTarget(path, handle.read())


def lint_paths(
    paths: Sequence[str],
    collector: Optional[DiagnosticCollector] = None,
    execution: bool = True,
    ranges: bool = False,
    invariants: bool = False,
) -> DiagnosticCollector:
    """Lint every program found under ``paths``; returns the collector."""
    out = collector if collector is not None else DiagnosticCollector()
    for target in collect_targets(paths):
        lint_source(
            target.source,
            origin=target.origin,
            collector=out,
            execution=execution,
            ranges=ranges,
            invariants=invariants,
        )
    return out
