"""Semantic lints: audit what the classifier *claimed*.

The classifier emits checkable obligations -- closed forms, monotonic
directions, periodicity -- and the reference interpreter
(:mod:`repro.ir.interp`) can observe the ground truth.  These lints
cross-examine the two, in the spirit of invariant-validation work
(Humenberger et al.; de Oliveira et al.): a candidate loop fact is only as
good as its check.

Three groups:

* **execution lints** (``CLS301``/``CLS302``): run the SSA function on a
  few concrete parameter samples, then diff every reported closed form
  (and monotonic verdict) against the observed value sequence;
* **lattice lints** (``CLS303``..``CLS306``): re-derive algebra results
  (IV + invariant must stay an IV with the summed form) and audit
  wrap-around / periodic bookkeeping;
* **source lints** (``SRC4xx``): surface actionable findings -- hoistable
  loop-invariant code, dead stores, unused definitions, and non-affine
  subscripts that defeat the dependence tests.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.algebra import cf_to_class, class_closed_form
from repro.core.classes import (
    Classification,
    InductionVariable,
    Invariant,
    Monotonic,
    Periodic,
    Unknown,
    WrapAround,
)
from repro.diagnostics.diagnostic import Diagnostic, DiagnosticCollector
from repro.ir.instructions import (
    Assign,
    BinOp,
    Compare,
    Load,
    Phi,
    Store,
    UnOp,
)
from repro.ir.interp import Interpreter, InterpreterError
from repro.ir.opcodes import BinaryOp
from repro.ir.values import Const, Ref
from repro.symbolic.expr import Expr, ExprError

#: concrete values tried for every symbolic parameter during execution lints
DEFAULT_SAMPLES: Tuple[int, ...] = (3, 7)
#: cap on iterations compared per variable and sample
MAX_TRIPS = 24
#: interpreter fuel per sample run
FUEL = 200_000

HOISTABLE = (Assign, BinOp, UnOp, Compare, Load)
PURE = (Assign, BinOp, UnOp, Compare, Load, Phi)


def lint_program(
    program,
    collector: Optional[DiagnosticCollector] = None,
    samples: Sequence[int] = DEFAULT_SAMPLES,
) -> List[Diagnostic]:
    """Run every semantic lint over an :class:`AnalyzedProgram`.

    Returns the diagnostics found (also appended to ``collector`` when
    given).
    """
    out = collector if collector is not None else DiagnosticCollector()
    start = len(out.diagnostics)
    lint_execution(program, out, samples=samples)
    lint_lattice(program, out)
    lint_source(program, out)
    return out.diagnostics[start:]


# ----------------------------------------------------------------------
# execution lints: closed forms / monotonicity vs. the interpreter
# ----------------------------------------------------------------------
def lint_execution(
    program,
    out: DiagnosticCollector,
    samples: Sequence[int] = DEFAULT_SAMPLES,
) -> None:
    function = program.ssa
    result = program.result
    emitted: Set[Tuple[str, str]] = set()
    for args in _sample_arguments(function.params, samples):
        try:
            run = Interpreter(function, fuel=FUEL, record_history=True).run(args)
        except InterpreterError:
            continue  # e.g. division by zero under this sample: not a lint

        env: Dict[str, Fraction] = {}
        for name, values in run.value_history.items():
            if len(values) == 1:
                env.setdefault(name, Fraction(values[0]))
        for name, value in run.scalars.items():
            env.setdefault(name, Fraction(value))

        for summary in result.loops.values():
            if summary.loop.parent is not None:
                # an inner loop re-executes once per outer iteration, so the
                # recorded history interleaves entries; closed forms describe
                # a single entry and cannot be aligned against it
                continue
            latches = summary.loop.latches
            own_blocks = set(summary.loop.body)
            for child in summary.loop.children:
                own_blocks -= child.body
            for name, cls in summary.classifications.items():
                history = run.value_history.get(name, [])
                # names in nested loops are summarized by their exit values,
                # which do not align with the per-execution history
                site = function.def_site(name)
                if site is None or site[0] not in own_blocks:
                    continue
                if isinstance(cls, Monotonic):
                    _check_monotonic(function, name, cls, history, args, out, emitted)
                    continue
                if not isinstance(cls, (Invariant, InductionVariable, WrapAround, Periodic)):
                    continue
                # closed forms index by iteration; the history indexes by
                # occurrence -- they only align for definitions executed on
                # every iteration (block dominates every latch)
                if not all(program.domtree.dominates(site[0], latch) for latch in latches):
                    continue
                _check_closed_form(function, name, cls, history, env, args, out, emitted)


def _sample_arguments(params: Sequence[str], samples: Sequence[int]) -> List[Dict[str, int]]:
    if not params:
        return [{}]
    return [{param: value for param in params} for value in samples]


def _check_closed_form(function, name, cls, history, env, args, out, emitted) -> None:
    if ("CLS301", name) in emitted:
        return
    for h, observed in enumerate(history[:MAX_TRIPS]):
        expected = cls.value_at(h)
        if expected is None:
            return
        if any(symbol.startswith("$k") for symbol in expected.free_symbols()):
            return  # opaque invariant: not evaluable
        try:
            predicted = expected.evaluate(env)
        except ExprError:
            return
        if predicted != observed:
            emitted.add(("CLS301", name))
            out.emit(
                "CLS301",
                f"%{name} classified {cls.describe()} but "
                f"iteration {h} evaluates to {predicted} while execution "
                f"(args {_fmt_args(args)}) observed {observed}",
                function=function.name,
                block=cls.loop,
                name=name,
                hint="the classification or a transform that preserved it is wrong",
            )
            return


def _check_monotonic(function, name, cls, history, args, out, emitted) -> None:
    if ("CLS302", name) in emitted:
        return
    for h, (earlier, later) in enumerate(zip(history, history[1:])):
        bad = None
        if cls.direction > 0:
            if later < earlier:
                bad = "decreased"
            elif cls.strict and later == earlier:
                bad = "repeated (claimed strictly increasing)"
        else:
            if later > earlier:
                bad = "increased"
            elif cls.strict and later == earlier:
                bad = "repeated (claimed strictly decreasing)"
        if bad is not None:
            emitted.add(("CLS302", name))
            out.emit(
                "CLS302",
                f"%{name} classified {cls.describe()} but its "
                f"value {bad} at occurrence {h + 1} "
                f"({earlier} -> {later}, args {_fmt_args(args)})",
                function=function.name,
                block=cls.loop,
                name=name,
            )
            return


def _fmt_args(args: Dict[str, int]) -> str:
    if not args:
        return "{}"
    return "{" + ", ".join(f"{k}={v}" for k, v in sorted(args.items())) + "}"


# ----------------------------------------------------------------------
# lattice lints: algebra laws and class bookkeeping
# ----------------------------------------------------------------------
def lint_lattice(program, out: DiagnosticCollector) -> None:
    function = program.ssa
    result = program.result
    for summary in result.loops.values():
        loop = summary.loop
        for name, cls in summary.classifications.items():
            if isinstance(cls, WrapAround):
                if cls.order != len(cls.pre_values):
                    out.emit(
                        "CLS306",
                        f"%{name} wrap-around order {cls.order} "
                        f"!= {len(cls.pre_values)} recorded pre-values",
                        function=function.name,
                        block=summary.label,
                        name=name,
                    )
                elif cls.simplify() is not cls:
                    out.emit(
                        "CLS304",
                        f"%{name} wrap-around pre-values "
                        f"{[str(v) for v in cls.pre_values]} fit the steady "
                        f"state {cls.inner.describe()}; it should have "
                        "simplified",
                        function=function.name,
                        block=summary.label,
                        name=name,
                    )
            elif isinstance(cls, Periodic):
                if all(v == cls.values[0] for v in cls.values[1:]):
                    out.emit(
                        "CLS305",
                        f"%{name} periodic over identical "
                        f"values [{', '.join(str(v) for v in cls.values)}]; "
                        "it should have simplified to an invariant",
                        function=function.name,
                        block=summary.label,
                        name=name,
                    )
        _lint_additive_laws(program, summary, loop, out)


def _lint_additive_laws(program, summary, loop, out: DiagnosticCollector) -> None:
    """IV (+|-) invariant must classify as the IV with the combined form."""
    function = program.ssa
    own_blocks = set(loop.body)
    for child in loop.children:
        own_blocks -= child.body

    def operand_class(value) -> Optional[Classification]:
        if isinstance(value, Const):
            return Invariant(Expr.const(value.value), loop=summary.label)
        if isinstance(value, Ref):
            if value.name in summary.classifications:
                return summary.classifications[value.name]
            site = function.def_site(value.name)
            if site is not None and site[0] in loop.body:
                return None  # nested-loop value: outside this lint's scope
            return Invariant(Expr.sym(value.name), loop=summary.label)
        return None

    for label in sorted(own_blocks):
        for inst in function.block(label):
            if not isinstance(inst, BinOp) or inst.op not in (BinaryOp.ADD, BinaryOp.SUB):
                continue
            actual = summary.classifications.get(inst.result)
            if actual is None:
                continue
            lhs = operand_class(inst.lhs)
            rhs = operand_class(inst.rhs)
            if lhs is None or rhs is None:
                continue
            form_l = class_closed_form(lhs)
            form_r = class_closed_form(rhs)
            if form_l is None or form_r is None:
                continue
            if not isinstance(lhs, InductionVariable) and not isinstance(rhs, InductionVariable):
                continue
            combined = form_l + form_r if inst.op is BinaryOp.ADD else form_l - form_r
            expected = cf_to_class(summary.label, combined)
            if isinstance(actual, Unknown) or actual != expected:
                out.emit(
                    "CLS303",
                    f"%{inst.result} = "
                    f"{lhs.describe()} {'+' if inst.op is BinaryOp.ADD else '-'} "
                    f"{rhs.describe()} should classify as {expected.describe()} "
                    f"but is {actual.describe()}",
                    function=function.name,
                    block=label,
                    name=inst.result,
                )


# ----------------------------------------------------------------------
# source lints
# ----------------------------------------------------------------------
def lint_source(program, out: DiagnosticCollector) -> None:
    _lint_hoistable(program, out)
    _lint_dead_stores(program, out)
    _lint_unused_definitions(program, out)
    _lint_subscripts(program, out)
    _lint_imprecise_dependences(program, out)


def _lint_hoistable(program, out: DiagnosticCollector) -> None:
    """Invariant computations still executing inside their loop (SRC401)."""
    function = program.ssa
    for summary in program.result.loops.values():
        loop = summary.loop
        if loop.preheader(function) is None:
            continue
        own_blocks = set(loop.body)
        for child in loop.children:
            own_blocks -= child.body
        hoistable: Set[str] = set()
        changed = True
        while changed:
            changed = False
            for label in own_blocks:
                for inst in function.block(label):
                    if not isinstance(inst, HOISTABLE) or inst.result is None:
                        continue
                    if inst.result in hoistable:
                        continue
                    if not isinstance(summary.classifications.get(inst.result), Invariant):
                        continue
                    ok = True
                    for value in inst.uses():
                        if not isinstance(value, Ref):
                            continue
                        site = function.def_site(value.name)
                        if site is not None and site[0] in loop.body and value.name not in hoistable:
                            ok = False
                            break
                    if ok:
                        hoistable.add(inst.result)
                        changed = True
        for name in sorted(hoistable):
            site = function.def_site(name)
            out.emit(
                "SRC401",
                f"%{name} is loop-invariant in "
                f"{summary.label} but computed on every iteration",
                function=function.name,
                block=site[0],
                name=name,
                hint="hoist_invariants() can move it to the preheader",
            )


def _lint_dead_stores(program, out: DiagnosticCollector) -> None:
    """A store overwritten in-block with no intervening load (SRC402)."""
    function = program.ssa
    for block in function:
        last_store: Dict[tuple, int] = {}
        for position, inst in enumerate(block.instructions):
            if isinstance(inst, Load):
                for key in [k for k in last_store if k[0] == inst.array]:
                    del last_store[key]
            elif isinstance(inst, Store):
                if inst.indices is None:
                    key = (inst.array, None)
                else:
                    key = (inst.array, tuple(str(v) for v in inst.indices))
                if key in last_store:
                    out.emit(
                        "SRC402",
                        f"store to @{inst.array}"
                        f"{_fmt_subscript(inst)} at position {last_store[key]} "
                        f"is dead (overwritten at position {position} with no "
                        "intervening load)",
                        function=function.name,
                        block=block.label,
                        hint="delete the earlier store",
                    )
                last_store[key] = position


def _fmt_subscript(inst: Store) -> str:
    if inst.indices is None:
        return ""
    return "[" + ", ".join(str(v) for v in inst.indices) + "]"


def _lint_unused_definitions(program, out: DiagnosticCollector) -> None:
    """Pure definitions nothing ever reads (SRC404): DCE candidates."""
    function = program.ssa
    used: Set[str] = set()
    for block in function:
        for inst in block:
            for value in inst.uses():
                if isinstance(value, Ref):
                    used.add(value.name)
        if block.terminator is not None:
            for value in block.terminator.uses():
                if isinstance(value, Ref):
                    used.add(value.name)
    for block in function:
        for inst in block:
            if not isinstance(inst, PURE) or inst.result is None:
                continue
            if inst.result not in used:
                out.emit(
                    "SRC404",
                    f"%{inst.result} is never used",
                    function=function.name,
                    block=block.label,
                    name=inst.result,
                    hint="eliminate_dead_code() removes it",
                )


def _lint_imprecise_dependences(program, out: DiagnosticCollector) -> None:
    """Dependence tests that fell back to the conservative answer because a
    subscript classified as Unknown (SRC405).  SRC403 flags the subscript
    itself; this flags the *pairs* whose verdict lost precision, with the
    descriptor's reason carried through the result notes."""
    from repro.dependence.graph import build_dependence_graph

    try:
        graph = build_dependence_graph(program.result)
    except Exception:
        return  # the graph is itself an optional phase; nothing to report
    seen: Set[Tuple[str, str, str]] = set()
    for edge in graph.edges:
        for note in edge.result.notes:
            if "unknown" not in note or not note.startswith("no test for"):
                continue
            key = (edge.source.block, edge.sink.block, note)
            if key in seen:
                continue
            seen.add(key)
            out.emit(
                "SRC405",
                f"dependence between @{edge.source.array} references in "
                f"{edge.source.block} and {edge.sink.block} assumed "
                f"conservatively: {note}",
                function=program.ssa.name,
                block=edge.source.block,
                hint="the verdict is sound but not exact; see SRC403 for "
                "the offending subscript",
            )


def _lint_subscripts(program, out: DiagnosticCollector) -> None:
    """Subscripts the dependence tests cannot describe at all (SRC403)."""
    from repro.dependence.subscript import SubscriptKind, describe_subscript

    function = program.ssa
    result = program.result
    for block in function:
        if result.nest.innermost(block.label) is None:
            continue
        for inst in block:
            if isinstance(inst, (Load, Store)) and inst.indices is not None:
                for dim, value in enumerate(inst.indices):
                    descriptor = describe_subscript(result, value, block.label)
                    if descriptor.kind is SubscriptKind.UNKNOWN:
                        out.emit(
                            "SRC403",
                            f"subscript "
                            f"{dim + 1} of @{inst.array} ({value}) is not "
                            "affine or extended-class"
                            + (f": {descriptor.reason}" if descriptor.reason else ""),
                            function=function.name,
                            block=block.label,
                            name=value.name if isinstance(value, Ref) else None,
                            hint="dependence tests will conservatively assume "
                            "a dependence at this reference",
                        )
