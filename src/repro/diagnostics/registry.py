"""The check registry: every diagnostic code, declared once.

A :class:`CheckInfo` gives each code its default severity, a category and
a one-line description.  The registry is the single source of truth the
collector (default severities), the renderers (titles) and the docs test
(``docs/DIAGNOSTICS.md`` must catalogue every code) all consult.

Code ranges:

* ``IR0xx``  -- structural well-formedness of any IR (named or SSA)
* ``IR1xx``  -- SSA-form invariants
* ``SAN2xx`` -- pipeline sanitizer (stale caches, pass broke the IR)
* ``CLS3xx`` -- classification soundness (closed forms vs. execution,
  algebra-lattice laws, wrap-around/periodic bookkeeping)
* ``SRC4xx`` -- source-level findings (hoistable code, dead stores,
  non-affine subscripts)
* ``LNT0xx`` -- lint-driver level problems (a program failed to analyze)
* ``RES5xx`` -- resilience degradations (a failure was contained by the
  fault-tolerant pipeline; see :mod:`repro.resilience`)
* ``RNG6xx`` -- value-range findings (subscript bounds, division by
  zero, empty loops, constant branches; see :mod:`repro.ranges`)
* ``INV7xx`` -- polynomial-invariant replay (emitted equalities and
  branch-dependent step bounds vs. the interpreter; see
  :mod:`repro.invariants`)
* ``PYF4xx`` -- real-Python frontend degradations (an unsupported
  CPython construct kept a function, statement, or expression from
  lowering to IR; see :mod:`repro.pyfront` and ``docs/PYTHON.md``)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.diagnostics.diagnostic import Severity


@dataclass(frozen=True)
class CheckInfo:
    code: str
    title: str
    severity: Severity
    category: str
    description: str


_REGISTRY: Dict[str, CheckInfo] = {}


def register(code: str, title: str, severity: Severity, category: str, description: str) -> None:
    if code in _REGISTRY:
        raise ValueError(f"diagnostic code {code!r} registered twice")
    _REGISTRY[code] = CheckInfo(code, title, severity, category, description)


def check_info(code: str) -> CheckInfo:
    try:
        return _REGISTRY[code]
    except KeyError:
        raise KeyError(f"unknown diagnostic code {code!r}") from None


def all_checks() -> List[CheckInfo]:
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def all_codes() -> List[str]:
    return sorted(_REGISTRY)


# ----------------------------------------------------------------------
# structural checks (any IR)
# ----------------------------------------------------------------------
register(
    "IR001", "no-blocks", Severity.ERROR, "structural",
    "The function has no basic blocks at all.",
)
register(
    "IR002", "missing-entry", Severity.ERROR, "structural",
    "The function's entry label does not name one of its blocks.",
)
register(
    "IR003", "unknown-branch-target", Severity.ERROR, "structural",
    "A terminator targets a label that is not a block of the function.",
)
register(
    "IR004", "missing-terminator", Severity.ERROR, "structural",
    "A basic block has no terminator (jump / branch / return).",
)
register(
    "IR005", "phi-after-non-phi", Severity.ERROR, "structural",
    "A phi instruction appears after a non-phi; phis must form a block prefix.",
)
register(
    "IR006", "unreachable-block", Severity.WARNING, "structural",
    "A block is unreachable from the entry block.",
)
register(
    "IR007", "phi-in-entry", Severity.ERROR, "structural",
    "The entry block contains a phi; the entry has no predecessors to merge.",
)

# ----------------------------------------------------------------------
# SSA-form checks
# ----------------------------------------------------------------------
register(
    "IR101", "duplicate-definition", Severity.ERROR, "ssa",
    "The same SSA name is defined by more than one instruction.",
)
register(
    "IR102", "parameter-shadowed", Severity.ERROR, "ssa",
    "An instruction defines a name that is already a function parameter.",
)
register(
    "IR103", "phi-predecessor-mismatch", Severity.ERROR, "ssa",
    "A phi's incoming labels do not match the block's predecessors.",
)
register(
    "IR104", "undominated-use", Severity.ERROR, "ssa",
    "An instruction uses a value whose definition does not dominate the use.",
)
register(
    "IR105", "phi-edge-value-unavailable", Severity.ERROR, "ssa",
    "A phi's incoming value is not available at the end of that incoming edge's "
    "predecessor.",
)
register(
    "IR106", "undominated-terminator-use", Severity.ERROR, "ssa",
    "A terminator uses a value whose definition does not dominate the block end.",
)
register(
    "IR107", "undefined-use", Severity.ERROR, "ssa",
    "An instruction references a name with no definition anywhere in the "
    "function (and it is not a parameter).",
)
register(
    "IR108", "self-referential-def", Severity.ERROR, "ssa",
    "A non-phi instruction uses its own result; in SSA only phis may close "
    "cycles.",
)

# ----------------------------------------------------------------------
# pipeline sanitizer
# ----------------------------------------------------------------------
register(
    "SAN201", "stale-definitions-cache", Severity.ERROR, "sanitizer",
    "Function.definitions() disagrees with a fresh recomputation: a mutating "
    "pass changed instructions without calling Function.dirty().",
)
register(
    "SAN202", "stale-defsite-cache", Severity.ERROR, "sanitizer",
    "Function.def_site() disagrees with a fresh recomputation: an in-place "
    "move or rename skipped Function.dirty().",
)
register(
    "SAN203", "pass-broke-ir", Severity.ERROR, "sanitizer",
    "The IR failed verification directly after a pipeline pass ran.",
)

# ----------------------------------------------------------------------
# classification-soundness lints
# ----------------------------------------------------------------------
register(
    "CLS301", "closed-form-mismatch", Severity.ERROR, "classification",
    "A reported closed form, evaluated at iteration h, disagrees with the "
    "value the reference interpreter observed.",
)
register(
    "CLS302", "monotonic-contradicted", Severity.ERROR, "classification",
    "A monotonic verdict (direction or strictness) is contradicted by the "
    "observed value sequence.",
)
register(
    "CLS303", "algebra-law-violation", Severity.WARNING, "classification",
    "An algebra-lattice law failed: e.g. IV + invariant did not classify as "
    "an IV with the summed closed form.",
)
register(
    "CLS304", "wraparound-simplifiable", Severity.NOTE, "classification",
    "A wrap-around's pre-values all fit its steady-state sequence; it should "
    "have simplified to the inner class.",
)
register(
    "CLS305", "periodic-constant", Severity.NOTE, "classification",
    "A periodic classification cycles through identical values; it should "
    "have simplified to an invariant.",
)
register(
    "CLS306", "wraparound-order-mismatch", Severity.ERROR, "classification",
    "A wrap-around's order does not match its number of recorded pre-values.",
)

# ----------------------------------------------------------------------
# source-level lints
# ----------------------------------------------------------------------
register(
    "SRC401", "hoistable-invariant", Severity.NOTE, "source",
    "A loop-invariant computation executes inside the loop; it could be "
    "hoisted to the preheader (LICM).",
)
register(
    "SRC402", "dead-store", Severity.WARNING, "source",
    "A store is overwritten by a later store to the same cell in the same "
    "block with no intervening load of the array.",
)
register(
    "SRC403", "non-affine-subscript", Severity.WARNING, "source",
    "An array subscript is neither affine in the loop counters nor one of the "
    "extended classes; dependence tests fall back to assuming a dependence.",
)
register(
    "SRC404", "unused-definition", Severity.NOTE, "source",
    "A pure definition is never used by any instruction, terminator or store "
    "(dead-code-elimination candidate).",
)
register(
    "SRC405", "imprecise-dependence", Severity.WARNING, "source",
    "A dependence test between two references fell back to the conservative "
    "answer because a subscript classified as Unknown; the descriptor's "
    "reason says why precision was lost.",
)

# ----------------------------------------------------------------------
# lint driver
# ----------------------------------------------------------------------
register(
    "LNT001", "analysis-failed", Severity.ERROR, "driver",
    "The program failed to parse or analyze, so no checks could run.",
)

# ----------------------------------------------------------------------
# resilience degradations (see repro.resilience / docs/ROBUSTNESS.md)
# ----------------------------------------------------------------------
register(
    "RES501", "degraded-loop", Severity.WARNING, "resilience",
    "A loop, SCR, or trip count failed to classify; the failure was "
    "contained and the affected names read as Unknown.",
)
register(
    "RES502", "skipped-phase", Severity.WARNING, "resilience",
    "An optional pipeline phase (scalar pass, transform, dependence "
    "graph, lint) failed and was skipped; analysis continued without it.",
)
register(
    "RES503", "budget-exhausted", Severity.WARNING, "resilience",
    "An AnalysisBudget limit (expression terms, matrix dimension, unroll "
    "factor, phase deadline) was reached; the affected scope degraded.",
)
register(
    "RES504", "retried-phase", Severity.NOTE, "resilience",
    "A phase failed with a transient (RETRY-policy) error and was re-run; "
    "the retry outcome is reported separately if it also failed.",
)
register(
    "RES505", "degraded-function", Severity.ERROR, "resilience",
    "A required phase (frontend under fault injection, SSA construction, "
    "whole-function classification) failed; the entire function degraded "
    "to an empty classification.",
)
register(
    "RES506", "worker-crashed", Severity.WARNING, "resilience",
    "An analysis worker process died while running this request; the "
    "serving layer respawned it and, after bounded retries, returned a "
    "degraded partial response instead of failing the server.",
)
register(
    "RES507", "request-timed-out", Severity.WARNING, "resilience",
    "A dispatched job outlived the serving layer's request timeout; the "
    "hung worker was killed and respawned and the request degraded.",
)
register(
    "RES508", "load-shed", Severity.WARNING, "resilience",
    "The circuit breaker was open for this request's fingerprint after "
    "repeated worker failures, so the request was shed with a structured "
    "degraded response instead of being dispatched.",
)
register(
    "RES509", "response-truncated", Severity.WARNING, "resilience",
    "A service response serialized past the protocol's maximum message "
    "size; the serving layer dropped the report/record payloads so the "
    "client still receives a (degraded) response it can decode.",
)

# ----------------------------------------------------------------------
# value-range checks (see repro.ranges / docs/RANGES.md)
# ----------------------------------------------------------------------
register(
    "RNG601", "subscript-out-of-bounds", Severity.ERROR, "ranges",
    "A subscript's value range never intersects the valid index range "
    "[0, extent - 1] of the array's declared extent: every execution that "
    "reaches it is out of bounds.",
)
register(
    "RNG602", "subscript-in-bounds", Severity.NOTE, "ranges",
    "Every subscript of a reference is provably inside [0, extent - 1] for "
    "every possible extent value (a bounds-check-elimination receipt).",
)
register(
    "RNG603", "possible-division-by-zero", Severity.WARNING, "ranges",
    "A division or modulo has a divisor whose (non-trivial) value range "
    "contains zero.",
)
register(
    "RNG604", "zero-step-self-update", Severity.WARNING, "ranges",
    "A loop-carried self-update adds or subtracts a provably zero step; the "
    "variable never changes across iterations.",
)
register(
    "RNG605", "provably-empty-loop", Severity.WARNING, "ranges",
    "A loop's trip-count range excludes every positive count; its body never "
    "executes.",
)
register(
    "RNG606", "constant-branch-condition", Severity.WARNING, "ranges",
    "A conditional branch's condition has a single-constant value range, so "
    "one successor edge is never taken.",
)

# ----------------------------------------------------------------------
# real-Python frontend degradations (see repro.pyfront / docs/PYTHON.md)
# ----------------------------------------------------------------------
register(
    "PYF401", "unsupported-statement", Severity.WARNING, "pyfront",
    "A Python function contains a statement outside the supported subset "
    "(class/try/with/del/raise, tuple targets, loop else-clauses, "
    "non-constant range steps, ...); the function degraded instead of "
    "lowering to IR.",
)
register(
    "PYF402", "unsupported-expression", Severity.WARNING, "pyfront",
    "A Python function uses an expression outside the supported integer "
    "subset (float/str literals, attribute access, calls other than "
    "range/len, slices, comprehensions, free variables, ...); the "
    "function degraded instead of lowering to IR.",
)
register(
    "PYF403", "unsupported-parameter", Severity.WARNING, "pyfront",
    "A Python function's signature is outside the supported subset "
    "(*args, **kwargs, or keyword-only parameters); the function "
    "degraded instead of lowering to IR.",
)
register(
    "PYF404", "type-confusion", Severity.WARNING, "pyfront",
    "Usage-based type inference saw a name used both as an integer and "
    "as a list (or a list created locally); only int scalars and "
    "list-of-int parameters are modeled, so the function degraded.",
)
register(
    "PYF405", "loop-variable-escape", Severity.WARNING, "pyfront",
    "A for-loop's target is read after the loop or reassigned inside it; "
    "the IR's counted-loop shape would diverge from CPython's post-loop "
    "binding, so the function degraded instead of miscompiling.",
)
register(
    "PYF406", "python-syntax-error", Severity.ERROR, "pyfront",
    "A Python file failed to parse with the running interpreter's "
    "``ast`` grammar; none of its functions could be considered.",
)
register(
    "PYF407", "assert-dropped", Severity.NOTE, "pyfront",
    "An assert statement was not of the ``assert name <op> literal`` / "
    "``assert len(a) <op> literal`` bound-introducing shapes, so it was "
    "dropped (the function still lowered, without that assumption).",
)

# ----------------------------------------------------------------------
# invariant replay checks (see repro.invariants / docs/INVARIANTS.md)
# ----------------------------------------------------------------------
register(
    "INV701", "invariant-violated", Severity.ERROR, "invariants",
    "An emitted polynomial loop invariant is violated by a concrete header "
    "state observed during interpreter replay: the generator (or a "
    "transform it trusted) is unsound for this loop.",
)
register(
    "INV702", "invariant-verified", Severity.NOTE, "invariants",
    "An emitted polynomial loop invariant held on every interpreter-observed "
    "header state (and was checked on at least one).",
)
register(
    "INV703", "branch-step-out-of-bounds", Severity.ERROR, "invariants",
    "A branch-dependent variable's observed per-iteration delta falls "
    "outside the [min step, max step] bound claimed by its per-path "
    "summary.",
)
