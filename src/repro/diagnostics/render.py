"""Render diagnostics as human-readable text or machine-readable JSON."""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence

from repro.diagnostics.diagnostic import Diagnostic, Severity
from repro.diagnostics.registry import check_info


def render_diagnostic(diagnostic: Diagnostic) -> str:
    """One line: ``origin: location: severity CODE [stage]: message``."""
    parts: List[str] = []
    if diagnostic.origin:
        parts.append(f"{diagnostic.origin}:")
    location = diagnostic.located()
    if location:
        parts.append(f"{location}:")
    head = f"{diagnostic.severity} {diagnostic.code}"
    if diagnostic.stage:
        head += f" [{diagnostic.stage}]"
    parts.append(f"{head}:")
    parts.append(diagnostic.message)
    line = " ".join(parts)
    if diagnostic.hint:
        line += f"\n    hint: {diagnostic.hint}"
    return line


def render_text(diagnostics: Sequence[Diagnostic], summary: bool = True) -> str:
    """All diagnostics, sorted, plus a per-severity summary line."""
    ordered = sorted(diagnostics, key=Diagnostic.sort_key)
    lines = [render_diagnostic(d) for d in ordered]
    if summary:
        lines.append(render_summary(ordered))
    return "\n".join(lines)


def render_summary(diagnostics: Sequence[Diagnostic]) -> str:
    counts: Dict[Severity, int] = {}
    for diagnostic in diagnostics:
        counts[diagnostic.severity] = counts.get(diagnostic.severity, 0) + 1
    if not counts:
        return "no findings"
    parts = [
        f"{counts[severity]} {severity}{'s' if counts[severity] != 1 else ''}"
        for severity in sorted(counts, reverse=True)
    ]
    return ", ".join(parts)


def render_json(diagnostics: Sequence[Diagnostic], indent: int = 2) -> str:
    """A JSON document: findings plus the registry titles they refer to."""
    ordered = sorted(diagnostics, key=Diagnostic.sort_key)
    payload = {
        "findings": [d.to_dict() for d in ordered],
        "counts": _count_by_severity(ordered),
        "codes": {
            code: check_info(code).title
            for code in sorted({d.code for d in ordered})
        },
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def _count_by_severity(diagnostics: Iterable[Diagnostic]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for diagnostic in diagnostics:
        key = str(diagnostic.severity)
        counts[key] = counts.get(key, 0) + 1
    return counts
