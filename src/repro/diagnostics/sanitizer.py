"""The pipeline sanitizer: re-verify the IR after every pass.

PR 1 made :meth:`repro.ir.function.Function.definitions` and
:meth:`~repro.ir.function.Function.def_site` cached indexes whose
invalidation rests on a contract: every mutating pass calls
:meth:`~repro.ir.function.Function.dirty`.  The structural fingerprint
catches insertions and deletions automatically, but a same-size in-place
*move* or *rename* that skips ``dirty()`` silently serves stale analysis
results.  The sanitizer is the opt-in safety harness for that contract
(and for SSA form in general): under an active :func:`sanitizing` context,
every :func:`checkpoint` placed in ``pipeline.analyze`` and at the end of
each transform re-runs the collect-all verifier *and* cross-checks both
cached indexes against a fresh recomputation.

Usage::

    from repro.diagnostics import sanitizing

    with sanitizing():                   # strict: raise on first violation
        program = analyze(source)

    collector = DiagnosticCollector()
    with sanitizing(strict=False, collector=collector):
        hoist_invariants(fn, analysis, loop)
    print(collector.codes())             # e.g. ['SAN202']

Checkpoints are no-ops when no context is active, so leaving them wired
into the hot path costs one global read per pass.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.diagnostics.diagnostic import Diagnostic, DiagnosticCollector, Severity
from repro.diagnostics.verifier import verify_collect
from repro.ir.function import Function
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace


class SanitizerError(Exception):
    """Raised by a strict checkpoint; carries the diagnostics found."""

    def __init__(self, stage: str, diagnostics: List[Diagnostic]):
        self.stage = stage
        self.diagnostics = diagnostics
        lines = "; ".join(d.message for d in diagnostics[:5])
        super().__init__(f"sanitizer failed after {stage!r}: {lines}")


@dataclass
class SanitizerState:
    collector: DiagnosticCollector
    strict: bool = True
    ssa_checks: bool = True
    stages: List[str] = field(default_factory=list)


_STATE: Optional[SanitizerState] = None


def active() -> bool:
    """True when a :func:`sanitizing` context is live."""
    return _STATE is not None


def current_collector() -> Optional[DiagnosticCollector]:
    return _STATE.collector if _STATE is not None else None


def stages_run() -> List[str]:
    """The checkpoint stages observed by the active context (for tests)."""
    return list(_STATE.stages) if _STATE is not None else []


@contextmanager
def sanitizing(
    strict: bool = True,
    collector: Optional[DiagnosticCollector] = None,
    ssa_checks: bool = True,
):
    """Activate the sanitizer for the dynamic extent of the block.

    ``strict`` raises :class:`SanitizerError` at the first checkpoint that
    finds an error-severity diagnostic; with ``strict=False`` everything
    accumulates in ``collector``.  Contexts do not nest: an inner
    ``sanitizing()`` inside an active one reuses the outer state.
    """
    global _STATE
    if _STATE is not None:
        yield _STATE.collector
        return
    state = SanitizerState(
        collector=collector if collector is not None else DiagnosticCollector(),
        strict=strict,
        ssa_checks=ssa_checks,
    )
    _STATE = state
    try:
        yield state.collector
    finally:
        _STATE = None


def checkpoint(function: Function, stage: str, ssa: bool = True) -> List[Diagnostic]:
    """Verify ``function`` and audit its caches, if a context is active.

    Returns the diagnostics found at this checkpoint (empty when inactive
    or clean).  ``ssa=False`` limits verification to structural checks
    (for passes that run on named, pre-SSA IR).
    """
    state = _STATE
    if state is None:
        return []
    state.stages.append(stage)
    _metrics.inc("sanitizer.checkpoints")
    _trace.event("sanitizer.checkpoint", stage=stage, function=function.name)
    found: List[Diagnostic] = []
    for diagnostic in verify_collect(function, ssa=ssa and state.ssa_checks):
        if diagnostic.code == "IR006" and (diagnostic.block or "").startswith("dead"):
            # the frontend parks unreachable code after break/continue/return
            # in `dead*` landing blocks; SSA construction prunes them, so
            # flagging them at pre-SSA checkpoints would be pure noise
            continue
        found.append(diagnostic.with_stage(stage))
    if any(d.severity >= Severity.ERROR for d in found):
        found.append(
            Diagnostic(
                code="SAN203",
                severity=Severity.ERROR,
                message=f"{function.name}: IR failed verification after pass {stage!r}",
                function=function.name,
                stage=stage,
            )
        )
    found.extend(d.with_stage(stage) for d in audit_caches(function))
    state.collector.extend(found)
    if state.strict and any(d.severity >= Severity.ERROR for d in found):
        raise SanitizerError(stage, found)
    return found


def audit_caches(function: Function) -> List[Diagnostic]:
    """Cross-check the cached definition indexes against fresh recomputes.

    Catches mutations that skipped :meth:`Function.dirty`: the cached
    ``definitions()`` / ``def_site()`` answers must agree exactly with a
    from-scratch walk of the instruction lists.
    """
    out = DiagnosticCollector()
    fname = function.name
    fresh_defs: Dict[str, tuple] = {}
    fresh_sites: Dict[str, Tuple[str, int]] = {}
    for block in function:
        for position, inst in enumerate(block.instructions):
            if inst.result is not None:
                fresh_defs[inst.result] = (block.label, inst)
                fresh_sites[inst.result] = (block.label, position)

    cached_defs = function.definitions()
    if cached_defs != fresh_defs:
        missing = sorted(set(fresh_defs) - set(cached_defs))
        spurious = sorted(set(cached_defs) - set(fresh_defs))
        moved = sorted(
            name
            for name in set(fresh_defs) & set(cached_defs)
            if cached_defs[name] != fresh_defs[name]
        )
        details = []
        if missing:
            details.append(f"missing {missing[:4]}")
        if spurious:
            details.append(f"spurious {spurious[:4]}")
        if moved:
            details.append(f"stale {moved[:4]}")
        out.emit(
            "SAN201",
            f"{fname}: cached definitions() is stale ({'; '.join(details)})",
            function=fname,
            name=(missing + spurious + moved or [None])[0],
            hint="a mutating pass changed instructions without calling Function.dirty()",
        )

    stale_sites = []
    for name in sorted(set(fresh_sites) | set(cached_defs)):
        if function.def_site(name) != fresh_sites.get(name):
            stale_sites.append(name)
    if stale_sites:
        out.emit(
            "SAN202",
            f"{fname}: cached def_site() is stale for {stale_sites[:6]}",
            function=fname,
            name=stale_sites[0],
            hint="a mutating pass moved or renamed instructions without "
            "calling Function.dirty()",
        )
    return out.diagnostics
