"""Collect-all IR verifier.

The original ``repro.ir.verify`` raised :class:`~repro.ir.function.IRError`
on the *first* problem; this module reports *every* problem as a
:class:`~repro.diagnostics.diagnostic.Diagnostic` so a broken pass can be
diagnosed in one run.  ``repro.ir.verify.verify_function`` remains as the
raise-on-first compatibility wrapper on top of :func:`verify_collect`.

Checks, in emission order:

* structural (any IR): blocks exist, entry exists, branch targets resolve,
  every block has a terminator, phis form a block prefix, no phi in the
  entry block, every block is reachable.
* SSA (``ssa=True``, only when the structure is sound): unique
  definitions, no parameter shadowing, phi arity matches predecessors,
  no self-referential non-phi definitions, every use dominated by its
  definition (phi uses checked at the incoming edge's predecessor), no
  references to names that are defined nowhere.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.diagnostics.diagnostic import Diagnostic, DiagnosticCollector, Severity
from repro.ir.function import Function
from repro.ir.instructions import Phi, Ref


def verify_collect(
    function: Function,
    ssa: bool = False,
    collector: Optional[DiagnosticCollector] = None,
) -> List[Diagnostic]:
    """Run every applicable check; return the full list of findings.

    When ``collector`` is given, findings are also appended to it.  SSA
    checks are skipped if structural *errors* were found (the CFG is not
    trustworthy enough to compute dominators on).
    """
    out = collector if collector is not None else DiagnosticCollector()
    start = len(out.diagnostics)
    _check_structure(function, out)
    structural_errors = any(
        d.severity >= Severity.ERROR for d in out.diagnostics[start:]
    )
    if ssa and not structural_errors:
        _check_ssa(function, out)
    return out.diagnostics[start:]


# ----------------------------------------------------------------------
# structural checks
# ----------------------------------------------------------------------
def _check_structure(function: Function, out: DiagnosticCollector) -> None:
    fname = function.name
    if not function.blocks:
        out.emit("IR001", f"{fname}: function has no blocks", function=fname)
        return
    if function.entry_label not in function.blocks:
        out.emit(
            "IR002",
            f"{fname}: entry label {function.entry_label!r} missing",
            function=fname,
        )

    for block in function:
        for succ in block.successors():
            if succ not in function.blocks:
                out.emit(
                    "IR003",
                    f"block {block.label!r} targets unknown label {succ!r}",
                    function=fname,
                    block=block.label,
                )

    for block in function:
        if block.terminator is None:
            out.emit(
                "IR004",
                f"{fname}/{block.label}: missing terminator",
                function=fname,
                block=block.label,
            )
        seen_non_phi = False
        for inst in block:
            if isinstance(inst, Phi):
                if seen_non_phi:
                    out.emit(
                        "IR005",
                        f"{fname}/{block.label}: phi after non-phi instruction",
                        function=fname,
                        block=block.label,
                        name=inst.result,
                    )
            else:
                seen_non_phi = True

    entry = function.entry_label
    if entry in function.blocks:
        for phi in function.blocks[entry].phis():
            out.emit(
                "IR007",
                f"{fname}/{entry}: phi %{phi.result} in entry block "
                "(the entry has no predecessors)",
                function=fname,
                block=entry,
                name=phi.result,
                hint="phis merge predecessor values; the entry block has none",
            )
        for label in sorted(_unreachable_blocks(function)):
            out.emit(
                "IR006",
                f"{fname}/{label}: block unreachable from entry",
                function=fname,
                block=label,
                hint="delete the block or add an edge reaching it",
            )


def _unreachable_blocks(function: Function) -> Set[str]:
    if function.entry_label not in function.blocks:
        return set(function.blocks)
    seen: Set[str] = set()
    stack = [function.entry_label]
    while stack:
        label = stack.pop()
        if label in seen:
            continue
        seen.add(label)
        block = function.blocks.get(label)
        if block is None:
            continue
        for succ in block.successors():
            if succ in function.blocks and succ not in seen:
                stack.append(succ)
    return set(function.blocks) - seen


# ----------------------------------------------------------------------
# SSA checks
# ----------------------------------------------------------------------
def _check_ssa(function: Function, out: DiagnosticCollector) -> None:
    from repro.analysis.dominators import dominator_tree

    fname = function.name
    preds = {label: [] for label in function.blocks}
    for block in function:
        for succ in block.successors():
            preds[succ].append(block.label)

    # unique definitions / parameter shadowing
    defined_in: Dict[str, str] = {}
    def_site: Dict[str, tuple] = {}
    for block in function:
        for position, inst in enumerate(block.instructions):
            if inst.result is None:
                continue
            if inst.result in defined_in:
                out.emit(
                    "IR101",
                    f"{fname}: {inst.result!r} defined in both "
                    f"{defined_in[inst.result]!r} and {block.label!r}",
                    function=fname,
                    block=block.label,
                    name=inst.result,
                )
            else:
                defined_in[inst.result] = block.label
                def_site[inst.result] = (block.label, position)
            if inst.result in function.params:
                out.emit(
                    "IR102",
                    f"{fname}: {inst.result!r} shadows a parameter",
                    function=fname,
                    block=block.label,
                    name=inst.result,
                )

    # phi arity matches predecessors
    for block in function:
        block_preds = set(preds[block.label])
        for phi in block.phis():
            incoming = set(phi.incoming)
            if incoming != block_preds:
                out.emit(
                    "IR103",
                    f"{fname}/{block.label}: phi %{phi.result} incoming "
                    f"{sorted(incoming)} != predecessors {sorted(block_preds)}",
                    function=fname,
                    block=block.label,
                    name=phi.result,
                )

    # self-referential non-phi definitions (remembered so the dominance
    # sweep below skips them without re-scanning the uses)
    self_referential: Set[int] = set()
    for block in function:
        for inst in block:
            if isinstance(inst, Phi) or inst.result is None:
                continue
            result = inst.result
            for v in inst.uses():
                if isinstance(v, Ref) and v.name == result:
                    self_referential.add(id(inst))
                    out.emit(
                        "IR108",
                        f"{fname}/{block.label}: %{result} uses its own result "
                        "(only phis may be self-referential in SSA)",
                        function=fname,
                        block=block.label,
                        name=result,
                    )
                    break

    # dominance of uses
    domtree = dominator_tree(function)
    reachable = set(function.blocks) - _unreachable_blocks(function)

    def dominates_use(name: str, use_block: str, use_position: int) -> Optional[bool]:
        """True/False, or None when the name is defined nowhere (IR107)."""
        if name in function.params:
            return True
        if name not in def_site:
            return None
        def_block, def_position = def_site[name]
        if def_block == use_block:
            return def_position < use_position
        if def_block not in reachable or use_block not in reachable:
            return True  # IR006 already covers unreachable code
        return domtree.dominates(def_block, use_block)

    def check_use(name: str, use_block: str, use_position: int, code: str, message: str) -> None:
        verdict = dominates_use(name, use_block, use_position)
        if verdict is None:
            out.emit(
                "IR107",
                f"{fname}/{use_block}: use of %{name}, which is defined nowhere",
                function=fname,
                block=use_block,
                name=name,
            )
        elif not verdict:
            out.emit(code, message, function=fname, block=use_block, name=name)

    for block in function:
        for position, inst in enumerate(block.instructions):
            if isinstance(inst, Phi):
                for pred_label, value in inst.incoming.items():
                    if not isinstance(value, Ref) or pred_label not in function.blocks:
                        continue
                    pred_block = function.block(pred_label)
                    check_use(
                        value.name,
                        pred_label,
                        len(pred_block.instructions) + 1,
                        "IR105",
                        f"{fname}/{block.label}: phi %{inst.result} uses "
                        f"%{value.name} not available on edge from {pred_label!r}",
                    )
                continue
            if id(inst) in self_referential:
                continue  # already reported as IR108; dominance is moot
            for value in inst.uses():
                if isinstance(value, Ref):
                    check_use(
                        value.name,
                        block.label,
                        position,
                        "IR104",
                        f"{fname}/{block.label}: use of %{value.name} "
                        "not dominated by its definition",
                    )
        terminator = block.terminator
        if terminator is not None:
            for value in terminator.uses():
                if isinstance(value, Ref):
                    check_use(
                        value.name,
                        block.label,
                        len(block.instructions),
                        "IR106",
                        f"{fname}/{block.label}: terminator uses %{value.name} "
                        "not dominated by its definition",
                    )
