"""Frontend for a small structured loop language.

The paper's examples are written in a Fortran-flavoured pseudocode
(``loop/endloop``, ``for i = 1 to n loop``, ``if/endif``).  This frontend
accepts exactly that shape of program, e.g.::

    iml = n
    L9: for i = 1 to n do
      A[i] = A[iml] + 1
      iml = i
    endfor

Variables read before any assignment (like ``n`` above) become function
parameters; names used with ``[...]`` are arrays.  Loops may be labelled
(``L9:``) and the label becomes the loop-header block label, so analysis
results read like the paper's ("``iml.2`` is a wrap-around variable of
``L9``").

Pipeline: :func:`parse_program` -> AST -> :func:`lower_program` -> named IR.
"""

from repro.frontend.lexer import Token, TokenKind, tokenize, FrontendError
from repro.frontend.ast import (
    ArrayRef,
    Assign,
    BinaryExpr,
    BoolExpr,
    Break,
    CompareExpr,
    ForLoop,
    If,
    IntLit,
    Loop,
    Name,
    NotExpr,
    Program,
    Return,
    Statement,
    StoreStmt,
    UnaryExpr,
    WhileLoop,
)
from repro.frontend.parser import parse_program
from repro.frontend.lower import lower_program
from repro.frontend.source import compile_source

__all__ = [
    "Token",
    "TokenKind",
    "tokenize",
    "FrontendError",
    "ArrayRef",
    "Assign",
    "BinaryExpr",
    "BoolExpr",
    "Break",
    "CompareExpr",
    "ForLoop",
    "If",
    "IntLit",
    "Loop",
    "Name",
    "NotExpr",
    "Program",
    "Return",
    "Statement",
    "StoreStmt",
    "UnaryExpr",
    "WhileLoop",
    "parse_program",
    "lower_program",
    "compile_source",
]
