"""Abstract syntax of the loop language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
class Expression:
    """Base class for arithmetic expressions."""


@dataclass(frozen=True)
class IntLit(Expression):
    value: int


@dataclass(frozen=True)
class Name(Expression):
    name: str


@dataclass(frozen=True)
class ArrayRef(Expression):
    array: str
    indices: Tuple[Expression, ...]


@dataclass(frozen=True)
class BinaryExpr(Expression):
    op: str  # '+', '-', '*', '/', '%', '**'
    lhs: Expression
    rhs: Expression


@dataclass(frozen=True)
class UnaryExpr(Expression):
    op: str  # '-'
    operand: Expression


# ----------------------------------------------------------------------
# conditions
# ----------------------------------------------------------------------
class Condition:
    """Base class for boolean conditions (short-circuit lowered)."""


@dataclass(frozen=True)
class CompareExpr(Condition):
    relation: str  # '<', '<=', '>', '>=', '==', '!='
    lhs: Expression
    rhs: Expression


@dataclass(frozen=True)
class BoolExpr(Condition):
    op: str  # 'and' | 'or'
    lhs: Condition
    rhs: Condition


@dataclass(frozen=True)
class NotExpr(Condition):
    operand: Condition


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------
class Statement:
    """Base class for statements."""


@dataclass
class Assign(Statement):
    target: str
    value: Expression


@dataclass
class StoreStmt(Statement):
    array: str
    indices: Tuple[Expression, ...]
    value: Expression


@dataclass
class If(Statement):
    condition: Condition
    then_body: List[Statement]
    else_body: List[Statement] = field(default_factory=list)


@dataclass
class Loop(Statement):
    """``loop ... endloop``: exits only via ``break``/``return``."""

    body: List[Statement]
    label: Optional[str] = None


@dataclass
class WhileLoop(Statement):
    condition: Condition
    body: List[Statement]
    label: Optional[str] = None


@dataclass
class ForLoop(Statement):
    var: str
    start: Expression
    stop: Expression
    body: List[Statement]
    downward: bool = False
    step: Optional[Expression] = None  # default 1 (or -1 when downward)
    label: Optional[str] = None


@dataclass
class Break(Statement):
    pass


@dataclass
class Continue(Statement):
    pass


@dataclass
class Return(Statement):
    value: Optional[Expression] = None


@dataclass
class AssumeStmt(Statement):
    """``assume n <= 50``: a range fact about a parameter, no code."""

    name: str
    relation: str  # '<', '<=', '>', '>=', '=='
    bound: int


@dataclass
class ArrayDecl(Statement):
    """``array A[10]`` / ``array A[n, 20]``: declared extents, no code."""

    array: str
    extents: Tuple[object, ...]  # int literals or parameter names


@dataclass
class Program:
    body: List[Statement]
