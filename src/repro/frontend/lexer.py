"""Tokenizer for the loop language."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List


class FrontendError(Exception):
    """Raised for lexical and syntactic errors, with source position."""

    def __init__(self, line: int, column: int, message: str):
        super().__init__(f"{line}:{column}: {message}")
        self.line = line
        self.column = column


class TokenKind(enum.Enum):
    NAME = "name"
    NUMBER = "number"
    KEYWORD = "keyword"
    OP = "op"
    NEWLINE = "newline"
    EOF = "eof"


KEYWORDS = {
    "loop",
    "endloop",
    "for",
    "endfor",
    "to",
    "downto",
    "by",
    "do",
    "while",
    "endwhile",
    "if",
    "then",
    "else",
    "endif",
    "break",
    "continue",
    "return",
    "and",
    "or",
    "not",
    "mod",
    "assume",
    "array",
}

# multi-character operators first (longest match wins)
_OPERATORS = [
    "**",
    "<=",
    ">=",
    "==",
    "!=",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "(",
    ")",
    "[",
    "]",
    ",",
    ":",
]


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind.value}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Tokenize; newlines are significant (statement separators)."""
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            # collapse consecutive newlines into one token
            if tokens and tokens[-1].kind is not TokenKind.NEWLINE:
                tokens.append(Token(TokenKind.NEWLINE, "\n", line, column))
            i += 1
            line += 1
            column = 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isdigit():
            start = i
            while i < n and source[i].isdigit():
                i += 1
            tokens.append(Token(TokenKind.NUMBER, source[start:i], line, column))
            column += i - start
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] == "_"):
                i += 1
            text = source[start:i]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.NAME
            tokens.append(Token(kind, text, line, column))
            column += i - start
            continue
        for op in _OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token(TokenKind.OP, op, line, column))
                i += len(op)
                column += len(op)
                break
        else:
            raise FrontendError(line, column, f"unexpected character {ch!r}")
    if tokens and tokens[-1].kind is not TokenKind.NEWLINE:
        tokens.append(Token(TokenKind.NEWLINE, "\n", line, column))
    tokens.append(Token(TokenKind.EOF, "", line, column))
    return tokens
