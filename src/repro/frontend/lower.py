"""Lowering: AST -> named (pre-SSA) IR.

Conventions that matter to the rest of the system:

* Loop labels from the source (``L18: loop``) become the loop-header block
  labels, so the classifier's results are phrased exactly like the paper's
  (``(L18, 1, 1)``).
* ``for v = lo to hi`` evaluates ``hi`` into a temporary *before* the loop
  header (once per loop entry), tests ``v <= hi`` (or ``>=`` for ``downto``)
  at the header, and increments in a dedicated latch block.  The exit test
  therefore precedes all body code, giving the classical countable-loop
  shape of section 5.2.
* ``loop ... endloop`` only exits through ``break``; a ``break`` guarded by
  ``if`` reproduces the paper's mid-loop exits (Figure 7), where code above
  the exit runs one more time than code below it.
* Temporaries are named ``$tN`` -- the ``$`` cannot appear in source
  identifiers, so there are no collisions.
* Variables read before any (syntactically preceding) assignment become
  function parameters; names indexed with ``[...]`` become arrays.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.frontend import ast
from repro.frontend.lexer import FrontendError
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Assign,
    BinOp,
    Branch,
    Compare,
    Jump,
    Load,
    Return,
    Store,
    UnOp,
)
from repro.ir.opcodes import BinaryOp, Relation
from repro.ir.values import Const, Ref, Value

from repro.obs.trace import traced
from repro.resilience.faultinject import fault_point

_BINOPS = {
    "+": BinaryOp.ADD,
    "-": BinaryOp.SUB,
    "*": BinaryOp.MUL,
    "/": BinaryOp.DIV,
    "%": BinaryOp.MOD,
    "**": BinaryOp.EXP,
}

_RELATIONS = {
    "<": Relation.LT,
    "<=": Relation.LE,
    ">": Relation.GT,
    ">=": Relation.GE,
    "==": Relation.EQ,
    "!=": Relation.NE,
}


def analyze_names(program: ast.Program) -> Tuple[List[str], List[str]]:
    """Infer (params, arrays) from use order, as documented above."""
    params: List[str] = []
    arrays: List[str] = []
    written: Set[str] = set()

    def note_read(name: str) -> None:
        if name not in written and name not in params:
            params.append(name)

    def note_array(name: str) -> None:
        if name not in arrays:
            arrays.append(name)

    def walk_expr(expr: ast.Expression) -> None:
        if isinstance(expr, ast.Name):
            note_read(expr.name)
        elif isinstance(expr, ast.ArrayRef):
            note_array(expr.array)
            for index in expr.indices:
                walk_expr(index)
        elif isinstance(expr, ast.BinaryExpr):
            walk_expr(expr.lhs)
            walk_expr(expr.rhs)
        elif isinstance(expr, ast.UnaryExpr):
            walk_expr(expr.operand)

    def walk_cond(cond: ast.Condition) -> None:
        if isinstance(cond, ast.CompareExpr):
            walk_expr(cond.lhs)
            walk_expr(cond.rhs)
        elif isinstance(cond, ast.BoolExpr):
            walk_cond(cond.lhs)
            walk_cond(cond.rhs)
        elif isinstance(cond, ast.NotExpr):
            walk_cond(cond.operand)

    def walk_body(body: List[ast.Statement]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Assign):
                walk_expr(stmt.value)
                written.add(stmt.target)
            elif isinstance(stmt, ast.StoreStmt):
                note_array(stmt.array)
                for index in stmt.indices:
                    walk_expr(index)
                walk_expr(stmt.value)
            elif isinstance(stmt, ast.If):
                walk_cond(stmt.condition)
                walk_body(stmt.then_body)
                walk_body(stmt.else_body)
            elif isinstance(stmt, ast.Loop):
                walk_body(stmt.body)
            elif isinstance(stmt, ast.WhileLoop):
                walk_cond(stmt.condition)
                walk_body(stmt.body)
            elif isinstance(stmt, ast.ForLoop):
                walk_expr(stmt.start)
                walk_expr(stmt.stop)
                if stmt.step is not None:
                    walk_expr(stmt.step)
                written.add(stmt.var)
                walk_body(stmt.body)
            elif isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    walk_expr(stmt.value)
            elif isinstance(stmt, ast.AssumeStmt):
                note_read(stmt.name)
            elif isinstance(stmt, ast.ArrayDecl):
                note_array(stmt.array)
                for extent in stmt.extents:
                    if isinstance(extent, str):
                        note_read(extent)

    walk_body(program.body)
    clash = set(params) & set(arrays)
    if clash:
        raise FrontendError(0, 0, f"names used as both scalar and array: {sorted(clash)}")
    return params, arrays


class _Lowerer:
    def __init__(self, name: str, program: ast.Program):
        params, arrays = analyze_names(program)
        self.function = Function(name, params=params, arrays=arrays)
        self.arrays = set(arrays)
        self.scalars: Set[str] = set(params)
        self.current: BasicBlock = self.function.add_block("entry")
        self.temp_counter = 0
        self.loop_counter = 0
        self.exit_stack: List[str] = []  # break targets
        self.continue_stack: List[str] = []  # continue targets (latch/header)

    # ------------------------------------------------------------------
    def temp(self) -> str:
        self.temp_counter += 1
        return f"$t{self.temp_counter}"

    def new_block(self, hint: str) -> BasicBlock:
        return self.function.add_block(self.function.fresh_label(hint))

    def set_current(self, block: BasicBlock) -> None:
        self.current = block

    def loop_label(self, user_label: Optional[str]) -> str:
        if user_label is not None:
            if user_label in self.function.blocks:
                raise FrontendError(0, 0, f"duplicate loop label {user_label!r}")
            return user_label
        self.loop_counter += 1
        return self.function.fresh_label(f"loop{self.loop_counter}")

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def lower_expr(self, expr: ast.Expression, target: Optional[str] = None) -> Value:
        """Lower ``expr``; if ``target`` is given, the result is stored there."""
        if isinstance(expr, ast.IntLit):
            value: Value = Const(expr.value)
            if target is not None:
                self.current.append(Assign(target, value))
                return Ref(target)
            return value
        if isinstance(expr, ast.Name):
            if expr.name in self.arrays:
                raise FrontendError(0, 0, f"array {expr.name!r} used as a scalar")
            self.scalars.add(expr.name)
            value = Ref(expr.name)
            if target is not None:
                self.current.append(Assign(target, value))
                return Ref(target)
            return value
        if isinstance(expr, ast.ArrayRef):
            indices = [self.lower_expr(i) for i in expr.indices]
            result = target if target is not None else self.temp()
            self.current.append(Load(result, expr.array, indices))
            return Ref(result)
        if isinstance(expr, ast.BinaryExpr):
            lhs = self.lower_expr(expr.lhs)
            rhs = self.lower_expr(expr.rhs)
            result = target if target is not None else self.temp()
            self.current.append(BinOp(result, _BINOPS[expr.op], lhs, rhs))
            return Ref(result)
        if isinstance(expr, ast.UnaryExpr):
            operand = self.lower_expr(expr.operand)
            if isinstance(operand, Const):
                value = Const(-operand.value)
                if target is not None:
                    self.current.append(Assign(target, value))
                    return Ref(target)
                return value
            result = target if target is not None else self.temp()
            self.current.append(UnOp(result, operand))
            return Ref(result)
        raise FrontendError(0, 0, f"cannot lower expression {expr!r}")

    # ------------------------------------------------------------------
    # conditions (short-circuit)
    # ------------------------------------------------------------------
    def lower_condition(self, cond: ast.Condition, true_label: str, false_label: str) -> None:
        if isinstance(cond, ast.CompareExpr):
            lhs = self.lower_expr(cond.lhs)
            rhs = self.lower_expr(cond.rhs)
            result = self.temp()
            self.current.append(Compare(result, _RELATIONS[cond.relation], lhs, rhs))
            self.current.terminator = Branch(Ref(result), true_label, false_label)
            return
        if isinstance(cond, ast.NotExpr):
            self.lower_condition(cond.operand, false_label, true_label)
            return
        if isinstance(cond, ast.BoolExpr):
            if cond.op == "and":
                mid = self.new_block("and")
                self.lower_condition(cond.lhs, mid.label, false_label)
                self.set_current(mid)
                self.lower_condition(cond.rhs, true_label, false_label)
            else:
                mid = self.new_block("or")
                self.lower_condition(cond.lhs, true_label, mid.label)
                self.set_current(mid)
                self.lower_condition(cond.rhs, true_label, false_label)
            return
        raise FrontendError(0, 0, f"cannot lower condition {cond!r}")

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def lower_body(self, body: List[ast.Statement]) -> None:
        for stmt in body:
            self.lower_statement(stmt)

    def lower_statement(self, stmt: ast.Statement) -> None:
        if isinstance(stmt, ast.Assign):
            if stmt.target in self.arrays:
                raise FrontendError(0, 0, f"array {stmt.target!r} assigned as a scalar")
            self.scalars.add(stmt.target)
            self.lower_expr(stmt.value, target=stmt.target)
        elif isinstance(stmt, ast.StoreStmt):
            indices = [self.lower_expr(i) for i in stmt.indices]
            value = self.lower_expr(stmt.value)
            self.current.append(Store(stmt.array, indices, value))
        elif isinstance(stmt, ast.If):
            self.lower_if(stmt)
        elif isinstance(stmt, ast.Loop):
            self.lower_loop(stmt)
        elif isinstance(stmt, ast.WhileLoop):
            self.lower_while(stmt)
        elif isinstance(stmt, ast.ForLoop):
            self.lower_for(stmt)
        elif isinstance(stmt, ast.Break):
            if not self.exit_stack:
                raise FrontendError(0, 0, "break outside of a loop")
            self.current.terminator = Jump(self.exit_stack[-1])
            self.set_current(self.new_block("dead"))
        elif isinstance(stmt, ast.Continue):
            if not self.continue_stack:
                raise FrontendError(0, 0, "continue outside of a loop")
            self.current.terminator = Jump(self.continue_stack[-1])
            self.set_current(self.new_block("dead"))
        elif isinstance(stmt, ast.Return):
            value = self.lower_expr(stmt.value) if stmt.value is not None else None
            self.current.terminator = Return(value)
            self.set_current(self.new_block("dead"))
        elif isinstance(stmt, ast.AssumeStmt):
            # declarations, not code: recorded as function metadata
            if stmt.name in self.arrays:
                raise FrontendError(0, 0, f"cannot assume a range for array {stmt.name!r}")
            self.function.assumptions.append((stmt.name, stmt.relation, stmt.bound))
        elif isinstance(stmt, ast.ArrayDecl):
            if stmt.array not in self.arrays:
                self.arrays.add(stmt.array)
                self.function.arrays.append(stmt.array)
            self.function.array_extents[stmt.array] = stmt.extents
        else:
            raise FrontendError(0, 0, f"cannot lower statement {stmt!r}")

    def lower_if(self, stmt: ast.If) -> None:
        then_block = self.new_block("then")
        join_block = self.new_block("endif")
        if stmt.else_body:
            else_block = self.new_block("else")
            self.lower_condition(stmt.condition, then_block.label, else_block.label)
            self.set_current(else_block)
            self.lower_body(stmt.else_body)
            self.current.terminator = Jump(join_block.label)
        else:
            self.lower_condition(stmt.condition, then_block.label, join_block.label)
        self.set_current(then_block)
        self.lower_body(stmt.then_body)
        self.current.terminator = Jump(join_block.label)
        self.set_current(join_block)

    def lower_loop(self, stmt: ast.Loop) -> None:
        header_label = self.loop_label(stmt.label)
        header = self.function.add_block(header_label)
        exit_block = self.new_block(f"{header_label}.exit")
        self.current.terminator = Jump(header_label)
        self.set_current(header)
        self.exit_stack.append(exit_block.label)
        self.continue_stack.append(header_label)
        self.lower_body(stmt.body)
        self.continue_stack.pop()
        self.exit_stack.pop()
        self.current.terminator = Jump(header_label)
        self.set_current(exit_block)

    def lower_while(self, stmt: ast.WhileLoop) -> None:
        header_label = self.loop_label(stmt.label)
        header = self.function.add_block(header_label)
        body_block = self.new_block(f"{header_label}.body")
        exit_block = self.new_block(f"{header_label}.exit")
        self.current.terminator = Jump(header_label)
        self.set_current(header)
        self.lower_condition(stmt.condition, body_block.label, exit_block.label)
        self.set_current(body_block)
        self.exit_stack.append(exit_block.label)
        self.continue_stack.append(header_label)
        self.lower_body(stmt.body)
        self.continue_stack.pop()
        self.exit_stack.pop()
        self.current.terminator = Jump(header_label)
        self.set_current(exit_block)

    def lower_for(self, stmt: ast.ForLoop) -> None:
        if stmt.var in self.arrays:
            raise FrontendError(0, 0, f"array {stmt.var!r} used as a loop variable")
        self.scalars.add(stmt.var)
        # initial value and (once-evaluated) limit & step
        self.lower_expr(stmt.start, target=stmt.var)
        limit = self.lower_expr(stmt.stop)
        if isinstance(limit, Ref) and not limit.name.startswith("$"):
            # copy into a temp so reassignment of the limit variable in the
            # body does not change the loop bound (Fortran DO semantics)
            fresh = self.temp()
            self.current.append(Assign(fresh, limit))
            limit = Ref(fresh)
        if stmt.step is not None:
            step = self.lower_expr(stmt.step)
        else:
            step = Const(-1) if stmt.downward else Const(1)
        if isinstance(step, Ref) and not step.name.startswith("$"):
            fresh = self.temp()
            self.current.append(Assign(fresh, step))
            step = Ref(fresh)

        header_label = self.loop_label(stmt.label)
        header = self.function.add_block(header_label)
        body_block = self.new_block(f"{header_label}.body")
        latch_block = self.new_block(f"{header_label}.latch")
        exit_block = self.new_block(f"{header_label}.exit")

        self.current.terminator = Jump(header_label)
        self.set_current(header)
        relation = Relation.GE if stmt.downward else Relation.LE
        cond = self.temp()
        self.current.append(Compare(cond, relation, Ref(stmt.var), limit))
        self.current.terminator = Branch(Ref(cond), body_block.label, exit_block.label)

        self.set_current(body_block)
        self.exit_stack.append(exit_block.label)
        self.continue_stack.append(latch_block.label)
        self.lower_body(stmt.body)
        self.continue_stack.pop()
        self.exit_stack.pop()
        self.current.terminator = Jump(latch_block.label)

        self.set_current(latch_block)
        latch_block.append(BinOp(stmt.var, BinaryOp.ADD, Ref(stmt.var), step))
        latch_block.terminator = Jump(header_label)

        self.set_current(exit_block)


@traced("frontend.lower")
def lower_program(program: ast.Program, name: str = "main") -> Function:
    """Lower an AST to named IR (with a final implicit ``return``)."""
    fault_point("frontend.lower")
    lowerer = _Lowerer(name, program)
    lowerer.lower_body(program.body)
    if lowerer.current.terminator is None:
        lowerer.current.terminator = Return()
    # any dangling block (e.g. trailing dead block) gets a return
    for block in lowerer.function:
        if block.terminator is None:
            block.terminator = Return()
    from repro.ir.verify import verify_function

    verify_function(lowerer.function, ssa=False)
    return lowerer.function
