"""Recursive-descent parser for the loop language.

Grammar (newline-separated statements)::

    program  :=  { stmt NEWLINE }
    stmt     :=  [ NAME ':' ] loop | simple
    loop     :=  'loop' NEWLINE body 'endloop'
              |  'while' cond 'do' NEWLINE body 'endwhile'
              |  'for' NAME '=' expr ('to'|'downto') expr ['by' expr] 'do'
                     NEWLINE body 'endfor'
    simple   :=  NAME '=' expr
              |  NAME '[' expr ']' '=' expr
              |  'if' cond 'then' NEWLINE body ['else' NEWLINE body] 'endif'
              |  'break' | 'return' [expr]
              |  'assume' NAME REL ['-'] NUMBER
              |  'array' NAME '[' extent { ',' extent } ']'
    extent   :=  NUMBER | NAME
    cond     :=  orcond ;  orcond := andcond { 'or' andcond }
    andcond  :=  notcond { 'and' notcond }
    notcond  :=  'not' notcond | '(' cond ')' | expr REL expr
    expr     :=  term  { ('+'|'-') term }
    term     :=  factor { ('*'|'/'|'%'|'mod') factor }
    factor   :=  base [ '**' factor ]          (right associative)
    base     :=  NUMBER | NAME | NAME '[' expr ']' | '(' expr ')' | '-' base
"""

from __future__ import annotations

from typing import List, Optional

from repro.frontend import ast
from repro.frontend.lexer import FrontendError, Token, TokenKind, tokenize

from repro.obs.trace import traced
from repro.resilience.faultinject import fault_point

_RELATIONS = {"<", "<=", ">", ">=", "==", "!="}
_BLOCK_ENDERS = {"endloop", "endwhile", "endfor", "endif", "else"}


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def check(self, text: str) -> bool:
        token = self.peek()
        return token.kind in (TokenKind.KEYWORD, TokenKind.OP) and token.text == text

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.check(text):
            token = self.peek()
            raise FrontendError(
                token.line, token.column, f"expected {text!r}, found {token.text!r}"
            )
        return self.advance()

    def expect_name(self) -> str:
        token = self.peek()
        if token.kind is not TokenKind.NAME:
            raise FrontendError(
                token.line, token.column, f"expected a name, found {token.text!r}"
            )
        return self.advance().text

    def skip_newlines(self) -> None:
        while self.peek().kind is TokenKind.NEWLINE:
            self.advance()

    def end_statement(self) -> None:
        token = self.peek()
        if token.kind is TokenKind.NEWLINE:
            self.advance()
        elif token.kind is not TokenKind.EOF:
            raise FrontendError(
                token.line, token.column, f"unexpected {token.text!r} after statement"
            )

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def parse_program(self) -> ast.Program:
        body = self.parse_body(until=None)
        token = self.peek()
        if token.kind is not TokenKind.EOF:
            raise FrontendError(token.line, token.column, f"unexpected {token.text!r}")
        return ast.Program(body)

    def parse_body(self, until: Optional[set]) -> List[ast.Statement]:
        statements: List[ast.Statement] = []
        while True:
            self.skip_newlines()
            token = self.peek()
            if token.kind is TokenKind.EOF:
                if until:
                    raise FrontendError(
                        token.line, token.column, f"missing {sorted(until)}"
                    )
                return statements
            if until and token.kind is TokenKind.KEYWORD and token.text in until:
                return statements
            if token.kind is TokenKind.KEYWORD and token.text in _BLOCK_ENDERS:
                raise FrontendError(
                    token.line, token.column, f"unexpected {token.text!r}"
                )
            statements.append(self.parse_statement())

    def parse_statement(self) -> ast.Statement:
        label: Optional[str] = None
        if (
            self.peek().kind is TokenKind.NAME
            and self.peek(1).kind is TokenKind.OP
            and self.peek(1).text == ":"
        ):
            label = self.advance().text
            self.expect(":")
            self.skip_newlines()

        token = self.peek()
        if token.kind is TokenKind.KEYWORD:
            if token.text == "loop":
                return self.parse_loop(label)
            if token.text == "while":
                return self.parse_while(label)
            if token.text == "for":
                return self.parse_for(label)
            if label is not None:
                raise FrontendError(
                    token.line, token.column, "labels may only precede loops"
                )
            if token.text == "if":
                return self.parse_if()
            if token.text == "break":
                self.advance()
                self.end_statement()
                return ast.Break()
            if token.text == "continue":
                self.advance()
                self.end_statement()
                return ast.Continue()
            if token.text == "return":
                self.advance()
                if self.peek().kind in (TokenKind.NEWLINE, TokenKind.EOF):
                    self.end_statement()
                    return ast.Return(None)
                value = self.parse_expression()
                self.end_statement()
                return ast.Return(value)
            if token.text == "assume":
                return self.parse_assume()
            if token.text == "array":
                return self.parse_array_decl()
            raise FrontendError(token.line, token.column, f"unexpected {token.text!r}")
        if label is not None:
            raise FrontendError(token.line, token.column, "labels may only precede loops")
        return self.parse_assignment()

    def parse_loop(self, label: Optional[str]) -> ast.Loop:
        self.expect("loop")
        self.end_statement()
        body = self.parse_body({"endloop"})
        self.expect("endloop")
        self.end_statement()
        return ast.Loop(body, label=label)

    def parse_while(self, label: Optional[str]) -> ast.WhileLoop:
        self.expect("while")
        condition = self.parse_condition()
        self.expect("do")
        self.end_statement()
        body = self.parse_body({"endwhile"})
        self.expect("endwhile")
        self.end_statement()
        return ast.WhileLoop(condition, body, label=label)

    def parse_for(self, label: Optional[str]) -> ast.ForLoop:
        self.expect("for")
        var = self.expect_name()
        self.expect("=")
        start = self.parse_expression()
        downward = False
        if self.accept("to"):
            pass
        elif self.accept("downto"):
            downward = True
        else:
            token = self.peek()
            raise FrontendError(
                token.line, token.column, "expected 'to' or 'downto' in for loop"
            )
        stop = self.parse_expression()
        step = None
        if self.accept("by"):
            step = self.parse_expression()
        self.expect("do")
        self.end_statement()
        body = self.parse_body({"endfor"})
        self.expect("endfor")
        self.end_statement()
        return ast.ForLoop(var, start, stop, body, downward=downward, step=step, label=label)

    def parse_assume(self) -> ast.AssumeStmt:
        """``assume n <= 50``: a parameter fact consumed by repro.ranges."""
        self.expect("assume")
        name = self.expect_name()
        relation = None
        for rel in ("<=", ">=", "==", "<", ">"):
            if self.accept(rel):
                relation = rel
                break
        if relation is None:
            token = self.peek()
            raise FrontendError(
                token.line, token.column, "expected a relation after 'assume'"
            )
        negative = self.accept("-")
        token = self.peek()
        if token.kind is not TokenKind.NUMBER:
            raise FrontendError(
                token.line, token.column, "assume bounds must be integer literals"
            )
        bound = int(self.advance().text)
        self.end_statement()
        return ast.AssumeStmt(name, relation, -bound if negative else bound)

    def parse_array_decl(self) -> ast.ArrayDecl:
        """``array A[10]`` / ``array A[n, 20]``: declared extents."""
        self.expect("array")
        name = self.expect_name()
        self.expect("[")
        extents: List[object] = [self.parse_extent()]
        while self.accept(","):
            extents.append(self.parse_extent())
        self.expect("]")
        self.end_statement()
        return ast.ArrayDecl(name, tuple(extents))

    def parse_extent(self):
        token = self.peek()
        if token.kind is TokenKind.NUMBER:
            return int(self.advance().text)
        if token.kind is TokenKind.NAME:
            return self.advance().text
        raise FrontendError(
            token.line, token.column, "array extents must be numbers or names"
        )

    def parse_if(self) -> ast.If:
        self.expect("if")
        condition = self.parse_condition()
        self.expect("then")
        self.end_statement()
        then_body = self.parse_body({"endif", "else"})
        else_body: List[ast.Statement] = []
        if self.accept("else"):
            self.end_statement()
            else_body = self.parse_body({"endif"})
        self.expect("endif")
        self.end_statement()
        return ast.If(condition, then_body, else_body)

    def parse_assignment(self) -> ast.Statement:
        target = self.expect_name()
        if self.accept("["):
            indices = self.parse_index_list()
            self.expect("=")
            value = self.parse_expression()
            self.end_statement()
            return ast.StoreStmt(target, indices, value)
        self.expect("=")
        value = self.parse_expression()
        self.end_statement()
        return ast.Assign(target, value)

    # ------------------------------------------------------------------
    # conditions
    # ------------------------------------------------------------------
    def parse_condition(self) -> ast.Condition:
        return self.parse_or()

    def parse_or(self) -> ast.Condition:
        left = self.parse_and()
        while self.accept("or"):
            right = self.parse_and()
            left = ast.BoolExpr("or", left, right)
        return left

    def parse_and(self) -> ast.Condition:
        left = self.parse_not()
        while self.accept("and"):
            right = self.parse_not()
            left = ast.BoolExpr("and", left, right)
        return left

    def parse_not(self) -> ast.Condition:
        if self.accept("not"):
            return ast.NotExpr(self.parse_not())
        # lookahead for a parenthesized *condition* vs an expression
        return self.parse_comparison()

    def parse_comparison(self) -> ast.Condition:
        if self.check("("):
            # could be '(cond)' or the lhs expression '(a+b) < c'; try cond
            saved = self.pos
            try:
                self.expect("(")
                condition = self.parse_condition()
                self.expect(")")
                if not any(self.check(rel) for rel in _RELATIONS):
                    return condition
            except FrontendError:
                pass
            self.pos = saved
        lhs = self.parse_expression()
        for rel in ("<=", ">=", "==", "!=", "<", ">"):
            if self.accept(rel):
                rhs = self.parse_expression()
                return ast.CompareExpr(rel, lhs, rhs)
        token = self.peek()
        raise FrontendError(token.line, token.column, "expected a comparison operator")

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def parse_index_list(self) -> tuple:
        """Comma-separated subscript list after '['; consumes the ']'."""
        indices = [self.parse_expression()]
        while self.accept(","):
            indices.append(self.parse_expression())
        self.expect("]")
        return tuple(indices)

    def parse_expression(self) -> ast.Expression:
        left = self.parse_term()
        while True:
            if self.accept("+"):
                left = ast.BinaryExpr("+", left, self.parse_term())
            elif self.accept("-"):
                left = ast.BinaryExpr("-", left, self.parse_term())
            else:
                return left

    def parse_term(self) -> ast.Expression:
        left = self.parse_factor()
        while True:
            if self.accept("*"):
                left = ast.BinaryExpr("*", left, self.parse_factor())
            elif self.accept("/"):
                left = ast.BinaryExpr("/", left, self.parse_factor())
            elif self.accept("%") or self.accept("mod"):
                left = ast.BinaryExpr("%", left, self.parse_factor())
            else:
                return left

    def parse_factor(self) -> ast.Expression:
        base = self.parse_base()
        if self.accept("**"):
            return ast.BinaryExpr("**", base, self.parse_factor())
        return base

    def parse_base(self) -> ast.Expression:
        token = self.peek()
        if token.kind is TokenKind.NUMBER:
            self.advance()
            return ast.IntLit(int(token.text))
        if token.kind is TokenKind.NAME:
            name = self.advance().text
            if self.accept("["):
                return ast.ArrayRef(name, self.parse_index_list())
            return ast.Name(name)
        if self.accept("("):
            inner = self.parse_expression()
            self.expect(")")
            return inner
        if self.accept("-"):
            return ast.UnaryExpr("-", self.parse_base())
        raise FrontendError(token.line, token.column, f"unexpected {token.text!r}")


@traced("frontend.parse")
def parse_program(source: str) -> ast.Program:
    """Parse source text into an AST."""
    fault_point("frontend.parse")
    return _Parser(tokenize(source)).parse_program()
