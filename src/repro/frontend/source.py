"""One-call front half: source text -> loop-simplified named IR."""

from __future__ import annotations

from repro.analysis.loopsimplify import simplify_loops
from repro.frontend.lower import lower_program
from repro.frontend.parser import parse_program
from repro.ir.function import Function


def compile_source(source: str, name: str = "main") -> Function:
    """Parse, lower and canonicalize loops.  The result is named (pre-SSA) IR.

    Use :func:`repro.pipeline.analyze` for the full pipeline through SSA
    construction and induction-variable classification.
    """
    program = parse_program(source)
    function = lower_program(program, name=name)
    simplify_loops(function)
    return function
