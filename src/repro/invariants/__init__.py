"""Path-sensitive loop summaries and polynomial loop invariants.

The classifier (sections 3-5 of the paper) summarizes each cyclic SCR by
the *set* of per-path effects its expander collects; this package makes
the paths themselves first class:

* :mod:`repro.invariants.paths` -- enumerate the acyclic paths through a
  loop body's region (header to latch), symbolically execute each one
  jointly over every header phi, and record a per-path update map.
  Provably-dead edges (the RNG606 constant-branch verdict) are pruned
  before summarization.
* :mod:`repro.invariants.poly` -- for loops whose per-path updates are
  affine, build the update matrix of the degree-<=2 monomial basis and
  compute the polynomial equalities preserved by *every* path (the
  linear-algebra method of de Oliveira et al., over exact
  :class:`~fractions.Fraction` entries via
  :meth:`repro.symbolic.rational.Matrix.nullspace`).
* :mod:`repro.invariants.analysis` -- :func:`compute_invariants`, the
  driver wired behind ``analyze(..., invariants=True)``: attaches a
  :class:`PathSummary` and the invariant equalities to each
  :class:`~repro.core.driver.LoopSummary`, and intersects value ranges
  with invariant-implied bounds.
* :mod:`repro.invariants.checks` -- the ``INV7xx`` checker suite:
  replay every emitted equality (and every ``BranchDependent`` step
  bound) against the reference interpreter.

The phase is optional and isolated (fault point ``invariants.compute``):
on failure it degrades to a no-invariants :class:`InvariantInfo`.
"""

from repro.invariants.analysis import InvariantInfo, compute_invariants
from repro.invariants.checks import check_invariants
from repro.invariants.paths import LoopPath, PathSummary, enumerate_paths
from repro.invariants.poly import LoopInvariant, generate_invariants

__all__ = [
    "InvariantInfo",
    "LoopInvariant",
    "LoopPath",
    "PathSummary",
    "check_invariants",
    "compute_invariants",
    "enumerate_paths",
    "generate_invariants",
]
