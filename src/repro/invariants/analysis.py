"""The invariants driver: path summaries + polynomial equalities per loop.

:func:`compute_invariants` runs after classification (and after the
optional ranges phase, whose :class:`~repro.ranges.analysis.RangeInfo`
it both consumes -- RNG606 dead-edge pruning -- and *refines*: a linear
equality ``sum c_i x_i == v`` solves each variable in terms of the
others, and the implied interval intersects the variable's range before
the operator fixpoint re-runs).

The phase is optional and isolated behind fault point
``invariants.compute``; on failure ``analyze(..., invariants=True)``
degrades to :meth:`InvariantInfo.degraded_info` and analysis continues.
Observability mirrors the ranges phase: an ``invariants`` span and the
``invariants.*`` metrics (loops walked, paths enumerated, dead paths
pruned, equalities emitted, ranges refined).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Optional, Tuple

from repro.core.driver import AnalysisResult
from repro.invariants.paths import PathSummary, enumerate_paths
from repro.invariants.poly import LoopInvariant, generate_invariants
from repro.ir.values import Const, Ref
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.resilience.faultinject import fault_point
from repro.symbolic.expr import Expr


@dataclass
class InvariantInfo:
    """Queryable result of one invariant-generation run."""

    function: str = ""
    #: loop header -> polynomial equalities holding at the header
    by_loop: Dict[str, Tuple[LoopInvariant, ...]] = field(default_factory=dict)
    #: loop header -> enumerated path summary (affine or not)
    path_summaries: Dict[str, PathSummary] = field(default_factory=dict)
    #: dead paths skipped across all loops (RNG606 verdicts)
    pruned_paths: int = 0
    #: range entries tightened by invariant-implied bounds
    range_refinements: int = 0
    degraded: bool = False

    def invariants_of(self, header: str) -> Tuple[LoopInvariant, ...]:
        return self.by_loop.get(header, ())

    def path_summary_of(self, header: str) -> Optional[PathSummary]:
        return self.path_summaries.get(header)

    def total(self) -> int:
        return sum(len(group) for group in self.by_loop.values())

    @staticmethod
    def degraded_info(function: str = "") -> "InvariantInfo":
        """The no-invariants fallback the resilience boundary degrades to."""
        return InvariantInfo(function=function, degraded=True)


def compute_invariants(
    result: AnalysisResult, ranges=None
) -> InvariantInfo:
    """Attach path summaries and polynomial invariants to ``result``.

    ``ranges`` defaults to ``result.ranges`` (when the ranges phase ran);
    it is consumed for dead-edge pruning and refined in place with
    invariant-implied bounds.
    """
    fault_point("invariants.compute")
    function = result.function
    if ranges is None:
        ranges = result.ranges
    registry = _metrics.active()
    with _trace.span("invariants", function=function.name):
        info = _compute(result, ranges)
    if registry is not None:
        registry.inc("invariants.loops", len(info.path_summaries))
        registry.inc(
            "invariants.paths",
            sum(len(ps.paths) for ps in info.path_summaries.values()),
        )
        registry.inc("invariants.pruned_paths", info.pruned_paths)
        registry.inc("invariants.equalities", info.total())
        registry.inc(
            "invariants.affine_loops",
            sum(1 for ps in info.path_summaries.values() if ps.affine),
        )
        registry.inc("invariants.range_refinements", info.range_refinements)
    return info


def _compute(result: AnalysisResult, ranges) -> InvariantInfo:
    function = result.function
    info = InvariantInfo(function=function.name)
    for loop in result.nest.inner_to_outer():
        summary = result.loops.get(loop.header)
        if summary is None or summary.degraded:
            continue
        path_summary = enumerate_paths(function, loop, ranges)
        if path_summary is None:
            continue  # nested loops: the region is not a path DAG
        summary.path_summary = path_summary
        info.path_summaries[loop.header] = path_summary
        info.pruned_paths += path_summary.pruned_paths
        if not path_summary.affine:
            continue
        inits = _initial_values(function, loop, path_summary.phis)
        if inits is None:
            continue
        invariants = generate_invariants(path_summary, inits, loop=loop.header)
        if invariants:
            summary.invariants = tuple(invariants)
            info.by_loop[loop.header] = tuple(invariants)
    if ranges is not None and not getattr(ranges, "degraded", True):
        info.range_refinements = _refine_ranges(function, ranges, info)
    return info


def _initial_values(function, loop, phis) -> Optional[Dict[str, Expr]]:
    """Loop-entry expression of every header phi (None if non-canonical)."""
    header = function.blocks.get(loop.header)
    if header is None:
        return None
    out: Dict[str, Expr] = {}
    for phi in header.phis():
        if phi.result not in phis:
            continue
        init = None
        for predecessor, value in phi.incoming.items():
            if predecessor in loop.body:
                continue
            if init is not None:
                return None  # several entry edges: no single entry state
            if isinstance(value, Const):
                init = Expr.const(value.value)
            elif isinstance(value, Ref):
                init = Expr.sym(value.name)
        if init is None:
            return None
        out[phi.result] = init
    return out


def _refine_ranges(function, ranges, info: InvariantInfo) -> int:
    """Intersect ranges with bounds implied by *linear* invariants.

    ``sum c_i x_i + c0 == v`` pins each ``x_t`` to
    ``(v - c0 - sum_{i != t} c_i x_i) / c_t``; evaluating the right-hand
    side over the current intervals gives a sound bound to intersect.
    After any narrowing the operator worklist re-runs so the tightening
    propagates (intersection only descends: still a sound fixpoint).
    """
    from repro.ranges.analysis import TOP, _fixpoint_worklist, eval_expr

    refined = 0
    env = ranges.values
    for invariants in info.by_loop.values():
        for invariant in invariants:
            if invariant.degree != 1:
                continue
            residual = invariant.residual()
            affine = residual.as_affine()
            if affine is None:
                continue
            constant, coeffs = affine
            for target, coefficient in coeffs.items():
                if not coefficient:
                    continue
                rest = residual - Expr.sym(target) * Expr.const(coefficient)
                implied = eval_expr(rest, env).scale(
                    Fraction(-1) / coefficient
                )
                old = env.get(target, TOP)
                new = old.intersect(implied)
                if not new.empty and new != old:
                    env[target] = new
                    refined += 1
    if refined:
        _fixpoint_worklist(function, ranges)
    return refined
