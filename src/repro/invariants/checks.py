"""The ``INV7xx`` checker suite: replay invariant claims on the interpreter.

Every polynomial equality :func:`~repro.invariants.poly.generate_invariants`
emits is a *claim* about all executions; the reference interpreter
observes particular ones.  These checks run the function on a few
concrete parameter samples and hold each claim against every recorded
header state:

* **INV701** -- an emitted equality that a concrete header state
  *violates*: the generator (or a transform it trusted) is wrong;
* **INV702** -- an equality verified on at least one state and violated
  on none (a note: the receipt the docs call interpreter replay);
* **INV703** -- a ``BranchDependent`` header phi whose observed
  per-iteration delta falls outside the claimed ``[min_step, max_step]``
  bound.

Header-phi histories record one value per header evaluation, so states
align index-by-index across the loop's phis.  Only top-level loops are
checked: an inner loop's history interleaves entries from every outer
iteration, but its invariants are re-established at each entry so the
per-state check would still be fine -- the *initial value* however
changes per entry, and ``inv.value`` only describes the first one.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Sequence, Tuple

from repro.core.classes import BranchDependent
from repro.diagnostics.diagnostic import DiagnosticCollector
from repro.diagnostics.lints import DEFAULT_SAMPLES, FUEL, MAX_TRIPS, _sample_arguments
from repro.ir.interp import Interpreter, InterpreterError
from repro.symbolic.expr import ExprError

STAGE = "invariants"


def check_invariants(
    program,
    collector: DiagnosticCollector,
    samples: Sequence[int] = DEFAULT_SAMPLES,
) -> int:
    """Run the whole suite; returns how many diagnostics were emitted."""
    info = getattr(program.result, "invariants", None)
    if info is None or info.degraded:
        return 0
    before = len(collector.diagnostics)
    function = program.ssa
    result = program.result

    # (header, invariant index) -> [verified states, violated message]
    status: Dict[Tuple[str, int], list] = {}
    # (header, phi) -> first out-of-bounds step message
    step_violations: Dict[Tuple[str, str], str] = {}

    for args in _sample_arguments(function.params, samples):
        try:
            run = Interpreter(function, fuel=FUEL, record_history=True).run(args)
        except InterpreterError:
            continue  # e.g. division by zero under this sample: not a lint

        env: Dict[str, Fraction] = {}
        for name, values in run.value_history.items():
            if len(values) == 1:
                env.setdefault(name, Fraction(values[0]))
        for name, value in run.scalars.items():
            env.setdefault(name, Fraction(value))

        for header, invariants in info.by_loop.items():
            summary = result.loops.get(header)
            if summary is None or summary.loop.parent is not None:
                continue
            _replay_loop(header, invariants, run, env, args, status)
        _replay_steps(result, run, args, step_violations)

    for (header, position), (verified, violated) in sorted(status.items()):
        invariant = info.by_loop[header][position]
        if violated is not None:
            collector.emit(
                "INV701",
                f"invariant {invariant.describe()} of {header} is violated: "
                f"{violated}",
                function=function.name,
                block=header,
                stage=STAGE,
                hint="the generator (or a transform it trusted) is unsound "
                "for this loop",
            )
        elif verified:
            collector.emit(
                "INV702",
                f"invariant {invariant.describe()} of {header} verified on "
                f"{verified} interpreter state(s)",
                function=function.name,
                block=header,
                stage=STAGE,
            )
    for (header, phi), message in sorted(step_violations.items()):
        collector.emit(
            "INV703",
            message,
            function=function.name,
            block=header,
            name=phi,
            stage=STAGE,
            hint="the per-path step summary misses an update the loop "
            "actually performs",
        )
    return len(collector.diagnostics) - before


def _replay_loop(header, invariants, run, env, args, status) -> None:
    """Judge each invariant of one loop against this run's header states."""
    for position, invariant in enumerate(invariants):
        entry = status.setdefault((header, position), [0, None])
        if entry[1] is not None:
            continue  # already violated: keep the first counterexample
        phis = [v for v in invariant.variables if v in run.value_history]
        histories = {phi: run.value_history[phi] for phi in phis}
        if not histories:
            continue
        trips = min(len(h) for h in histories.values())
        try:
            expected = invariant.value.evaluate(env)
        except ExprError:
            continue  # entry state not observable under this sample
        for h in range(min(trips, MAX_TRIPS)):
            state = dict(env)
            for phi, history in histories.items():
                state[phi] = Fraction(history[h])
            try:
                observed = invariant.poly.evaluate(state)
            except ExprError:
                break  # a free symbol is unobservable: cannot judge
            if observed != expected:
                entry[1] = (
                    f"header state {h} (args {_fmt_args(args)}) gives "
                    f"{observed} != {expected}"
                )
                break
            entry[0] += 1


def _replay_steps(result, run, args, violations) -> None:
    """INV703: observed header-phi deltas vs. BranchDependent step bounds."""
    for summary in result.loops.values():
        if summary.loop.parent is not None:
            continue  # interleaved histories: deltas span outer iterations
        header_phis = {
            phi.result for phi in _header_phis(result.function, summary.loop)
        }
        for name, cls in summary.classifications.items():
            if name not in header_phis or not isinstance(cls, BranchDependent):
                continue
            if (summary.label, name) in violations:
                continue
            lo, hi = cls.min_step(), cls.max_step()
            if lo is None or hi is None:
                continue  # symbolic steps: no numeric bound to check
            history = run.value_history.get(name, [])
            for h, (earlier, later) in enumerate(
                zip(history[:MAX_TRIPS], history[1:MAX_TRIPS + 1])
            ):
                delta = Fraction(later) - Fraction(earlier)
                if not (lo <= delta <= hi):
                    violations[(summary.label, name)] = (
                        f"%{name} classified {cls.describe()} but step "
                        f"{h} -> {h + 1} moved by {delta}, outside "
                        f"[{lo}, {hi}] (args {_fmt_args(args)})"
                    )
                    break


def _header_phis(function, loop) -> List:
    header = function.blocks.get(loop.header)
    return list(header.phis()) if header is not None else []


def _fmt_args(args: Dict[str, int]) -> str:
    if not args:
        return "{}"
    return "{" + ", ".join(f"{k}={v}" for k, v in sorted(args.items())) + "}"
