"""Acyclic-path enumeration and per-path symbolic update maps.

A loop body without nested loops is a DAG once the back edge is removed
(any other cycle would be a second natural loop), so its iterations are
exactly the acyclic header-to-latch paths.  :func:`enumerate_paths` walks
them, executes each one symbolically over the header-phi symbols, and
records what one trip down that path does to every loop-carried value:

    if c then i = i + 1 else i = i + 3 endif
    =>  path L1,then,endif:  i.2 -> i.2 + 1
        path L1,else,endif:  i.2 -> i.2 + 3

The per-path update maps are what the polynomial invariant generator
(:mod:`repro.invariants.poly`) consumes, and the path-summary set rides
on :class:`~repro.core.driver.LoopSummary` for reports and ``explain()``.

Dead paths are pruned *before* summarization when a
:class:`~repro.ranges.analysis.RangeInfo` is supplied: a branch condition
with a single-constant range (the RNG606 verdict) makes one successor
edge unreachable, and every path through it is skipped (counted in
``pruned_paths``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.loops import Loop
from repro.ir.function import Function
from repro.ir.instructions import Assign, BinOp, Branch, Phi, UnOp
from repro.ir.opcodes import BinaryOp
from repro.ir.values import Const, Ref, Value
from repro.ranges.interval import Interval
from repro.symbolic.expr import Expr, ExprError

#: cap on enumerated paths per loop (2**4 two-way branches)
MAX_PATHS = 16
#: cap on the total degree of any symbolic intermediate
MAX_DEGREE = 4

_POINT_TRUE = Interval.point(1)
_POINT_FALSE = Interval.point(0)


@dataclass(frozen=True)
class LoopPath:
    """One acyclic header-to-latch path and its joint update map.

    ``updates`` maps each header-phi name to the symbolic value flowing
    back to it after one trip down this path -- an expression over the
    header-phi symbols and loop-invariant names -- or ``None`` when the
    path computes something the symbolic executor cannot express
    (division, loads, comparisons...).
    """

    blocks: Tuple[str, ...]
    updates: Tuple[Tuple[str, Optional[Expr]], ...]

    def update_of(self, name: str) -> Optional[Expr]:
        for phi, expr in self.updates:
            if phi == name:
                return expr
        return None

    @property
    def affine(self) -> bool:
        """True when every update is a known affine expression."""
        return all(
            expr is not None and expr.as_affine() is not None
            for _, expr in self.updates
        )

    def describe(self) -> str:
        steps = ", ".join(
            f"{phi} -> {expr if expr is not None else '?'}"
            for phi, expr in self.updates
        )
        return f"[{' -> '.join(self.blocks)}] {{{steps}}}"


@dataclass
class PathSummary:
    """Every enumerated path of one loop, plus the enumeration's caveats."""

    loop: str
    phis: Tuple[str, ...]
    paths: Tuple[LoopPath, ...] = ()
    #: dead edges skipped thanks to RNG606 constant-branch verdicts
    pruned_paths: int = 0
    #: True when the MAX_PATHS cap stopped the enumeration: the path set
    #: is a subset, so only may-facts (not must-facts) survive
    truncated: bool = False

    @property
    def complete(self) -> bool:
        return bool(self.paths) and not self.truncated

    @property
    def affine(self) -> bool:
        """Every path known, every update affine: invariants may be run."""
        return self.complete and all(path.affine for path in self.paths)

    def notes(self) -> List[str]:
        out = [f"{len(self.paths)} path(s)"]
        if self.pruned_paths:
            out.append(f"pruned_paths={self.pruned_paths}")
        if self.truncated:
            out.append(f"truncated at {MAX_PATHS}")
        return out


def enumerate_paths(
    function: Function,
    loop: Loop,
    ranges=None,
    max_paths: int = MAX_PATHS,
) -> Optional[PathSummary]:
    """Enumerate the acyclic header-to-latch paths of ``loop``.

    Returns ``None`` for loops containing nested loops (their region is
    not a path DAG; the classifier already summarizes them through exit
    values).  ``ranges`` (a ``RangeInfo``) enables dead-edge pruning.
    """
    if loop.children:
        return None
    header = function.blocks.get(loop.header)
    if header is None:
        return None
    phis = tuple(sorted(phi.result for phi in header.phis()))
    summary = PathSummary(loop=loop.header, phis=phis)
    if not phis:
        return summary

    prune = ranges is not None and not getattr(ranges, "degraded", True)
    paths: List[Tuple[str, ...]] = []

    # iterative DFS over in-loop successors; a back edge to the header
    # completes one path, an exit edge abandons the trip
    stack: List[Tuple[str, Tuple[str, ...]]] = [(loop.header, (loop.header,))]
    while stack:
        label, path = stack.pop()
        if len(paths) >= max_paths:
            summary.truncated = True
            break
        block = function.blocks.get(label)
        if block is None or block.terminator is None:
            continue
        successors = list(block.terminator.successors())
        if prune and isinstance(block.terminator, Branch) and len(successors) == 2:
            cond = ranges.value_interval(block.terminator.cond)
            if cond == _POINT_TRUE:
                successors = [block.terminator.true_target]
                summary.pruned_paths += 1
            elif cond == _POINT_FALSE:
                successors = [block.terminator.false_target]
                summary.pruned_paths += 1
        for succ in successors:
            if succ == loop.header:
                paths.append(path)
            elif succ in loop.body and succ not in path:
                stack.append((succ, path + (succ,)))
            # exit edges (and the impossible in-path revisit) end the walk

    executed = []
    for path in sorted(paths):
        executed.append(_execute_path(function, path, phis))
    summary.paths = tuple(executed)
    return summary


def _execute_path(
    function: Function, path: Tuple[str, ...], phis: Tuple[str, ...]
) -> LoopPath:
    """Joint symbolic execution of one path over the header-phi symbols."""
    state: Dict[str, Optional[Expr]] = {phi: Expr.sym(phi) for phi in phis}
    for position, label in enumerate(path):
        block = function.block(label)
        if position > 0:
            predecessor = path[position - 1]
            staged = {
                phi.result: _value_expr(phi.incoming.get(predecessor), state)
                for phi in block.phis()
            }
            state.update(staged)
        for inst in block.instructions:
            if isinstance(inst, Phi) or inst.result is None:
                continue
            state[inst.result] = _symbolic(inst, state)

    latch = path[-1]
    header_block = function.block(path[0])
    updates = []
    for phi in header_block.phis():
        if phi.result not in phis:
            continue
        updates.append((phi.result, _value_expr(phi.incoming.get(latch), state)))
    updates.sort()
    return LoopPath(blocks=path, updates=tuple(updates))


def _value_expr(
    value: Optional[Value], state: Dict[str, Optional[Expr]]
) -> Optional[Expr]:
    if isinstance(value, Const):
        return Expr.const(value.value)
    if isinstance(value, Ref):
        if value.name in state:
            return state[value.name]
        # not defined on this path: by SSA dominance it is defined outside
        # the loop, i.e. loop invariant
        return Expr.sym(value.name)
    return None


def _symbolic(inst, state: Dict[str, Optional[Expr]]) -> Optional[Expr]:
    """Transfer function of one instruction; ``None`` = not polynomial."""
    if isinstance(inst, Assign):
        return _value_expr(inst.src, state)
    if isinstance(inst, UnOp):
        operand = _value_expr(inst.operand, state)
        return -operand if operand is not None else None
    if isinstance(inst, BinOp):
        lhs = _value_expr(inst.lhs, state)
        rhs = _value_expr(inst.rhs, state)
        if lhs is None or rhs is None:
            return None
        try:
            if inst.op is BinaryOp.ADD:
                return lhs + rhs
            if inst.op is BinaryOp.SUB:
                return lhs - rhs
            if inst.op is BinaryOp.MUL:
                product = lhs * rhs
                return product if product.degree() <= MAX_DEGREE else None
            if inst.op is BinaryOp.EXP and rhs.is_constant:
                exponent = rhs.constant_value()
                if exponent.denominator == 1 and 0 <= exponent <= MAX_DEGREE:
                    power = Expr.one()
                    for _ in range(int(exponent)):
                        power = power * lhs
                    return power if power.degree() <= MAX_DEGREE else None
        except ExprError:
            return None
        return None  # DIV / MOD / symbolic EXP: not polynomial
    return None  # Compare, Load, ... : opaque
