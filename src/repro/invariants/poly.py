"""Polynomial loop invariants by linear algebra.

For a loop whose per-path updates are *affine* over the loop-carried
variables (plus loop-invariant symbols, which simply carry over
unchanged), each path ``p`` acts linearly on the degree-<=2 monomial
basis ``{1} u {x_i} u {x_i x_j}``: substituting the updates into a basis
monomial yields a rational combination of basis monomials, i.e. a matrix
``T_p``.  A polynomial ``P = sum c_k mu_k`` is preserved by every path
exactly when ``(T_p^T - I) c = 0`` for all ``p`` -- so the invariant
space is the nullspace of the stacked system, computed exactly over
:class:`~fractions.Fraction` by
:meth:`repro.symbolic.rational.Matrix.nullspace` (the eigenvector-style
method of de Oliveira, Breck et al., "Polynomial invariants by linear
algebra").

Example: ``i += 1; s += i`` on one path and ``i += 2; s += 2*i - 1`` on
the other both preserve ``2*s - i^2 - i``; with ``i = s = 0`` on entry
the emitted equality is ``2*s - i^2 - i == 0``.

Every candidate is a *claim*; the ``INV7xx`` replay checks
(:mod:`repro.invariants.checks`) and the hypothesis soundness oracle
(``tests/property/test_invariant_soundness.py``) hold it against the
reference interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import gcd
from typing import Dict, List, Optional, Tuple

from repro.invariants.paths import PathSummary
from repro.symbolic.expr import Expr
from repro.symbolic.rational import Matrix, MatrixError

#: cap on joint variables (phis + carried invariant symbols): the basis
#: has 1 + n + n(n+1)/2 monomials, so 5 variables = 21 columns
MAX_VARIABLES = 5
#: cap on invariants kept per loop (lowest degree first)
MAX_INVARIANTS = 6


@dataclass(frozen=True)
class LoopInvariant:
    """One polynomial equality holding at every evaluation of the header.

    ``poly`` is a polynomial over the loop's header-phi names (and
    loop-invariant symbols); ``value`` is the same polynomial evaluated
    at the loop's entry state, so the invariant is ``poly == value`` --
    true on entry and preserved by every path through the body.
    """

    loop: str
    poly: Expr
    value: Expr
    variables: Tuple[str, ...]
    degree: int

    def residual(self) -> Expr:
        """``poly - value``: zero at every header evaluation."""
        return self.poly - self.value

    def describe(self) -> str:
        return f"{self.poly} == {self.value}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.describe()


def generate_invariants(
    summary: PathSummary,
    inits: Dict[str, Expr],
    loop: Optional[str] = None,
) -> List[LoopInvariant]:
    """Degree-<=2 polynomial equalities preserved by every path.

    ``inits`` maps each header-phi name to its loop-entry expression
    (over loop-invariant symbols).  Loops whose path set is incomplete,
    whose updates are not affine, or whose joint variable count exceeds
    :data:`MAX_VARIABLES` yield no invariants (soundly: no claim is ever
    better than a wrong claim).
    """
    if not summary.affine or not summary.phis:
        return []
    if any(phi not in inits for phi in summary.phis):
        return []

    # joint variables: the header phis plus every loop-invariant symbol
    # the updates mention (those act as extra variables with identity
    # updates, which lets e.g. ``j += 2*n; i += n`` prove ``j - 2*i``)
    carried = set()
    for path in summary.paths:
        for _phi, update in path.updates:
            carried |= set(update.free_symbols())
    invariant_syms = tuple(sorted(carried - set(summary.phis)))
    variables = tuple(summary.phis) + invariant_syms
    if len(variables) > MAX_VARIABLES:
        return []

    basis = _monomial_basis(variables)
    index = {key: position for position, (key, _expr) in enumerate(basis)}
    size = len(basis)

    rows: List[List[Fraction]] = []
    for path in summary.paths:
        mapping = {phi: update for phi, update in path.updates}
        transform: List[List[Fraction]] = []
        for _key, mono_expr in basis:
            row = [Fraction(0)] * size
            substituted = mono_expr.substitute(mapping)
            for mono, coeff in substituted.iter_terms():
                position = index.get(mono)
                if position is None:
                    return []  # degree/symbol escaped the basis: give up
                row[position] += coeff
            transform.append(row)
        # invariance of c: T_p^T c = c, i.e. rows of (T_p^T - I)
        for i in range(size):
            rows.append(
                [
                    transform[k][i] - (1 if k == i else 0)
                    for k in range(size)
                ]
            )

    if not rows:
        return []
    try:
        kernel = Matrix(rows).nullspace()
    except MatrixError:
        return []

    out: List[LoopInvariant] = []
    init_map = dict(inits)
    for vector in kernel:
        invariant = _vector_to_invariant(
            vector, basis, variables, summary, init_map, loop or summary.loop
        )
        if invariant is not None:
            out.append(invariant)
    out.sort(key=lambda inv: (inv.degree, str(inv.poly)))
    return out[:MAX_INVARIANTS]


def _monomial_basis(variables: Tuple[str, ...]):
    """``[(key, expr)]`` for ``{1} u {x_i} u {x_i x_j}`` in stable order."""
    basis = [(next(iter(Expr.one().terms())), Expr.one())]
    syms = [Expr.sym(v) for v in variables]
    for expr in syms:
        basis.append((next(iter(expr.terms())), expr))
    for i, a in enumerate(syms):
        for b in syms[i:]:
            product = a * b
            basis.append((next(iter(product.terms())), product))
    return basis


def _vector_to_invariant(
    vector: List[Fraction],
    basis,
    variables: Tuple[str, ...],
    summary: PathSummary,
    inits: Dict[str, Expr],
    loop: str,
) -> Optional[LoopInvariant]:
    # drop the constant-monomial component: P - c0 is invariant iff P is
    coeffs = list(vector)
    coeffs[0] = Fraction(0)
    if all(c == 0 for c in coeffs):
        return None

    # normalize to coprime integers with a positive leading coefficient
    denominator_lcm = 1
    for c in coeffs:
        if c:
            denominator_lcm = denominator_lcm * c.denominator // gcd(
                denominator_lcm, c.denominator
            )
    scaled = [c * denominator_lcm for c in coeffs]
    numerator_gcd = 0
    for c in scaled:
        numerator_gcd = gcd(numerator_gcd, int(c))
    if numerator_gcd:
        scaled = [c / numerator_gcd for c in scaled]
    leading = next(c for c in reversed(scaled) if c)
    if leading < 0:
        scaled = [-c for c in scaled]

    poly = Expr.zero()
    touches_phi = False
    degree = 0
    phi_set = set(summary.phis)
    for coefficient, (_key, mono_expr) in zip(scaled, basis):
        if not coefficient:
            continue
        poly = poly + mono_expr * Expr.const(coefficient)
        degree = max(degree, mono_expr.degree())
        if mono_expr.free_symbols() & phi_set:
            touches_phi = True
    if not touches_phi:
        return None  # a pure combination of loop invariants: trivially true

    value = poly.substitute(inits)
    return LoopInvariant(
        loop=loop,
        poly=poly,
        value=value,
        variables=variables,
        degree=degree,
    )
