"""A small three-address CFG IR.

This is the substrate the paper assumes: "the program is represented by a
CFG ... each basic block is represented by a linked list of tuples of the
form (op, left, right, ssalink)" (section 3).  We use a conventional
object-per-instruction encoding of the same information:

* operands are :class:`~repro.ir.values.Const` or :class:`~repro.ir.values.Ref`;
* the operator set is the paper's Figure 2 table (AD SB MP DV EX NG PH LD ST
  LT) plus comparisons and block terminators;
* a :class:`~repro.ir.function.Function` owns an ordered set of
  :class:`~repro.ir.basicblock.BasicBlock` with distinguished entry/exit.

The IR exists in two flavours sharing these classes: the *named* form
produced by the frontend (variables assigned many times, no phis) and the
*SSA* form produced by :mod:`repro.ssa` (unique definitions plus
:class:`~repro.ir.instructions.Phi` at joins).
"""

from repro.ir.opcodes import BinaryOp, Relation
from repro.ir.values import Const, Ref, Value
from repro.ir.instructions import (
    Assign,
    BinOp,
    Branch,
    Compare,
    Instruction,
    Jump,
    Load,
    Phi,
    Return,
    Store,
    Terminator,
    UnOp,
)
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function, IRError
from repro.ir.builder import FunctionBuilder
from repro.ir.printer import print_function
from repro.ir.parser import parse_function
from repro.ir.verify import verify_function
from repro.ir.interp import Interpreter, AccessEvent, TraceRecorder

__all__ = [
    "BinaryOp",
    "Relation",
    "Const",
    "Ref",
    "Value",
    "Assign",
    "BinOp",
    "Branch",
    "Compare",
    "Instruction",
    "Jump",
    "Load",
    "Phi",
    "Return",
    "Store",
    "Terminator",
    "UnOp",
    "BasicBlock",
    "Function",
    "IRError",
    "FunctionBuilder",
    "print_function",
    "parse_function",
    "verify_function",
    "Interpreter",
    "AccessEvent",
    "TraceRecorder",
]
