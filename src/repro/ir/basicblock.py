"""Basic blocks: a label, a list of instructions, and a terminator."""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.ir.instructions import Instruction, Phi, Terminator


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator.

    Phi instructions, when present (SSA form), must form a prefix of the
    instruction list; :meth:`phis` and :meth:`body` split on that boundary.
    """

    __slots__ = ("label", "instructions", "terminator")

    def __init__(self, label: str):
        if not label:
            raise ValueError("block label must be non-empty")
        self.label = label
        self.instructions: List[Instruction] = []
        self.terminator: Optional[Terminator] = None

    def append(self, instruction: Instruction) -> Instruction:
        self.instructions.append(instruction)
        return instruction

    def phis(self) -> List[Phi]:
        out = []
        for inst in self.instructions:
            if isinstance(inst, Phi):
                out.append(inst)
            else:
                break
        return out

    def body(self) -> List[Instruction]:
        return self.instructions[len(self.phis()):]

    def successors(self) -> tuple:
        if self.terminator is None:
            return ()
        return self.terminator.successors()

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.label}: {len(self.instructions)} insts>"
