"""A convenience builder for constructing IR by hand (tests, examples)."""

from __future__ import annotations

from typing import Dict, Optional

from repro.ir.function import Function
from repro.ir.instructions import (
    Assign,
    BinOp,
    Branch,
    Compare,
    Jump,
    Load,
    Phi,
    Return,
    Store,
    UnOp,
)
from repro.ir.opcodes import BinaryOp, Relation


class FunctionBuilder:
    """Builds a :class:`Function` with a current-insertion-block cursor.

    >>> fb = FunctionBuilder("f", params=["n"])
    >>> entry = fb.block("entry")
    >>> fb.assign("i", 0)
    >>> fb.jump("loop")
    """

    def __init__(self, name: str, params=(), arrays=()):
        self.function = Function(name, params=params, arrays=arrays)
        self._current = None
        self._temp_counter = 0

    # ------------------------------------------------------------------
    # cursor
    # ------------------------------------------------------------------
    def block(self, label: str):
        """Create block ``label`` and make it current."""
        self._current = self.function.add_block(label)
        return self._current

    def switch_to(self, label: str):
        """Make an existing block current (to append more instructions)."""
        self._current = self.function.block(label)
        return self._current

    @property
    def current(self):
        if self._current is None:
            raise RuntimeError("no current block; call block() first")
        return self._current

    def temp(self, hint: str = "t") -> str:
        self._temp_counter += 1
        return f"{hint}{self._temp_counter}"

    # ------------------------------------------------------------------
    # instructions
    # ------------------------------------------------------------------
    def assign(self, result: str, src) -> str:
        self.current.append(Assign(result, src))
        return result

    def binop(self, result: str, op: BinaryOp, lhs, rhs) -> str:
        self.current.append(BinOp(result, op, lhs, rhs))
        return result

    def add(self, result: str, lhs, rhs) -> str:
        return self.binop(result, BinaryOp.ADD, lhs, rhs)

    def sub(self, result: str, lhs, rhs) -> str:
        return self.binop(result, BinaryOp.SUB, lhs, rhs)

    def mul(self, result: str, lhs, rhs) -> str:
        return self.binop(result, BinaryOp.MUL, lhs, rhs)

    def div(self, result: str, lhs, rhs) -> str:
        return self.binop(result, BinaryOp.DIV, lhs, rhs)

    def neg(self, result: str, operand) -> str:
        self.current.append(UnOp(result, operand))
        return result

    def phi(self, result: str, incoming: Optional[Dict[str, object]] = None) -> Phi:
        phi = Phi(result, incoming or {})
        # phis must prefix the block
        nphis = len(self.current.phis())
        self.current.instructions.insert(nphis, phi)
        return phi

    def load(self, result: str, array: str, index=None) -> str:
        self.current.append(Load(result, array, index))
        return result

    def store(self, array: str, index, value) -> None:
        self.current.append(Store(array, index, value))

    def compare(self, result: str, relation: Relation, lhs, rhs) -> str:
        self.current.append(Compare(result, relation, lhs, rhs))
        return result

    # ------------------------------------------------------------------
    # terminators
    # ------------------------------------------------------------------
    def jump(self, target: str) -> None:
        self.current.terminator = Jump(target)

    def branch(self, cond, true_target: str, false_target: str) -> None:
        self.current.terminator = Branch(cond, true_target, false_target)

    def ret(self, value=None) -> None:
        self.current.terminator = Return(value)

    def done(self) -> Function:
        """Finish and return the function (verifying basic well-formedness)."""
        from repro.ir.verify import verify_function

        verify_function(self.function, ssa=False)
        return self.function
