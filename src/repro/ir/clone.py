"""Deep-copying IR functions (transforms keep the original intact)."""

from __future__ import annotations

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Assign,
    BinOp,
    Branch,
    Compare,
    Jump,
    Load,
    Phi,
    Return,
    Store,
    UnOp,
)


def clone_function(function: Function, name: str = None) -> Function:
    """Structural deep copy (values are immutable and shared)."""
    out = Function(name or function.name, params=function.params, arrays=function.arrays)
    out.array_extents = dict(function.array_extents)
    out.assumptions = list(function.assumptions)
    for block in function:
        new_block = out.add_block(block.label)
        for inst in block:
            new_block.append(_clone_instruction(inst))
        new_block.terminator = _clone_terminator(block.terminator)
    out.entry_label = function.entry_label
    return out


def _clone_instruction(inst):
    if isinstance(inst, Assign):
        return Assign(inst.result, inst.src)
    if isinstance(inst, BinOp):
        return BinOp(inst.result, inst.op, inst.lhs, inst.rhs)
    if isinstance(inst, UnOp):
        return UnOp(inst.result, inst.operand)
    if isinstance(inst, Phi):
        return Phi(inst.result, dict(inst.incoming))
    if isinstance(inst, Load):
        return Load(inst.result, inst.array, inst.indices)
    if isinstance(inst, Store):
        return Store(inst.array, inst.indices, inst.value)
    if isinstance(inst, Compare):
        return Compare(inst.result, inst.relation, inst.lhs, inst.rhs)
    raise TypeError(f"cannot clone {type(inst).__name__}")


def _clone_terminator(term):
    if term is None:
        return None
    if isinstance(term, Jump):
        return Jump(term.target)
    if isinstance(term, Branch):
        return Branch(term.cond, term.true_target, term.false_target)
    if isinstance(term, Return):
        return Return(term.value)
    raise TypeError(f"cannot clone terminator {type(term).__name__}")
