"""Graphviz (DOT) exports of the CFG, the SSA graph and dependence graphs.

Pure string generation (no graphviz dependency); feed the output to
``dot -Tsvg``.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.function import Function


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\l")


def cfg_to_dot(function: Function, include_instructions: bool = True) -> str:
    """The control flow graph, one record node per basic block."""
    lines = [f'digraph "{function.name}" {{', "  node [shape=box, fontname=monospace];"]
    for block in function:
        if include_instructions:
            body = "\\l".join(_escape(str(inst)) for inst in block.instructions)
            terminator = _escape(str(block.terminator)) if block.terminator else "?"
            label = f"{block.label}:\\l{body}\\l{terminator}\\l"
        else:
            label = block.label
        lines.append(f'  "{block.label}" [label="{label}"];')
    for block in function:
        for succ in block.successors():
            lines.append(f'  "{block.label}" -> "{succ}";')
    lines.append("}")
    return "\n".join(lines)


def ssa_graph_to_dot(function: Function, region: Optional[set] = None) -> str:
    """The SSA graph of section 3: edges from operators to their operands."""
    from repro.ssa.graph import build_ssa_graph

    graph = build_ssa_graph(function, region)
    lines = ['digraph "ssa" {', "  node [shape=ellipse, fontname=monospace];"]
    for name in graph.nodes():
        inst = graph.instruction(name)
        label = _escape(str(inst))
        lines.append(f'  "{name}" [label="{label}"];')
    for name in graph.nodes():
        for succ in graph.successors(name):
            lines.append(f'  "{name}" -> "{succ}";')
        for external in graph.external_operands(name):
            lines.append(
                f'  "ext:{external}" [label="{external}", shape=plaintext];'
            )
            lines.append(f'  "{name}" -> "ext:{external}" [style=dashed];')
    lines.append("}")
    return "\n".join(lines)


def dependence_graph_to_dot(graph) -> str:
    """The dependence graph (flow solid, anti dashed, output dotted)."""
    styles = {"flow": "solid", "anti": "dashed", "output": "dotted", "input": "dotted"}
    lines = ['digraph "deps" {', "  node [shape=box, fontname=monospace];"]
    for ref in graph.refs:
        lines.append(f'  "{ref!r}" [label="{_escape(repr(ref))}"];')
    for edge in graph.edges:
        style = styles.get(edge.kind.value, "solid")
        label = ", ".join(repr(v) for v in edge.result.directions)
        lines.append(
            f'  "{edge.source!r}" -> "{edge.sink!r}" '
            f'[style={style}, label="{_escape(label)}"];'
        )
    lines.append("}")
    return "\n".join(lines)
