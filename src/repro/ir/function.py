"""Functions: the control flow graph.

Following section 2.1 of the paper, a function is a graph
``G = (V, E, Entry, Exit)``: basic blocks, sequential control-flow edges,
and distinguished entry/exit.  Exit is implicit here -- every block whose
terminator is a :class:`~repro.ir.instructions.Return` flows to it.

The definition indexes (:meth:`Function.definitions` and
:meth:`Function.def_site`) are **cached**: they are rebuilt lazily only
after a mutation.  Mutating passes must call :meth:`Function.dirty` after
changing instructions (``transforms/*`` and ``scalar/*`` all do); as a
safety net against forgotten invalidations, each cache also records a cheap
structural fingerprint (block count + total instruction count) and rebuilds
itself whenever the fingerprint changes -- that catches every insertion and
deletion automatically, leaving only same-size in-place *moves* dependent
on the explicit ``dirty()`` contract.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import Instruction, Phi, Ref, Terminator

#: module-level switch for the definition-index caches; the equivalence
#: tests flip it off to prove cached and uncached runs agree.
_CACHING_ENABLED = True


def set_caching(enabled: bool) -> bool:
    """Enable/disable the Function definition caches; returns prior state."""
    global _CACHING_ENABLED
    previous = _CACHING_ENABLED
    _CACHING_ENABLED = bool(enabled)
    return previous


class IRError(Exception):
    """Raised for malformed IR (duplicate labels, missing blocks, ...)."""


class Function:
    """A named CFG with parameters and array declarations.

    ``params`` are scalar values defined on entry (symbolic inputs);
    ``arrays`` are names of memory objects referenced by Load/Store.
    Blocks keep insertion order, which the printer and tests rely on; the
    entry block is the first one added unless overridden.
    """

    def __init__(self, name: str, params: Sequence[str] = (), arrays: Sequence[str] = ()):
        self.name = name
        self.params: List[str] = list(params)
        self.arrays: List[str] = list(arrays)
        #: declared per-dimension extents (``array A[10]``): name -> tuple
        #: of int literals or parameter names; consumed by repro.ranges
        self.array_extents: Dict[str, tuple] = {}
        #: source-level ``assume`` facts: (name, relation, bound) triples
        self.assumptions: List[Tuple[str, str, int]] = []
        self.blocks: Dict[str, BasicBlock] = {}
        self.entry_label: Optional[str] = None
        self._version = 0
        self._defs_cache: Optional[Tuple[tuple, Dict[str, tuple]]] = None
        self._sites_cache: Optional[Tuple[tuple, Dict[str, Tuple[str, int]]]] = None

    # ------------------------------------------------------------------
    # cache management
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Monotonic mutation counter (bumped by :meth:`dirty`)."""
        return self._version

    def dirty(self) -> None:
        """Invalidate the cached definition indexes after a mutation.

        Every pass that inserts, deletes, moves, or renames instructions
        must call this once it is done mutating (calling it more often is
        harmless).  Structure-changing helpers on ``Function`` itself
        (:meth:`add_block`, :meth:`split_edge`) call it automatically.
        """
        self._version += 1
        self._defs_cache = None
        self._sites_cache = None

    def _fingerprint(self) -> tuple:
        """Cheap structural stamp: O(#blocks), no per-instruction work."""
        return (
            self._version,
            len(self.blocks),
            sum(len(block.instructions) for block in self.blocks.values()),
        )

    # ------------------------------------------------------------------
    # block management
    # ------------------------------------------------------------------
    def add_block(self, label: str) -> BasicBlock:
        if label in self.blocks:
            raise IRError(f"duplicate block label {label!r}")
        block = BasicBlock(label)
        self.blocks[label] = block
        if self.entry_label is None:
            self.entry_label = label
        self.dirty()
        return block

    def block(self, label: str) -> BasicBlock:
        try:
            return self.blocks[label]
        except KeyError:
            raise IRError(f"no block labelled {label!r}") from None

    @property
    def entry(self) -> BasicBlock:
        if self.entry_label is None:
            raise IRError("function has no blocks")
        return self.blocks[self.entry_label]

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks.values())

    def __len__(self) -> int:
        return len(self.blocks)

    # ------------------------------------------------------------------
    # graph queries
    # ------------------------------------------------------------------
    def successors(self, label: str) -> tuple:
        return self.block(label).successors()

    def predecessors_map(self) -> Dict[str, List[str]]:
        """Label -> list of predecessor labels (stable order)."""
        preds: Dict[str, List[str]] = {label: [] for label in self.blocks}
        for block in self:
            for succ in block.successors():
                if succ not in preds:
                    raise IRError(
                        f"block {block.label!r} targets unknown label {succ!r}"
                    )
                preds[succ].append(block.label)
        return preds

    def definitions(self) -> Dict[str, tuple]:
        """SSA-name -> (block_label, instruction) for every defined value.

        Cached between mutations; treat the returned dict as read-only.
        """
        if _CACHING_ENABLED:
            fingerprint = self._fingerprint()
            if self._defs_cache is not None and self._defs_cache[0] == fingerprint:
                return self._defs_cache[1]
        defs: Dict[str, tuple] = {}
        for block in self:
            for inst in block:
                if inst.result is not None:
                    defs[inst.result] = (block.label, inst)
        if _CACHING_ENABLED:
            self._defs_cache = (fingerprint, defs)
        return defs

    def def_site(self, name: str) -> Optional[Tuple[str, int]]:
        """(block_label, position) of the definition of ``name``, or None.

        Backed by a precomputed whole-function index (built in one walk,
        cached between mutations) instead of a per-query linear scan.
        """
        if not _CACHING_ENABLED:
            for block in self:
                for position, inst in enumerate(block.instructions):
                    if inst.result == name:
                        return (block.label, position)
            return None
        fingerprint = self._fingerprint()
        if self._sites_cache is None or self._sites_cache[0] != fingerprint:
            sites: Dict[str, Tuple[str, int]] = {}
            for block in self:
                for position, inst in enumerate(block.instructions):
                    if inst.result is not None:
                        sites[inst.result] = (block.label, position)
            self._sites_cache = (fingerprint, sites)
        return self._sites_cache[1].get(name)

    def instruction_count(self) -> int:
        return sum(len(block) for block in self)

    # ------------------------------------------------------------------
    # mutation helpers used by SSA construction and transforms
    # ------------------------------------------------------------------
    def split_edge(self, pred_label: str, succ_label: str, new_label: str) -> BasicBlock:
        """Insert an empty block on the edge ``pred -> succ``.

        Phi incoming labels in ``succ`` are retargeted to the new block.
        """
        from repro.ir.instructions import Jump

        pred = self.block(pred_label)
        succ = self.block(succ_label)
        if succ_label not in pred.successors():
            raise IRError(f"no edge {pred_label!r} -> {succ_label!r}")
        new_block = self.add_block(new_label)
        new_block.terminator = Jump(succ_label)
        pred.terminator.retarget(succ_label, new_label)
        for phi in succ.phis():
            if pred_label in phi.incoming:
                phi.incoming[new_label] = phi.incoming.pop(pred_label)
        self.dirty()
        return new_block

    def fresh_name(self, hint: str) -> str:
        """A value name not yet defined anywhere in the function."""
        taken = set(self.definitions())
        taken.update(self.params)
        if hint not in taken:
            return hint
        counter = 1
        while f"{hint}.{counter}" in taken:
            counter += 1
        return f"{hint}.{counter}"

    def fresh_label(self, hint: str) -> str:
        if hint not in self.blocks:
            return hint
        counter = 1
        while f"{hint}.{counter}" in self.blocks:
            counter += 1
        return f"{hint}.{counter}"

    def __repr__(self) -> str:
        return f"<Function {self.name}: {len(self.blocks)} blocks>"
