"""Instruction classes.

Every non-terminator instruction optionally *defines* a named value
(``result``); terminators end a basic block.  Instructions expose a uniform
``uses()`` / ``replace_uses()`` interface so the SSA renamer, the SSA graph
and the transforms can treat them generically.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.ir.opcodes import BinaryOp, Relation
from repro.ir.values import Const, Ref, Value, as_value


class Instruction:
    """Base class for non-terminator instructions."""

    __slots__ = ("result",)

    result: Optional[str]

    def uses(self) -> List[Value]:
        """All operand values, in a stable order."""
        raise NotImplementedError

    def replace_uses(self, mapping: Dict[str, Value]) -> None:
        """Rewrite ``Ref`` operands through ``mapping`` (in place)."""
        raise NotImplementedError

    def _subst(self, value: Value, mapping: Dict[str, Value]) -> Value:
        if isinstance(value, Ref) and value.name in mapping:
            return mapping[value.name]
        return value


class BinOp(Instruction):
    """``result = op(lhs, rhs)``."""

    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, result: str, op: BinaryOp, lhs, rhs):
        self.result = result
        self.op = op
        self.lhs = as_value(lhs)
        self.rhs = as_value(rhs)

    def uses(self) -> List[Value]:
        return [self.lhs, self.rhs]

    def replace_uses(self, mapping: Dict[str, Value]) -> None:
        self.lhs = self._subst(self.lhs, mapping)
        self.rhs = self._subst(self.rhs, mapping)

    def __str__(self) -> str:
        return f"%{self.result} = {self.op} {self.lhs}, {self.rhs}"


class UnOp(Instruction):
    """``result = neg(operand)`` (the only unary operator is NG)."""

    __slots__ = ("operand",)

    def __init__(self, result: str, operand):
        self.result = result
        self.operand = as_value(operand)

    def uses(self) -> List[Value]:
        return [self.operand]

    def replace_uses(self, mapping: Dict[str, Value]) -> None:
        self.operand = self._subst(self.operand, mapping)

    def __str__(self) -> str:
        return f"%{self.result} = neg {self.operand}"


class Assign(Instruction):
    """``result = src``: a copy (also how literals enter named values)."""

    __slots__ = ("src",)

    def __init__(self, result: str, src):
        self.result = result
        self.src = as_value(src)

    def uses(self) -> List[Value]:
        return [self.src]

    def replace_uses(self, mapping: Dict[str, Value]) -> None:
        self.src = self._subst(self.src, mapping)

    def __str__(self) -> str:
        return f"%{self.result} = copy {self.src}"


class Phi(Instruction):
    """``result = phi [pred1: v1, pred2: v2, ...]``.

    ``incoming`` maps predecessor block labels to values.  Only present in
    SSA form; the phi at a loop header is the anchor of every SCR the
    classifier inspects (section 3.1).
    """

    __slots__ = ("incoming",)

    def __init__(self, result: str, incoming: Optional[Dict[str, Value]] = None):
        self.result = result
        self.incoming: Dict[str, Value] = {}
        if incoming:
            for label, value in incoming.items():
                self.incoming[label] = as_value(value)

    def set_incoming(self, label: str, value) -> None:
        self.incoming[label] = as_value(value)

    def uses(self) -> List[Value]:
        return [self.incoming[label] for label in sorted(self.incoming)]

    def replace_uses(self, mapping: Dict[str, Value]) -> None:
        for label in list(self.incoming):
            self.incoming[label] = self._subst(self.incoming[label], mapping)

    def __str__(self) -> str:
        args = ", ".join(f"{label}: {value}" for label, value in sorted(self.incoming.items()))
        return f"%{self.result} = phi [{args}]"


def _as_indices(index) -> Optional[List[Value]]:
    """Coerce an index argument: None, a single value, or a sequence."""
    if index is None:
        return None
    if isinstance(index, (list, tuple)):
        return [as_value(v) for v in index]
    return [as_value(index)]


class Load(Instruction):
    """``result = load array[i1, i2, ...]`` or ``result = load scalar``.

    ``indices is None`` models an unsubscripted (scalar memory) load, whose
    address is trivially loop invariant -- the case the paper's SCR
    constraints admit ("any loads and stores are to unsubscripted
    variables", section 3.1).  Multi-dimensional subscripts (the paper's
    ``A(i, j)``, ``A(2, *, *)``) are one index value per dimension.
    """

    __slots__ = ("array", "indices")

    def __init__(self, result: str, array: str, index=None):
        self.result = result
        self.array = array
        self.indices = _as_indices(index)

    @property
    def index(self) -> Optional[Value]:
        """The single index of a 1-D reference (None for scalars)."""
        if self.indices is None:
            return None
        if len(self.indices) == 1:
            return self.indices[0]
        raise ValueError("multi-dimensional reference has no single index")

    def uses(self) -> List[Value]:
        return list(self.indices) if self.indices is not None else []

    def replace_uses(self, mapping: Dict[str, Value]) -> None:
        if self.indices is not None:
            self.indices = [self._subst(v, mapping) for v in self.indices]

    def __str__(self) -> str:
        if self.indices is None:
            return f"%{self.result} = load @{self.array}"
        subscript = ", ".join(str(v) for v in self.indices)
        return f"%{self.result} = load @{self.array}[{subscript}]"


class Store(Instruction):
    """``store array[i1, i2, ...], value`` (no result)."""

    __slots__ = ("array", "indices", "value")

    def __init__(self, array: str, index, value):
        self.result = None
        self.array = array
        self.indices = _as_indices(index)
        self.value = as_value(value)

    @property
    def index(self) -> Optional[Value]:
        if self.indices is None:
            return None
        if len(self.indices) == 1:
            return self.indices[0]
        raise ValueError("multi-dimensional reference has no single index")

    def uses(self) -> List[Value]:
        out = list(self.indices) if self.indices is not None else []
        out.append(self.value)
        return out

    def replace_uses(self, mapping: Dict[str, Value]) -> None:
        if self.indices is not None:
            self.indices = [self._subst(v, mapping) for v in self.indices]
        self.value = self._subst(self.value, mapping)

    def __str__(self) -> str:
        if self.indices is None:
            return f"store @{self.array}, {self.value}"
        subscript = ", ".join(str(v) for v in self.indices)
        return f"store @{self.array}[{subscript}], {self.value}"


class Compare(Instruction):
    """``result = lhs REL rhs`` producing 0/1."""

    __slots__ = ("relation", "lhs", "rhs")

    def __init__(self, result: str, relation: Relation, lhs, rhs):
        self.result = result
        self.relation = relation
        self.lhs = as_value(lhs)
        self.rhs = as_value(rhs)

    def uses(self) -> List[Value]:
        return [self.lhs, self.rhs]

    def replace_uses(self, mapping: Dict[str, Value]) -> None:
        self.lhs = self._subst(self.lhs, mapping)
        self.rhs = self._subst(self.rhs, mapping)

    def __str__(self) -> str:
        return f"%{self.result} = cmp {self.lhs} {self.relation} {self.rhs}"


# ----------------------------------------------------------------------
# terminators
# ----------------------------------------------------------------------
class Terminator:
    """Base class for block terminators."""

    def successors(self) -> Tuple[str, ...]:
        raise NotImplementedError

    def uses(self) -> List[Value]:
        return []

    def replace_uses(self, mapping: Dict[str, Value]) -> None:
        pass

    def retarget(self, old_label: str, new_label: str) -> None:
        """Replace successor ``old_label`` with ``new_label``."""
        raise NotImplementedError

    def _subst(self, value: Value, mapping: Dict[str, Value]) -> Value:
        if isinstance(value, Ref) and value.name in mapping:
            return mapping[value.name]
        return value


class Jump(Terminator):
    __slots__ = ("target",)

    def __init__(self, target: str):
        self.target = target

    def successors(self) -> Tuple[str, ...]:
        return (self.target,)

    def retarget(self, old_label: str, new_label: str) -> None:
        if self.target == old_label:
            self.target = new_label

    def __str__(self) -> str:
        return f"jump {self.target}"


class Branch(Terminator):
    """``branch cond, true_target, false_target``."""

    __slots__ = ("cond", "true_target", "false_target")

    def __init__(self, cond, true_target: str, false_target: str):
        self.cond = as_value(cond)
        self.true_target = true_target
        self.false_target = false_target

    def successors(self) -> Tuple[str, ...]:
        if self.true_target == self.false_target:
            return (self.true_target,)
        return (self.true_target, self.false_target)

    def uses(self) -> List[Value]:
        return [self.cond]

    def replace_uses(self, mapping: Dict[str, Value]) -> None:
        self.cond = self._subst(self.cond, mapping)

    def retarget(self, old_label: str, new_label: str) -> None:
        if self.true_target == old_label:
            self.true_target = new_label
        if self.false_target == old_label:
            self.false_target = new_label

    def __str__(self) -> str:
        return f"branch {self.cond}, {self.true_target}, {self.false_target}"


class Return(Terminator):
    __slots__ = ("value",)

    def __init__(self, value=None):
        self.value = as_value(value) if value is not None else None

    def successors(self) -> Tuple[str, ...]:
        return ()

    def uses(self) -> List[Value]:
        return [self.value] if self.value is not None else []

    def replace_uses(self, mapping: Dict[str, Value]) -> None:
        if self.value is not None:
            self.value = self._subst(self.value, mapping)

    def retarget(self, old_label: str, new_label: str) -> None:
        pass

    def __str__(self) -> str:
        if self.value is None:
            return "return"
        return f"return {self.value}"
