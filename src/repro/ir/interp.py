"""A reference interpreter for the IR.

The interpreter serves three purposes in this reproduction:

* **ground truth for classification** -- every closed form the classifier
  produces can be checked against the actual value sequence of the SSA name
  (property tests do exactly this);
* **ground truth for dependence testing** -- the memory trace
  (:class:`TraceRecorder`) yields the real dependences of an execution, so
  analysis results can be audited for soundness;
* **transform validation** -- strength reduction / peeling / substitution
  must preserve the observable array state.

It executes both the named (pre-SSA) and SSA forms; phis are resolved using
the dynamically preceding block, evaluated in parallel as usual.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir.function import Function, IRError
from repro.ir.instructions import (
    Assign,
    BinOp,
    Branch,
    Compare,
    Jump,
    Load,
    Phi,
    Return,
    Store,
    UnOp,
)
from repro.ir.opcodes import BinaryOp
from repro.ir.values import Const, Ref, Value


class InterpreterError(IRError):
    """Raised on runtime errors (unbound names, division by zero, fuel)."""


@dataclass(frozen=True)
class AccessEvent:
    """One dynamic memory access.

    ``iterations`` (when loop tracking is enabled) maps loop-header labels
    to the 0-based iteration index active at the access -- the ground
    truth for auditing dependence *direction vectors*.
    """

    time: int
    array: str
    index: Optional[Tuple[int, ...]]
    is_write: bool
    block: str
    position: int
    iterations: Optional[Tuple[Tuple[str, int], ...]] = None

    def iteration_of(self, header: str) -> Optional[int]:
        if self.iterations is None:
            return None
        for label, h in self.iterations:
            if label == header:
                return h
        return None

    @property
    def site(self) -> Tuple[str, int]:
        """Static identity of the accessing instruction."""
        return (self.block, self.position)


class TraceRecorder:
    """Collects :class:`AccessEvent` objects during execution."""

    def __init__(self) -> None:
        self.events: List[AccessEvent] = []

    def record(self, event: AccessEvent) -> None:
        self.events.append(event)

    def conflicts(self) -> List[Tuple[AccessEvent, AccessEvent]]:
        """All pairs touching the same array element, at least one a write.

        This is the ground-truth dependence relation of the execution
        (ordered by time: the earlier access first).
        """
        by_cell: Dict[Tuple[str, Optional[int]], List[AccessEvent]] = {}
        for event in self.events:
            by_cell.setdefault((event.array, event.index), []).append(event)
        pairs = []
        for cell_events in by_cell.values():
            for i, first in enumerate(cell_events):
                for second in cell_events[i + 1:]:
                    if first.is_write or second.is_write:
                        pairs.append((first, second))
        return pairs


@dataclass
class ExecutionResult:
    """Final state of an execution."""

    scalars: Dict[str, int]
    arrays: Dict[str, Dict[int, int]]
    return_value: Optional[int]
    steps: int
    value_history: Dict[str, List[int]] = field(default_factory=dict)


class Interpreter:
    """Executes a function with integer semantics.

    Division truncates toward zero (Fortran/C style), matching the
    assumptions of the trip-count arithmetic.  ``record_history`` collects
    the full sequence of values each name is assigned, which the property
    tests compare against classifier closed forms.
    """

    def __init__(
        self,
        function: Function,
        fuel: int = 1_000_000,
        trace: Optional[TraceRecorder] = None,
        record_history: bool = False,
        track_loops: Optional[Dict[str, set]] = None,
    ):
        self.function = function
        self.fuel = fuel
        self.trace = trace
        self.record_history = record_history
        # header label -> set of body block labels; enables per-access
        # iteration stamping in the trace
        self.track_loops = track_loops

    def run(
        self,
        args: Optional[Dict[str, int]] = None,
        arrays: Optional[Dict[str, Dict[int, int]]] = None,
    ) -> ExecutionResult:
        env: Dict[str, int] = {}
        for param in self.function.params:
            if args is None or param not in args:
                raise InterpreterError(f"missing argument for parameter {param!r}")
            env[param] = int(args[param])
        if args:
            unknown = set(args) - set(self.function.params)
            if unknown:
                raise InterpreterError(f"unknown arguments: {sorted(unknown)}")
        memory: Dict[str, Dict[int, int]] = {name: {} for name in self.function.arrays}
        if arrays:
            for name, contents in arrays.items():
                memory.setdefault(name, {}).update(contents)
        history: Dict[str, List[int]] = {}

        steps = 0
        time = 0
        label = self.function.entry_label
        previous_label: Optional[str] = None
        return_value: Optional[int] = None
        loop_iteration: Dict[str, Optional[int]] = (
            {header: None for header in self.track_loops} if self.track_loops else {}
        )

        while label is not None:
            if self.track_loops:
                for header, body in self.track_loops.items():
                    if label == header:
                        if (
                            previous_label is not None
                            and previous_label in body
                            and loop_iteration[header] is not None
                        ):
                            loop_iteration[header] += 1  # back edge
                        else:
                            loop_iteration[header] = 0  # loop entry
                    elif label not in body:
                        loop_iteration[header] = None  # left the loop
                self._loop_snapshot = tuple(
                    (h, k) for h, k in loop_iteration.items() if k is not None
                )
            block = self.function.block(label)
            # phis evaluate in parallel against the pre-block environment
            phis = block.phis()
            if phis:
                if previous_label is None:
                    raise InterpreterError(f"phi in entry block {label!r}")
                staged = {}
                for phi in phis:
                    if previous_label not in phi.incoming:
                        raise InterpreterError(
                            f"phi %{phi.result} has no incoming for edge "
                            f"{previous_label!r} -> {label!r}"
                        )
                    staged[phi.result] = self._value(phi.incoming[previous_label], env)
                env.update(staged)
                if self.record_history:
                    for name, value in staged.items():
                        history.setdefault(name, []).append(value)

            for position, inst in enumerate(block.instructions):
                if isinstance(inst, Phi):
                    continue
                steps += 1
                if steps > self.fuel:
                    raise InterpreterError("out of fuel (possible infinite loop)")
                self._execute(inst, env, memory, history, label, position, time)
                if isinstance(inst, (Load, Store)):
                    time += 1

            terminator = block.terminator
            previous_label = label
            if isinstance(terminator, Jump):
                label = terminator.target
            elif isinstance(terminator, Branch):
                cond = self._value(terminator.cond, env)
                label = terminator.true_target if cond else terminator.false_target
            elif isinstance(terminator, Return):
                if terminator.value is not None:
                    return_value = self._value(terminator.value, env)
                label = None
            else:
                raise InterpreterError(f"block {label!r} has no terminator")
            steps += 1
            if steps > self.fuel:
                raise InterpreterError("out of fuel (possible infinite loop)")

        return ExecutionResult(
            scalars=env,
            arrays=memory,
            return_value=return_value,
            steps=steps,
            value_history=history,
        )

    # ------------------------------------------------------------------
    def _cell(self, indices, env: Dict[str, int]):
        """Memory cell key: a tuple of index values (() for scalars)."""
        if indices is None:
            return ()
        return tuple(self._value(v, env) for v in indices)

    def _value(self, value: Value, env: Dict[str, int]) -> int:
        if isinstance(value, Const):
            return value.value
        if isinstance(value, Ref):
            if value.name not in env:
                raise InterpreterError(f"use of undefined value %{value.name}")
            return env[value.name]
        raise InterpreterError(f"bad operand {value!r}")

    def _execute(self, inst, env, memory, history, label, position, time) -> None:
        result_value: Optional[int] = None
        snapshot = getattr(self, "_loop_snapshot", None) if self.track_loops else None
        if isinstance(inst, Assign):
            result_value = self._value(inst.src, env)
        elif isinstance(inst, UnOp):
            result_value = -self._value(inst.operand, env)
        elif isinstance(inst, BinOp):
            lhs = self._value(inst.lhs, env)
            rhs = self._value(inst.rhs, env)
            result_value = _apply(inst.op, lhs, rhs)
        elif isinstance(inst, Compare):
            lhs = self._value(inst.lhs, env)
            rhs = self._value(inst.rhs, env)
            result_value = 1 if inst.relation.holds(lhs, rhs) else 0
        elif isinstance(inst, Load):
            index = self._cell(inst.indices, env)
            cells = memory.setdefault(inst.array, {})
            result_value = cells.get(index, 0)
            if self.trace is not None:
                self.trace.record(
                    AccessEvent(
                        time, inst.array, index, False, label, position,
                        iterations=snapshot,
                    )
                )
        elif isinstance(inst, Store):
            index = self._cell(inst.indices, env)
            value = self._value(inst.value, env)
            memory.setdefault(inst.array, {})[index] = value
            if self.trace is not None:
                self.trace.record(
                    AccessEvent(
                        time, inst.array, index, True, label, position,
                        iterations=snapshot,
                    )
                )
            return
        else:
            raise InterpreterError(f"cannot execute {inst!r}")

        if inst.result is not None:
            env[inst.result] = result_value
            if self.record_history:
                history.setdefault(inst.result, []).append(result_value)


def _apply(op: BinaryOp, lhs: int, rhs: int) -> int:
    if op is BinaryOp.ADD:
        return lhs + rhs
    if op is BinaryOp.SUB:
        return lhs - rhs
    if op is BinaryOp.MUL:
        return lhs * rhs
    if op is BinaryOp.DIV:
        if rhs == 0:
            raise InterpreterError("division by zero")
        quotient = abs(lhs) // abs(rhs)
        return quotient if (lhs >= 0) == (rhs >= 0) else -quotient
    if op is BinaryOp.MOD:
        if rhs == 0:
            raise InterpreterError("modulo by zero")
        return lhs - _apply(BinaryOp.DIV, lhs, rhs) * rhs
    if op is BinaryOp.EXP:
        if rhs < 0:
            raise InterpreterError("negative exponent")
        return lhs**rhs
    raise InterpreterError(f"unknown operator {op}")
