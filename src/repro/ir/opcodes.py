"""Operator codes.

The arithmetic set mirrors Figure 2 of the paper: AD (addition), SB
(subtraction), MP (multiplication), DV (division), EX (exponentiation), NG
(negate), PH (phi), LD (load), ST (store), LT (literal).  Literals appear as
:class:`~repro.ir.values.Const` operands rather than separate instructions;
phi/load/store are distinct instruction classes.  Comparisons carry a
:class:`Relation` and feed conditional branches (and the trip-count
analysis of section 5.2).
"""

from __future__ import annotations

import enum


class BinaryOp(enum.Enum):
    """Binary arithmetic operators (paper Figure 2 mnemonics in comments)."""

    ADD = "add"  # AD
    SUB = "sub"  # SB
    MUL = "mul"  # MP
    DIV = "div"  # DV  (integer division, truncating toward zero)
    EXP = "exp"  # EX
    MOD = "mod"  # remainder; not in Figure 2 but needed by realistic inputs

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class Relation(enum.Enum):
    """Integer comparison relations for Compare/Branch and trip counts."""

    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "!="

    def negate(self) -> "Relation":
        """The complement relation (used when the *false* branch exits)."""
        return _NEGATE[self]

    def swap(self) -> "Relation":
        """The relation with operands swapped (a R b  <=>  b swap(R) a)."""
        return _SWAP[self]

    def holds(self, left: int, right: int) -> bool:
        if self is Relation.LT:
            return left < right
        if self is Relation.LE:
            return left <= right
        if self is Relation.GT:
            return left > right
        if self is Relation.GE:
            return left >= right
        if self is Relation.EQ:
            return left == right
        return left != right

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


_NEGATE = {
    Relation.LT: Relation.GE,
    Relation.LE: Relation.GT,
    Relation.GT: Relation.LE,
    Relation.GE: Relation.LT,
    Relation.EQ: Relation.NE,
    Relation.NE: Relation.EQ,
}

_SWAP = {
    Relation.LT: Relation.GT,
    Relation.LE: Relation.GE,
    Relation.GT: Relation.LT,
    Relation.GE: Relation.LE,
    Relation.EQ: Relation.EQ,
    Relation.NE: Relation.NE,
}
