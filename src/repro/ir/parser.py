"""Parser for the textual IR form produced by :mod:`repro.ir.printer`.

Useful for writing IR fixtures in tests without the builder, and to verify
the printer round-trips.
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.ir.function import Function, IRError
from repro.ir.instructions import (
    Assign,
    BinOp,
    Branch,
    Compare,
    Jump,
    Load,
    Phi,
    Return,
    Store,
    UnOp,
)
from repro.ir.opcodes import BinaryOp, Relation
from repro.ir.values import Const, Ref, Value

_HEADER = re.compile(r"^func\s+(\w+)\s*\(([^)]*)\)(?:\s*arrays\(([^)]*)\))?\s*\{$")
_LABEL = re.compile(r"^(\w[\w.]*):$")
_BINOPS = {op.value: op for op in BinaryOp}
_RELS = {rel.value: rel for rel in Relation}


class IRParseError(IRError):
    """Raised on malformed textual IR."""

    def __init__(self, line_number: int, message: str):
        super().__init__(f"line {line_number}: {message}")
        self.line_number = line_number


def _parse_value(text: str, lineno: int) -> Value:
    text = text.strip()
    if text.startswith("%"):
        return Ref(text[1:])
    try:
        return Const(int(text))
    except ValueError:
        raise IRParseError(lineno, f"bad operand {text!r}") from None


def _split_args(text: str) -> List[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def parse_function(source: str) -> Function:
    """Parse one function from its textual form."""
    lines = [(i + 1, line.strip()) for i, line in enumerate(source.splitlines())]
    lines = [(no, line) for no, line in lines if line and not line.startswith("#")]
    if not lines:
        raise IRParseError(0, "empty input")

    lineno, header = lines[0]
    match = _HEADER.match(header)
    if not match:
        raise IRParseError(lineno, f"bad function header: {header!r}")
    name, params_text, arrays_text = match.groups()
    params = _split_args(params_text)
    arrays = _split_args(arrays_text) if arrays_text else []
    function = Function(name, params=params, arrays=arrays)

    current = None
    closed = False
    for lineno, line in lines[1:]:
        if closed:
            raise IRParseError(lineno, "content after closing brace")
        if line == "}":
            closed = True
            continue
        label_match = _LABEL.match(line)
        if label_match:
            current = function.add_block(label_match.group(1))
            continue
        if current is None:
            raise IRParseError(lineno, "instruction before first block label")
        _parse_line(function, current, line, lineno)
    if not closed:
        raise IRParseError(lines[-1][0], "missing closing brace")
    return function


def _parse_line(function: Function, block, line: str, lineno: int) -> None:
    # terminators
    if line.startswith("jump "):
        block.terminator = Jump(line[5:].strip())
        return
    if line.startswith("branch "):
        parts = _split_args(line[7:])
        if len(parts) != 3:
            raise IRParseError(lineno, "branch needs cond, true, false")
        block.terminator = Branch(_parse_value(parts[0], lineno), parts[1], parts[2])
        return
    if line == "return":
        block.terminator = Return()
        return
    if line.startswith("return "):
        block.terminator = Return(_parse_value(line[7:], lineno))
        return
    if line.startswith("store "):
        rest = line[6:]
        target, _, value_text = rest.rpartition(",")
        if not target:
            raise IRParseError(lineno, "store needs a target and a value")
        target = target.strip()
        value = _parse_value(value_text, lineno)
        arr_match = re.match(r"^@(\w+)(?:\[(.+)\])?$", target)
        if not arr_match:
            raise IRParseError(lineno, f"bad store target {target!r}")
        array, index_text = arr_match.groups()
        indices = (
            [_parse_value(t, lineno) for t in _split_args(index_text)]
            if index_text
            else None
        )
        block.append(Store(array, indices, value))
        return

    # definitions: "%name = ..."
    def_match = re.match(r"^%(\S+)\s*=\s*(.+)$", line)
    if not def_match:
        raise IRParseError(lineno, f"unrecognized instruction {line!r}")
    result, rhs = def_match.groups()

    if rhs.startswith("phi "):
        body = rhs[4:].strip()
        if not (body.startswith("[") and body.endswith("]")):
            raise IRParseError(lineno, "phi arguments must be bracketed")
        phi = Phi(result)
        inner = body[1:-1].strip()
        if inner:
            for part in inner.split(","):
                if ":" not in part:
                    raise IRParseError(lineno, f"bad phi argument {part!r}")
                label, value_text = part.split(":", 1)
                phi.set_incoming(label.strip(), _parse_value(value_text, lineno))
        block.append(phi)
        return
    if rhs.startswith("copy "):
        block.append(Assign(result, _parse_value(rhs[5:], lineno)))
        return
    if rhs.startswith("neg "):
        block.append(UnOp(result, _parse_value(rhs[4:], lineno)))
        return
    if rhs.startswith("load "):
        target = rhs[5:].strip()
        arr_match = re.match(r"^@(\w+)(?:\[(.+)\])?$", target)
        if not arr_match:
            raise IRParseError(lineno, f"bad load source {target!r}")
        array, index_text = arr_match.groups()
        indices = (
            [_parse_value(t, lineno) for t in _split_args(index_text)]
            if index_text
            else None
        )
        block.append(Load(result, array, indices))
        return
    if rhs.startswith("cmp "):
        body = rhs[4:]
        for symbol in ("<=", ">=", "==", "!=", "<", ">"):
            if f" {symbol} " in body:
                lhs_text, rhs_text = body.split(f" {symbol} ", 1)
                block.append(
                    Compare(
                        result,
                        _RELS[symbol],
                        _parse_value(lhs_text, lineno),
                        _parse_value(rhs_text, lineno),
                    )
                )
                return
        raise IRParseError(lineno, f"bad comparison {body!r}")

    op_match = re.match(r"^(\w+)\s+(.+)$", rhs)
    if op_match and op_match.group(1) in _BINOPS:
        operands = _split_args(op_match.group(2))
        if len(operands) != 2:
            raise IRParseError(lineno, "binary op needs two operands")
        block.append(
            BinOp(
                result,
                _BINOPS[op_match.group(1)],
                _parse_value(operands[0], lineno),
                _parse_value(operands[1], lineno),
            )
        )
        return
    raise IRParseError(lineno, f"unrecognized instruction {line!r}")
