"""Textual form of the IR.

The format round-trips through :mod:`repro.ir.parser`:

.. code-block:: text

    func example(n) arrays(A) {
    entry:
      %i = copy 0
      jump loop
    loop:
      %i1 = phi [entry: %i, loop: %i2]
      %i2 = add %i1, 1
      %c = cmp %i2 > %n
      branch %c, exit, loop
    exit:
      return
    }
"""

from __future__ import annotations

from repro.ir.function import Function


def print_function(function: Function) -> str:
    """Render a function to its textual form."""
    header = f"func {function.name}({', '.join(function.params)})"
    if function.arrays:
        header += f" arrays({', '.join(function.arrays)})"
    lines = [header + " {"]
    for block in function:
        lines.append(f"{block.label}:")
        for inst in block:
            lines.append(f"  {inst}")
        if block.terminator is not None:
            lines.append(f"  {block.terminator}")
        else:
            lines.append("  <no terminator>")
    lines.append("}")
    return "\n".join(lines)
