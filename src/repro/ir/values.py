"""Operand values: integer constants and references to named values."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class Const:
    """An integer literal operand (the paper's LT tuples)."""

    value: int

    def __post_init__(self) -> None:
        if not isinstance(self.value, int) or isinstance(self.value, bool):
            raise TypeError("Const value must be an int")

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Ref:
    """A reference to a named value (variable before SSA, SSA name after)."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("Ref name must be non-empty")

    def __str__(self) -> str:
        return f"%{self.name}"


Value = Union[Const, Ref]


def as_value(operand: Union[Value, int, str]) -> Value:
    """Coerce builder-friendly operands: int -> Const, str -> Ref."""
    if isinstance(operand, (Const, Ref)):
        return operand
    if isinstance(operand, bool):
        raise TypeError("bool is not a valid IR operand")
    if isinstance(operand, int):
        return Const(operand)
    if isinstance(operand, str):
        return Ref(operand)
    raise TypeError(f"cannot use {type(operand).__name__} as an IR operand")
