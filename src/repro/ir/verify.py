"""IR well-formedness checks.

Two levels:

* structural (any IR): every block has a terminator, every branch target
  exists, the entry block exists, no instruction follows a terminator.
* SSA (``ssa=True``): unique definitions, phis only as block prefixes with
  one incoming value per predecessor, and every use dominated by its
  definition (phi uses checked at the incoming edge's predecessor).
"""

from __future__ import annotations

from typing import Dict, Set

from repro.ir.function import Function, IRError
from repro.ir.instructions import Phi, Ref
from repro.ir.values import Const


def verify_function(function: Function, ssa: bool = False) -> None:
    """Raise :class:`IRError` on the first problem found."""
    if not function.blocks:
        raise IRError(f"{function.name}: function has no blocks")
    if function.entry_label not in function.blocks:
        raise IRError(f"{function.name}: entry label missing")

    preds = function.predecessors_map()  # also validates branch targets

    for block in function:
        if block.terminator is None:
            raise IRError(f"{function.name}/{block.label}: missing terminator")
        seen_non_phi = False
        for inst in block:
            if isinstance(inst, Phi):
                if seen_non_phi:
                    raise IRError(
                        f"{function.name}/{block.label}: phi after non-phi instruction"
                    )
            else:
                seen_non_phi = True

    if ssa:
        _verify_ssa(function, preds)


def _verify_ssa(function: Function, preds: Dict[str, list]) -> None:
    # unique definitions
    defined_in: Dict[str, str] = {}
    for block in function:
        for inst in block:
            if inst.result is None:
                continue
            if inst.result in defined_in:
                raise IRError(
                    f"{function.name}: {inst.result!r} defined in both "
                    f"{defined_in[inst.result]!r} and {block.label!r}"
                )
            if inst.result in function.params:
                raise IRError(
                    f"{function.name}: {inst.result!r} shadows a parameter"
                )
            defined_in[inst.result] = block.label

    # phi arity matches predecessors
    for block in function:
        block_preds = set(preds[block.label])
        for phi in block.phis():
            incoming = set(phi.incoming)
            if incoming != block_preds:
                raise IRError(
                    f"{function.name}/{block.label}: phi %{phi.result} incoming "
                    f"{sorted(incoming)} != predecessors {sorted(block_preds)}"
                )

    # dominance of uses
    from repro.analysis.dominators import dominator_tree

    domtree = dominator_tree(function)
    def_site: Dict[str, tuple] = {}
    for block in function:
        for position, inst in enumerate(block.instructions):
            if inst.result is not None:
                def_site[inst.result] = (block.label, position)

    def dominates_use(name: str, use_block: str, use_position: int) -> bool:
        if name in function.params:
            return True
        if name not in def_site:
            return False
        def_block, def_position = def_site[name]
        if def_block == use_block:
            return def_position < use_position
        return domtree.dominates(def_block, use_block)

    for block in function:
        for position, inst in enumerate(block.instructions):
            if isinstance(inst, Phi):
                for pred_label, value in inst.incoming.items():
                    if isinstance(value, Ref):
                        pred_block = function.block(pred_label)
                        if not dominates_use(
                            value.name, pred_label, len(pred_block.instructions) + 1
                        ):
                            raise IRError(
                                f"{function.name}/{block.label}: phi %{inst.result} uses "
                                f"%{value.name} not available on edge from {pred_label!r}"
                            )
                continue
            for value in inst.uses():
                if isinstance(value, Ref) and not dominates_use(
                    value.name, block.label, position
                ):
                    raise IRError(
                        f"{function.name}/{block.label}: use of %{value.name} "
                        f"not dominated by its definition"
                    )
        terminator = block.terminator
        if terminator is not None:
            for value in terminator.uses():
                if isinstance(value, Ref) and not dominates_use(
                    value.name, block.label, len(block.instructions)
                ):
                    raise IRError(
                        f"{function.name}/{block.label}: terminator uses %{value.name} "
                        f"not dominated by its definition"
                    )
