"""IR well-formedness checks (raise-on-first compatibility wrapper).

The actual checks live in :mod:`repro.diagnostics.verifier`, which
*collects every* violation as structured
:class:`~repro.diagnostics.diagnostic.Diagnostic` objects.  This module
keeps the original contract -- raise :class:`IRError` on the first
problem -- for callers that just want a pass/fail guard.

Two levels:

* structural (any IR): every block has a terminator, every branch target
  exists, the entry block exists, phis form a block prefix, no phi in the
  entry block, no unreachable blocks (reported as warnings, not raised).
* SSA (``ssa=True``): unique definitions, phis with one incoming value per
  predecessor, no self-referential non-phi definitions, and every use
  dominated by its definition (phi uses checked at the incoming edge's
  predecessor).
"""

from __future__ import annotations

from typing import List

from repro.ir.function import Function, IRError


def verify_function(function: Function, ssa: bool = False) -> None:
    """Raise :class:`IRError` on the first error-severity problem found."""
    from repro.diagnostics.diagnostic import Severity
    from repro.diagnostics.verifier import verify_collect

    for diagnostic in verify_collect(function, ssa=ssa):
        if diagnostic.severity >= Severity.ERROR:
            raise IRError(diagnostic.message)


def verify_diagnostics(function: Function, ssa: bool = False) -> List:
    """Collect-all variant: every violation as a :class:`Diagnostic`."""
    from repro.diagnostics.verifier import verify_collect

    return verify_collect(function, ssa=ssa)
