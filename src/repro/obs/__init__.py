"""Observability: pipeline tracing, metrics, and classification provenance.

Three always-available, zero-cost-when-disabled layers over the pipeline:

* **span tracing** (:mod:`repro.obs.trace`) -- nested, timed spans for
  every pipeline phase plus per-SCR classification events, activated with
  :func:`tracing`;
* **metrics** (:mod:`repro.obs.metrics`) -- counters / gauges / histograms
  (class distribution, Tarjan graph sizes, Expr memo hit rates, matrix
  inversions, sanitizer checkpoints, per-phase timings), activated with
  :func:`collecting`;
* **provenance** (:mod:`repro.obs.provenance` / :mod:`repro.obs.explain`)
  -- every classification records the algebra rule and operand classes
  that produced it, rendered by :func:`explain` as a derivation chain.

Built on top of those three, the second generation:

* **why-not-DOALL attribution** (:mod:`repro.obs.attribution`) -- every
  serial parallelism verdict carries structured :class:`BlockReason`
  chains (blocking dependence pair, subscript kinds, direction vector,
  whether a ⊤ trip range or an Unknown classification blocked
  refinement), surfaced in reports, ``explain("L1")``, and the
  ``dep.blocked.<reason>`` metric family;
* **the flight recorder** (:mod:`repro.obs.runlog`) -- :func:`recording`
  appends one structured JSON record per analyzed function to a
  ``.repro/runs`` store;
* **corpus statistics** (:mod:`repro.obs.aggregate`, ``repro stats``) --
  folds a store into class-distribution histograms, attribution tables,
  degradation rollups, and p50/p99 phase latencies;
* **Prometheus export** (:mod:`repro.obs.promexport`) --
  :func:`prometheus_text` renders a registry in text exposition format.

Quick start::

    from repro import analyze
    from repro.obs import observing, explain
    from repro.obs.export import write_chrome, write_metrics

    with observing() as obs:
        program = analyze(source)
    write_chrome(obs.tracer, "trace.json")      # chrome://tracing
    write_metrics(obs.metrics, "metrics.json")
    print(explain(program, "i"))                # derivation chain

``SPAN_NAMES``, ``EVENT_NAMES``, ``METRIC_NAMES`` and ``RULE_NAMES`` are
the authoritative catalogues of everything the built-in instrumentation
may emit (documented one-for-one in ``docs/OBSERVABILITY.md``; the
doc-sync test enforces both directions).  Metric names ending in ``.``
are prefixes for families with dynamic suffixes (classification class
names, span names).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import NamedTuple, Optional

from repro.obs import aggregate as _aggregate_module  # noqa: F401 - submodule
from repro.obs.attribution import REASON_SLUGS, BlockReason, why_not_doall
from repro.obs.explain import explain, explain_lines
from repro.obs.export import (
    chrome_trace,
    jsonl_lines,
    metrics_json,
    validate_chrome_trace,
    write_chrome,
    write_jsonl,
    write_metrics,
)
from repro.obs.metrics import MetricsRegistry, collecting, isolated
from repro.obs.promexport import prometheus_text, write_prometheus
from repro.obs.provenance import Provenance, provenance_of, remember
from repro.obs.runlog import RUNLOG_SCHEMA, RunLogWriter, capture, origin, recording
from repro.obs.trace import Tracer, event, span, traced, tracing

#: every span name the built-in instrumentation can open
SPAN_NAMES = frozenset(
    {
        "pipeline.analyze",
        "pipeline.optimize",
        "frontend.parse",
        "frontend.lower",
        "pyfront.lower",
        "analysis.loop-simplify",
        "ssa.construct",
        "scalar.sccp",
        "scalar.simplify",
        "scalar.gvn",
        "scalar.copyprop",
        "scalar.dce",
        "scalar.mem2reg",
        "classify",
        "classify.loop",
        "dependence.graph",
        "dependence.test",
        "transform.strength-reduce",
        "transform.ivsubst",
        "transform.licm",
        "transform.peel",
        "transform.normalize",
        "transform.unroll",
        "trace.target",
        "ranges",
        "invariants",
        "service.request",
    }
)

#: every event name the built-in instrumentation can emit
EVENT_NAMES = frozenset(
    {
        "classify.scr",
        "sanitizer.checkpoint",
        "resilience.degraded",
        "service.retry",
    }
)

#: every derivation-rule name provenance records / ``--explain`` prints:
#: ``algebra.*`` for per-operator classification and the axioms,
#: ``scr.*`` for the cyclic-SCR constructions of sections 4.1-4.4
RULE_NAMES = frozenset(
    {
        # axioms (operand classification)
        "algebra.const",
        "algebra.loop-invariant",
        "algebra.top-level-invariant",
        # per-operator rules (one per instruction kind)
        "algebra.copy",
        "algebra.neg",
        "algebra.phi-merge",
        "algebra.load",
        "algebra.compare",
        "algebra.store",
        "algebra.exit-value",
        "algebra.add",
        "algebra.sub",
        "algebra.mul",
        "algebra.div",
        "algebra.exp",
        "algebra.mod",
        # cyclic-SCR constructions
        "scr.wrap-around",
        "scr.invariant-cycle",
        "scr.linear-recurrence",
        "scr.polynomial-recurrence",
        "scr.flip-flop",
        "scr.geometric-recurrence",
        "scr.member",
        "scr.periodic-family",
        "scr.monotonic-family",
        "scr.monotonic-member",
        "scr.branch-dependent",
        "scr.branch-member",
    }
)

#: metric names (exact, plus ``...`` families whose suffix is dynamic:
#: ``classify.class.<Classification>`` and ``time.<span>_s``)
METRIC_NAMES = frozenset(
    {
        "classify.class.",  # family: one counter per classification class
        "classify.loops",
        "classify.names",
        "tarjan.nodes",
        "tarjan.edges",
        "tarjan.scrs",
        "expr.cache.sym.hits",
        "expr.cache.sym.misses",
        "expr.cache.subst.hits",
        "expr.cache.subst.misses",
        "expr.cache.const.hits",
        "expr.cache.const.misses",
        "expr.cache.size",
        "closedform.matrix_inversions",
        "closedform.degraded",
        "sanitizer.checkpoints",
        "dependence.pairs",
        "resilience.degraded.",  # family: one counter per degraded phase
        "resilience.faults.injected",
        "ranges.values",
        "ranges.nontrivial",
        "ranges.loops",
        "ranges.trips.bounded",
        "ranges.fixpoint.insts",
        "ranges.fixpoint.visits",
        "ranges.fixpoint.narrowed",
        "invariants.loops",
        "invariants.paths",
        "invariants.pruned_paths",
        "invariants.equalities",
        "invariants.affine_loops",
        "invariants.range_refinements",
        "interval.cache.bound.hits",
        "interval.cache.bound.misses",
        "interval.cache.point.hits",
        "interval.cache.point.misses",
        "interval.cache.size",
        "dep.blocked.",  # family: one counter per why-not-DOALL reason slug
        # the real-Python frontend (repro pylint)
        "pyfront.functions",
        "pyfront.degraded",
        "obs.overhead.",  # family: the observability layer's own cost
        "time.",  # family: one histogram per span name
        # the analysis service (repro serve)
        "service.connections",
        "service.requests",
        "service.requests.degraded",
        "service.requests.failed",
        "service.errors",
        "service.retries",
        "service.latency",
        "service.timeouts",
        "service.worker.crashes",
        "service.worker.respawns",
        "service.cache.hits",
        "service.cache.misses",
        "service.cache.evictions",
        "service.cache.errors",
        "service.breaker.opened",
        "service.breaker.shed",
        "service.runlog.errors",
        "service.idle_timeouts",
        "service.responses.truncated",
    }
)


class Observation(NamedTuple):
    """The tracer + registry pair of one :func:`observing` context."""

    tracer: Tracer
    metrics: MetricsRegistry


@contextmanager
def observing(
    tracer: Optional[Tracer] = None, metrics: Optional[MetricsRegistry] = None
):
    """Activate tracing *and* metrics collection together."""
    with tracing(tracer) as active_tracer:
        with collecting(metrics) as active_metrics:
            yield Observation(active_tracer, active_metrics)


def known_metric(name: str) -> bool:
    """True when ``name`` is in the catalogue (exact or family prefix)."""
    if name in METRIC_NAMES:
        return True
    return any(name.startswith(prefix) for prefix in METRIC_NAMES if prefix.endswith("."))


__all__ = [
    "BlockReason",
    "EVENT_NAMES",
    "METRIC_NAMES",
    "MetricsRegistry",
    "Observation",
    "Provenance",
    "REASON_SLUGS",
    "RULE_NAMES",
    "RUNLOG_SCHEMA",
    "RunLogWriter",
    "SPAN_NAMES",
    "Tracer",
    "capture",
    "chrome_trace",
    "collecting",
    "event",
    "explain",
    "explain_lines",
    "isolated",
    "jsonl_lines",
    "known_metric",
    "metrics_json",
    "observing",
    "origin",
    "prometheus_text",
    "provenance_of",
    "recording",
    "remember",
    "span",
    "traced",
    "tracing",
    "validate_chrome_trace",
    "why_not_doall",
    "write_chrome",
    "write_jsonl",
    "write_metrics",
    "write_prometheus",
]
