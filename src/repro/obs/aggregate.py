"""Corpus-scale aggregation of flight-recorder run logs (``repro stats``).

Folds the JSONL records a :mod:`repro.obs.runlog` store accumulated into
one statistics document: class-distribution histograms (the paper's
table-2 view at corpus scale), DOALL/serial fractions with a ranked
why-not-DOALL attribution table, degradation and fault rollups, p50/p99
per-phase latencies, and summed counters.  ``diff_stats`` compares two
stores (or single run files) for regression tracking.

``strict_problems`` is the CI gate: it reports malformed or
schema-mismatched records, capture-error records, and -- the attribution
invariant -- any serial loop whose structured reason chain is empty.
"""

from __future__ import annotations

import json
import math
import os
from typing import Any, Dict, List, Optional

from repro.obs.runlog import RUNLOG_SCHEMA

#: record schemas ``repro stats`` can read.  Schema 1 predates the
#: ``source_lang`` field (added by the real-Python frontend); its records
#: aggregate with the language defaulted to ``"loop"``.
READABLE_SCHEMAS = frozenset({1, RUNLOG_SCHEMA})

__all__ = [
    "READABLE_SCHEMAS",
    "aggregate",
    "diff_stats",
    "load_records",
    "percentile",
    "render_diff_text",
    "render_json",
    "render_text",
    "strict_problems",
    "validate_record",
]


# ----------------------------------------------------------------------
# loading + validation
# ----------------------------------------------------------------------
def record_files(path: str) -> List[str]:
    """The run files of a store: a directory's sorted ``*.jsonl``, or the
    file itself."""
    if os.path.isdir(path):
        return sorted(
            os.path.join(path, name)
            for name in os.listdir(path)
            if name.endswith(".jsonl")
        )
    return [path]


def load_records(path: str) -> List[Dict[str, Any]]:
    """Every record in a store.  Unparseable lines become error records
    (kept, so ``--strict`` can fail on them) instead of raising.

    Torn-write recovery: the writer appends each record as one atomic
    ``O_APPEND`` write, so a crash (SIGKILLed server, dead worker) can
    leave at most one truncated line -- the file's *last*.  An
    unparseable final line is therefore marked ``_torn`` and skipped by
    aggregation and ``--strict`` (counted, not fatal), while a bad line
    anywhere else is real corruption and stays an error record.
    """
    records: List[Dict[str, Any]] = []
    for filename in record_files(path):
        with open(filename) as handle:
            lines = handle.readlines()
        for lineno, raw in enumerate(lines, 1):
            line = raw.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                if lineno == len(lines) and not raw.endswith("\n"):
                    # a crash mid-append truncates the newline along with
                    # the line; a bad-but-complete line is real corruption
                    record = {"_torn": f"truncated tail line: {error}"}
                else:
                    record = {"error": f"unparseable record: {error}"}
            if not isinstance(record, dict):
                record = {"error": "record is not an object"}
            record.setdefault("_file", f"{os.path.basename(filename)}:{lineno}")
            records.append(record)
    return records


def validate_record(record: Dict[str, Any]) -> Optional[str]:
    """The first structural problem of one record, or None when clean."""
    if "error" in record:
        return f"capture error: {record['error']}"
    schema = record.get("schema")
    if schema not in READABLE_SCHEMAS:
        readable = sorted(READABLE_SCHEMAS)
        return f"schema mismatch: {schema!r} (readable: {readable})"
    for key in ("fingerprint", "loops", "classes", "parallel", "blocked"):
        if key not in record:
            return f"missing field {key!r}"
    if not isinstance(record["loops"], list):
        return "loops is not a list"
    for loop in record["loops"]:
        if loop.get("parallel") is False and not loop.get("blocked_by"):
            return (
                f"serial loop {loop.get('header')!r} has an empty "
                "why-not-DOALL reason chain"
            )
    return None


def strict_problems(records: List[Dict[str, Any]]) -> List[str]:
    """Everything ``repro stats --strict`` fails on."""
    if not records:
        return ["empty store: no run-log records found"]
    problems: List[str] = []
    for record in records:
        if "_torn" in record:
            continue  # recovered crash artifact, not corruption
        problem = validate_record(record)
        if problem is not None:
            where = record.get("origin") or record.get("_file", "<record>")
            problems.append(f"{where}: {problem}")
    return problems


# ----------------------------------------------------------------------
# aggregation
# ----------------------------------------------------------------------
def percentile(values: List[float], q: float) -> Optional[float]:
    """Nearest-rank percentile (q in [0, 100]) of an unsorted list."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def _bump(table: Dict[str, int], key: str, amount: int = 1) -> None:
    table[key] = table.get(key, 0) + amount


def aggregate(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold run-log records into one corpus statistics document."""
    classes: Dict[str, int] = {}
    blocked: Dict[str, int] = {}
    blocked_examples: Dict[str, str] = {}
    degradations: Dict[str, int] = {}
    counters: Dict[str, float] = {}
    phase_samples: Dict[str, List[float]] = {}
    parallel = {"doall": 0, "serial": 0, "undecided": 0}
    ranges = {"records": 0, "values": 0, "nontrivial": 0, "trips_bounded": 0}
    invariants = {"records": 0, "loops": 0, "equalities": 0}
    languages: Dict[str, int] = {}
    fingerprints = set()
    loops = errors = torn = 0

    for record in records:
        if "_torn" in record:
            torn += 1
            continue
        if "error" in record:
            errors += 1
            continue
        fingerprints.add(record.get("fingerprint"))
        # schema-1 records predate the field: they are all DSL runs
        _bump(languages, record.get("source_lang") or "loop")
        for kind, count in record.get("classes", {}).items():
            _bump(classes, kind, count)
        for key in parallel:
            parallel[key] += record.get("parallel", {}).get(key, 0)
        origin = record.get("origin") or record.get("_file", "")
        for loop in record.get("loops", []):
            loops += 1
            for reason_record in loop.get("blocked_by", []):
                reason = reason_record.get("reason", "no-direction-info")
                _bump(blocked, reason)
                blocked_examples.setdefault(
                    reason, f"{origin} {loop.get('header', '?')}".strip()
                )
        for degradation in record.get("degradations", []):
            _bump(degradations, degradation.get("phase", "?"))
        for name, value in record.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for span, seconds in record.get("phases", {}).items():
            phase_samples.setdefault(span, []).append(float(seconds))
        for stats, key in ((ranges, "ranges"), (invariants, "invariants")):
            section = record.get(key)
            if section:
                stats["records"] += 1
                for field in stats:
                    if field != "records":
                        stats[field] += section.get(field, 0)

    phases = {
        span: {
            "count": len(samples),
            "total_s": round(sum(samples), 9),
            "p50_s": round(percentile(samples, 50), 9),
            "p99_s": round(percentile(samples, 99), 9),
            "max_s": round(max(samples), 9),
        }
        for span, samples in sorted(phase_samples.items())
    }
    decided = parallel["doall"] + parallel["serial"]
    return {
        "schema": RUNLOG_SCHEMA,
        "records": len(records) - torn,
        "errors": errors,
        "torn": torn,
        "functions": len(fingerprints),
        "languages": dict(sorted(languages.items())),
        "loops": loops,
        "classes": dict(sorted(classes.items())),
        "parallel": parallel,
        "doall_fraction": (parallel["doall"] / decided) if decided else None,
        "blocked": dict(sorted(blocked.items())),
        "blocked_examples": blocked_examples,
        "degradations": dict(sorted(degradations.items())),
        "counters": dict(sorted(counters.items())),
        "phases": phases,
    }


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
_BAR_WIDTH = 24


def _bar(count: int, total: int) -> str:
    if total <= 0:
        return ""
    filled = int(round(_BAR_WIDTH * count / total))
    return "#" * max(filled, 1 if count else 0)


def render_text(stats: Dict[str, Any]) -> str:
    """The corpus statistics as a human-readable report."""
    lines: List[str] = []
    lines.append("== corpus ==")
    torn = stats.get("torn", 0)
    torn_note = f", {torn} torn line(s) skipped" if torn else ""
    lines.append(
        f"  records: {stats['records']} ({stats['errors']} capture error(s)"
        f"{torn_note}), "
        f"distinct functions: {stats['functions']}, loops: {stats['loops']}"
    )
    languages = stats.get("languages") or {}
    if languages:
        shown = ", ".join(f"{lang} {count}" for lang, count in languages.items())
        lines.append(f"  source languages: {shown}")
    lines.append("")
    lines.append("== class distribution ==")
    total_names = sum(stats["classes"].values())
    if not stats["classes"]:
        lines.append("  no classifications recorded")
    for kind, count in sorted(
        stats["classes"].items(), key=lambda item: (-item[1], item[0])
    ):
        share = 100.0 * count / total_names if total_names else 0.0
        lines.append(
            f"  {kind:<18} {count:>6}  {share:5.1f}%  {_bar(count, total_names)}"
        )
    lines.append("")
    lines.append("== parallelism ==")
    parallel = stats["parallel"]
    fraction = stats["doall_fraction"]
    shown = "n/a" if fraction is None else f"{100.0 * fraction:.1f}%"
    lines.append(
        f"  DOALL {parallel['doall']}, serial {parallel['serial']}, "
        f"undecided {parallel['undecided']}  (DOALL share: {shown})"
    )
    lines.append("")
    lines.append("== why not DOALL ==")
    if not stats["blocked"]:
        lines.append("  every decided loop is parallelizable")
    else:
        lines.append(f"  {'reason':<18} {'blocks':>6}  example")
        for reason, count in sorted(
            stats["blocked"].items(), key=lambda item: (-item[1], item[0])
        ):
            example = stats["blocked_examples"].get(reason, "")
            lines.append(f"  {reason:<18} {count:>6}  {example}")
    lines.append("")
    lines.append("== degradations ==")
    if not stats["degradations"]:
        lines.append("  none")
    for phase, count in sorted(stats["degradations"].items()):
        lines.append(f"  {phase:<28} {count:>6}")
    if stats["phases"]:
        lines.append("")
        lines.append("== phase latencies (s) ==")
        lines.append(
            f"  {'span':<24} {'count':>5} {'p50':>12} {'p99':>12} {'total':>12}"
        )
        for span, row in stats["phases"].items():
            lines.append(
                f"  {span:<24} {row['count']:>5} {row['p50_s']:>12.6f} "
                f"{row['p99_s']:>12.6f} {row['total_s']:>12.6f}"
            )
    return "\n".join(lines)


def render_json(stats: Dict[str, Any]) -> str:
    return json.dumps(stats, indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# regression diff
# ----------------------------------------------------------------------
def _table_diff(old: Dict[str, int], new: Dict[str, int]) -> Dict[str, Dict]:
    out: Dict[str, Dict] = {}
    for key in sorted(set(old) | set(new)):
        before, after = old.get(key, 0), new.get(key, 0)
        if before != after:
            out[key] = {"old": before, "new": after, "delta": after - before}
    return out


def diff_stats(old: Dict[str, Any], new: Dict[str, Any]) -> Dict[str, Any]:
    """Structured comparison of two aggregated statistics documents."""
    phases: Dict[str, Dict] = {}
    for span in sorted(set(old.get("phases", {})) | set(new.get("phases", {}))):
        before = old.get("phases", {}).get(span)
        after = new.get("phases", {}).get(span)
        if before is None or after is None:
            phases[span] = {"old_p50_s": before and before["p50_s"],
                            "new_p50_s": after and after["p50_s"], "delta_pct": None}
            continue
        if before["p50_s"]:
            delta = (after["p50_s"] / before["p50_s"] - 1.0) * 100.0
        else:
            delta = None
        phases[span] = {
            "old_p50_s": before["p50_s"],
            "new_p50_s": after["p50_s"],
            "delta_pct": None if delta is None else round(delta, 1),
        }
    return {
        "records": {"old": old["records"], "new": new["records"]},
        "loops": {"old": old["loops"], "new": new["loops"]},
        "doall_fraction": {
            "old": old["doall_fraction"],
            "new": new["doall_fraction"],
        },
        "classes": _table_diff(old["classes"], new["classes"]),
        "blocked": _table_diff(old["blocked"], new["blocked"]),
        "degradations": _table_diff(old["degradations"], new["degradations"]),
        "phases": phases,
    }


def render_diff_text(diff: Dict[str, Any]) -> str:
    lines: List[str] = []
    lines.append("== run diff ==")
    lines.append(
        f"  records {diff['records']['old']} -> {diff['records']['new']}, "
        f"loops {diff['loops']['old']} -> {diff['loops']['new']}"
    )
    old_frac, new_frac = (
        diff["doall_fraction"]["old"], diff["doall_fraction"]["new"]
    )
    fmt = lambda f: "n/a" if f is None else f"{100.0 * f:.1f}%"  # noqa: E731
    lines.append(f"  DOALL share {fmt(old_frac)} -> {fmt(new_frac)}")
    for title, key in (
        ("class distribution", "classes"),
        ("why-not-DOALL reasons", "blocked"),
        ("degradations", "degradations"),
    ):
        lines.append("")
        lines.append(f"== {title} ==")
        table = diff[key]
        if not table:
            lines.append("  unchanged")
        for name, row in table.items():
            lines.append(
                f"  {name:<24} {row['old']:>6} -> {row['new']:<6} "
                f"({row['delta']:+d})"
            )
    changed = {
        span: row
        for span, row in diff["phases"].items()
        if row["delta_pct"] is not None and abs(row["delta_pct"]) >= 0.1
    }
    if changed:
        lines.append("")
        lines.append("== phase p50 latencies ==")
        for span, row in changed.items():
            lines.append(
                f"  {span:<24} {row['old_p50_s']:.6f}s -> "
                f"{row['new_p50_s']:.6f}s ({row['delta_pct']:+.1f}%)"
            )
    return "\n".join(lines)
