"""Structured why-not-DOALL attribution.

Every serial parallelism verdict carries a chain of :class:`BlockReason`
records -- one per carried dependence edge -- naming the blocking
reference pair, the subscript kinds on both sides (the SIV/MIV/non-affine
distinction), the surviving direction vectors, and whether a top trip
range or an ``Unknown`` classification blocked refinement.  The chains
are surfaced three ways:

* ``format_report`` prints a ``blocked by:`` line per reason under the
  ``parallelizable: no`` verdict;
* ``explain(program, "L1")`` (a loop header instead of a variable)
  renders the full chain;
* each reason bumps a ``dep.blocked.<reason>`` counter, so corpus-scale
  aggregation (``repro stats``) can rank what keeps loops serial.

The *reason slugs* are a closed catalogue (:data:`REASON_SLUGS`): they
come from the ``cause`` field every dependent
:class:`~repro.dependence.testing.DependenceResult` now records at the
decision site that failed to disprove the dependence.

Everything below the dataclass is a pure consumer of the dependence
layer; imports of it stay inside functions so this module can be loaded
from ``repro.obs.__init__`` without an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import metrics as _metrics

__all__ = ["REASON_SLUGS", "BlockReason", "attribute_edge", "why_not_doall"]

#: every ``cause`` slug a dependent DependenceResult may record -- the
#: dynamic suffixes of the ``dep.blocked.<reason>`` counter family
REASON_SLUGS = frozenset(
    {
        "unsubscripted",  # scalar memory / unsubscripted reference
        "rank-mismatch",  # different subscript counts
        "non-affine",  # an unclassifiable (Unknown) subscript
        "mixed-kinds",  # no test for this kind combination
        "ziv",  # loop-invariant subscripts address one element
        "siv",  # an exact single-index test proved the dependence
        "miv",  # the GCD/Banerjee hierarchy could not disprove
        "symbolic-delta",  # symbolic constant difference
        "too-many-levels",  # direction enumeration capped
        "wraparound",  # wrap-around translation stayed dependent
        "periodic",  # periodic-collision test stayed dependent
        "monotonic",  # monotonic translation stayed dependent
        "no-direction-info",  # conservative fallback without a cause
    }
)


@dataclass(frozen=True)
class BlockReason:
    """One structured reason a loop is not DOALL."""

    reason: str  # slug from REASON_SLUGS
    kind: str  # dependence kind: flow / anti / output
    array: str
    source: str  # repr of the source RefSite
    sink: str  # repr of the sink RefSite
    subscripts: Tuple[str, str]  # subscript kinds, source side / sink side
    direction: str  # surviving direction vectors
    carrier: str  # the loop header carrying the dependence
    range_blocked: bool  # a top trip range blocked refinement
    unknown_blocked: bool  # an Unknown classification blocked the subscript
    detail: str = ""  # the decisive human-readable note

    def describe(self) -> str:
        """One-line rendering for reports and ``explain``."""
        qualifiers = [self.reason]
        if self.range_blocked:
            qualifiers.append("trip range ⊤")
        if self.unknown_blocked:
            qualifiers.append("Unknown subscript")
        return (
            f"{self.kind} {self.source} -> {self.sink} "
            f"dir {self.direction} [{'; '.join(qualifiers)}]"
        )

    def to_json(self) -> Dict[str, Any]:
        """JSON-ready form (the shape run-log records store)."""
        return {
            "reason": self.reason,
            "kind": self.kind,
            "array": self.array,
            "source": self.source,
            "sink": self.sink,
            "subscripts": list(self.subscripts),
            "direction": self.direction,
            "carrier": self.carrier,
            "range_blocked": self.range_blocked,
            "unknown_blocked": self.unknown_blocked,
            "detail": self.detail,
        }


def _subscript_kinds(analysis, site) -> Tuple[str, bool]:
    """(comma-joined per-dimension kinds, saw-Unknown) for one reference."""
    from repro.dependence.subscript import SubscriptKind, describe_subscript

    if site.indices is None:
        return "scalar", False
    kinds: List[str] = []
    saw_unknown = False
    for index in site.indices:
        try:
            descriptor = describe_subscript(analysis, index, site.block)
        except Exception:
            kinds.append("unknown")
            saw_unknown = True
            continue
        kinds.append(descriptor.kind.value)
        if descriptor.kind is SubscriptKind.UNKNOWN:
            saw_unknown = True
    return ",".join(kinds) or "scalar", saw_unknown


def _range_blocked(analysis, carrier: str) -> bool:
    """True when refinement wanted a trip bound the ranges could not give.

    A constant trip count needs no range; otherwise the value-range phase
    either did not run, degraded, or derived only the top interval.
    """
    summary = analysis.loops.get(carrier)
    if summary is not None and summary.trip.constant() is not None:
        return False
    ranges = getattr(analysis, "ranges", None)
    if ranges is None:
        return True
    return ranges.trip_upper_bound(carrier) is None


def attribute_edge(analysis, edge, carrier: str) -> BlockReason:
    """The structured reason one carried dependence edge blocks ``carrier``."""
    result = edge.result
    cause = getattr(result, "cause", None) or "no-direction-info"
    src_kinds, src_unknown = _subscript_kinds(analysis, edge.source)
    sink_kinds, sink_unknown = _subscript_kinds(analysis, edge.sink)
    directions = " | ".join(repr(v) for v in result.directions) or "(*)"
    return BlockReason(
        reason=cause,
        kind=str(edge.kind),
        array=edge.source.array,
        source=repr(edge.source),
        sink=repr(edge.sink),
        subscripts=(src_kinds, sink_kinds),
        direction=directions,
        carrier=carrier,
        range_blocked=_range_blocked(analysis, carrier),
        unknown_blocked=src_unknown or sink_unknown,
        detail=result.notes[-1] if result.notes else "",
    )


def why_not_doall(analysis, header: str, carried) -> List[BlockReason]:
    """Attribution chain for a serial loop: one reason per carried edge.

    Also bumps the ``dep.blocked.<reason>`` counter family (a no-op when
    metrics collection is off).
    """
    reasons: List[BlockReason] = []
    for edge in carried:
        try:
            reason = attribute_edge(analysis, edge, header)
        except Exception:
            # attribution must never break the verdict it annotates
            reason = BlockReason(
                reason="no-direction-info",
                kind=str(edge.kind),
                array=edge.source.array,
                source=repr(edge.source),
                sink=repr(edge.sink),
                subscripts=("?", "?"),
                direction="(*)",
                carrier=header,
                range_blocked=False,
                unknown_blocked=False,
            )
        reasons.append(reason)
        _metrics.inc(f"dep.blocked.{reason.reason}")
    return reasons
