"""Human-readable classification derivations (``--explain``).

Renders the provenance chain recorded by :mod:`repro.obs.provenance` as an
indented derivation tree: each step shows the classification in the
paper's tuple notation, the algebra rule that produced it, and the operand
classifications the rule consumed -- recursively, down to the axioms
(constants, loop-invariant symbols).

::

    i.2: (L1, 0, 2)
      rule: scr.linear-recurrence -- x' = 1*x + (2); x(0) = 0
      from init 0: invariant 0
        rule: algebra.const
      from i.3: (L1, 2, 2)
        rule: scr.member -- i.3 = 1*header + (2)
        ...

The walker is purely a consumer of ``AnalyzedProgram`` /
``AnalysisResult`` attributes, so it imports nothing from the core.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.obs.provenance import Provenance, provenance_of

__all__ = ["explain", "explain_lines"]

_MAX_DEPTH = 10


def _provenance_for(result, label: str, cls) -> Optional[Provenance]:
    """The derivation of ``label``'s classification.

    SCR-classified names (cycles, wrap-around phis) and axioms (consts,
    loop-external symbols) carry their record on the classification object
    itself; operator nodes record nothing at classification time, so their
    rule + operand summary is reconstructed here from the region context
    the loop summary retains.
    """
    if result is not None:
        try:
            loop = result.defining_loop(label)
        except Exception:
            loop = None
        if loop is not None:
            summary = result.loops.get(loop.header)
            ctx = getattr(summary, "region_ctx", None)
            if (
                ctx is not None
                and label in ctx.nodes
                and label not in ctx.scr_classified
            ):
                # runtime-only import; this module must not pull the core
                # in at import time
                from repro.core.algebra import operator_provenance

                rule, operands = operator_provenance(ctx.nodes[label], ctx)
                return Provenance(rule, operands)
    return provenance_of(cls)


def _resolve_names(program, var: str) -> List[str]:
    """SSA names to explain for ``var`` (a source variable or SSA name)."""
    try:
        names = list(program.ssa_names(var))
    except Exception:
        names = []
    if names:
        classified = [
            name
            for name in names
            if any(name in s.classifications for s in program.result.loops.values())
        ]
        return classified or names
    for summary in program.result.loops.values():
        if var in summary.classifications:
            return [var]
    try:
        if var in program.ssa.definitions():
            return [var]
    except Exception:
        pass
    return []


def _explain_loop(program, header: str) -> List[str]:
    """The parallelism verdict of loop ``header`` with its why-not chain.

    ``explain(program, "L1")`` with a loop header instead of a variable
    renders the DOALL verdict and, when serial, the structured
    why-not-DOALL attribution (one reason per carried dependence).
    """
    from repro.dependence.graph import build_dependence_graph
    from repro.dependence.loopinfo import analyze_parallelism

    summary = program.result.loops[header]
    lines = [f"loop {header} (depth {summary.loop.depth})"]
    try:
        verdicts = analyze_parallelism(
            program.result, build_dependence_graph(program.result)
        )
    except Exception as error:  # degraded analyses may lack a graph
        lines.append(f"  parallelism undecided: dependence analysis failed ({error})")
        return lines
    verdict = verdicts.get(header)
    if verdict is None:
        lines.append("  parallelism undecided: no verdict for this loop")
        return lines
    if verdict.parallelizable:
        lines.append("  parallelizable: yes (DOALL) -- no carried dependence")
        return lines
    lines.append(
        f"  parallelizable: no ({len(verdict.carried)} carried dependence(s))"
    )
    for blocker in verdict.blockers:
        lines.append(f"  blocked by {blocker.kind} {blocker.source} -> {blocker.sink}")
        lines.append(f"    reason: {blocker.reason} -- {blocker.detail}")
        lines.append(
            f"    subscripts: {blocker.subscripts[0]} vs {blocker.subscripts[1]}"
        )
        lines.append(f"    direction: {blocker.direction}")
        if blocker.range_blocked:
            lines.append(
                "    range refinement: blocked (trip range is ⊤; "
                "re-run with --ranges or add assume bounds)"
            )
        if blocker.unknown_blocked:
            lines.append(
                "    classification: an Unknown subscript blocked the exact tests"
            )
    return lines


def explain_lines(program, var: str, max_depth: int = _MAX_DEPTH) -> List[str]:
    """The derivation chain of ``var`` as a list of text lines.

    When ``var`` names a loop header the lines are the loop's parallelism
    verdict and why-not-DOALL attribution instead.
    """
    if var in getattr(program.result, "loops", {}):
        return _explain_loop(program, var)
    names = _resolve_names(program, var)
    if not names:
        return [f"no classification recorded for {var!r}"]
    lines: List[str] = []
    for i, name in enumerate(names):
        if i:
            lines.append("")
        cls = program.result.classification_of(name)
        _render(
            name, cls, lines, indent=0, seen=set(), depth=max_depth,
            result=program.result,
        )
    return lines


def explain(program, var: str, max_depth: int = _MAX_DEPTH) -> str:
    """The derivation chain of ``var`` as one printable string."""
    return "\n".join(explain_lines(program, var, max_depth))


def _render(
    label: str,
    cls,
    lines: List[str],
    indent: int,
    seen: Set[str],
    depth: int,
    result=None,
    prefix: str = "",
) -> None:
    pad = "  " * indent
    describe = cls.describe() if cls is not None else "<no classification>"
    lines.append(f"{pad}{prefix}{label}: {describe}")
    info = getattr(result, "ranges", None) if result is not None else None
    if info is not None:
        interval = info.range_of(label)
        if not interval.is_top:
            lines.append(f"{pad}  range: {interval}")
    inv_info = getattr(result, "invariants", None) if result is not None else None
    if inv_info is not None and not inv_info.degraded:
        for invariants in inv_info.by_loop.values():
            for invariant in invariants:
                if label in invariant.variables:
                    lines.append(f"{pad}  invariant: {invariant.describe()}")
    if cls is None:
        return
    prov = _provenance_for(result, label, cls)
    if prov is None:
        lines.append(f"{pad}  rule: <unrecorded>")
        return
    note = f" -- {prov.note}" if prov.note else ""
    lines.append(f"{pad}  rule: {prov.rule}{note}")
    if depth <= 0 and prov.operands:
        lines.append(f"{pad}  ... (depth limit)")
        return
    for operand_label, operand_cls in prov.operands:
        if operand_label in seen:
            shown = operand_cls.describe() if operand_cls is not None else "?"
            lines.append(f"{pad}  from {operand_label}: {shown}  (already shown)")
            continue
        seen.add(operand_label)
        _render(
            operand_label,
            operand_cls,
            lines,
            indent + 1,
            seen,
            depth - 1,
            result=result,
            prefix="from ",
        )
