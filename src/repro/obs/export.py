"""Trace and metrics exporters: JSON-lines and Chrome trace-event format.

``chrome_trace`` renders a :class:`~repro.obs.trace.Tracer` as the Chrome
trace-event JSON object (the format ``chrome://tracing`` and Perfetto
load): spans become complete (``"ph": "X"``) events with microsecond
``ts``/``dur``, instant events become ``"ph": "i"`` events, and a metadata
record names the process.  ``jsonl_lines`` renders the same records as one
self-describing JSON object per line, the shape log pipelines ingest.

All attribute values are passed through :func:`_jsonable`, which keeps
JSON-native values as-is and falls back to ``str`` for anything else
(classifications, Exprs), so emit sites may attach rich objects freely.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = [
    "chrome_trace",
    "jsonl_lines",
    "metrics_json",
    "write_chrome",
    "write_jsonl",
    "write_metrics",
]

_PID = 1
_TID = 1


def _jsonable(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


def _args(attrs: Dict[str, Any]) -> Dict[str, Any]:
    return {str(k): _jsonable(v) for k, v in attrs.items()}


def chrome_trace(tracer: Tracer, process_name: str = "repro") -> Dict[str, Any]:
    """The tracer's records as a Chrome trace-event JSON object."""
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": _TID,
            "args": {"name": process_name},
        }
    ]
    for record in tracer.spans:
        events.append(
            {
                "name": record.name,
                "cat": "repro",
                "ph": "X",
                "ts": record.start_ns / 1000.0,
                "dur": record.duration_ns / 1000.0,
                "pid": _PID,
                "tid": _TID,
                "args": _args(record.attrs),
            }
        )
    for record in tracer.events:
        events.append(
            {
                "name": record.name,
                "cat": "repro",
                "ph": "i",
                "s": "t",
                "ts": record.ts_ns / 1000.0,
                "pid": _PID,
                "tid": _TID,
                "args": _args(record.attrs),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome(tracer: Tracer, path: str, process_name: str = "repro") -> None:
    """Write a ``chrome://tracing``-loadable JSON file."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(tracer, process_name), handle, indent=1)
        handle.write("\n")


def jsonl_lines(tracer: Tracer) -> Iterator[str]:
    """One JSON object per span/event, in timestamp order."""
    records: List[Dict[str, Any]] = []
    for record in tracer.spans:
        records.append(
            {
                "type": "span",
                "name": record.name,
                "ts_ns": record.start_ns,
                "dur_ns": record.duration_ns,
                "depth": record.depth,
                "parent": record.parent,
                "attrs": _args(record.attrs),
            }
        )
    for record in tracer.events:
        records.append(
            {
                "type": "event",
                "name": record.name,
                "ts_ns": record.ts_ns,
                "depth": record.depth,
                "parent": record.parent,
                "attrs": _args(record.attrs),
            }
        )
    records.sort(key=lambda r: r["ts_ns"])
    for record in records:
        yield json.dumps(record, sort_keys=True)


def write_jsonl(tracer: Tracer, path: str) -> None:
    with open(path, "w") as handle:
        for line in jsonl_lines(tracer):
            handle.write(line)
            handle.write("\n")


def metrics_json(registry: MetricsRegistry) -> str:
    """The registry snapshot as stable, diff-friendly JSON text."""
    return json.dumps(registry.snapshot(), indent=2, sort_keys=True)


def write_metrics(registry: MetricsRegistry, path: str) -> None:
    with open(path, "w") as handle:
        handle.write(metrics_json(registry))
        handle.write("\n")


def validate_chrome_trace(document: Any) -> Optional[str]:
    """Structural validation of a Chrome trace object; None when loadable.

    Checks the invariants ``chrome://tracing`` relies on: a ``traceEvents``
    list whose entries carry ``name``/``ph``/``pid``/``tid``, numeric
    non-negative ``ts`` on every timed event, and ``dur`` on complete
    (``"X"``) events.  Used by the tests and by ``repro trace`` before
    writing the output file.
    """
    if not isinstance(document, dict):
        return "top level must be an object"
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        return "traceEvents must be a non-empty list"
    for i, entry in enumerate(events):
        if not isinstance(entry, dict):
            return f"traceEvents[{i}] is not an object"
        for key in ("name", "ph", "pid", "tid"):
            if key not in entry:
                return f"traceEvents[{i}] lacks {key!r}"
        phase = entry["ph"]
        if phase == "M":
            continue
        ts = entry.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            return f"traceEvents[{i}] has bad ts {ts!r}"
        if phase == "X":
            dur = entry.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                return f"traceEvents[{i}] has bad dur {dur!r}"
    return None
