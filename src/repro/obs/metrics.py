"""The metrics registry: counters, gauges, and histograms.

Collection follows the same pay-for-use contract as span tracing
(:mod:`repro.obs.trace`): a module-level ``_COLLECTING`` flag mirrors
whether any :func:`collecting` context is live, so every emission helper
(:func:`inc`, :func:`gauge`, :func:`observe`) is a no-op costing one
module attribute read when collection is off.  The context variable
holding the active registry remains the source of truth when the flag is
set; the mirror is per-process, not per-thread (the same trade the
expression-budget cap in :mod:`repro.resilience.budget` makes).

What the pipeline records (see ``docs/OBSERVABILITY.md`` for the full
name catalogue):

* ``classify.class.<Name>`` -- how many SSA names landed in each
  classification class (the paper's table-2 distribution);
* ``tarjan.nodes`` / ``tarjan.edges`` / ``tarjan.scrs`` -- the
  :class:`~repro.core.tarjan.TraversalStats` totals;
* ``expr.cache.*`` -- hash-consed :class:`~repro.symbolic.expr.Expr`
  memo-table hit/miss deltas;
* ``closedform.matrix_inversions`` -- coefficient-matrix inversions of the
  paper's fitting method;
* ``sanitizer.checkpoints`` -- pipeline-sanitizer checkpoints executed;
* ``time.<span>_s`` -- one histogram per span name, fed by the tracer.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, Optional, Union

Number = Union[int, float]

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active",
    "collecting",
    "gauge",
    "inc",
    "isolated",
    "observe",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[Number] = None

    def set(self, value: Number) -> None:
        self.value = value


class Histogram:
    """Streaming summary of observations: count / sum / min / max."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Number) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None


class MetricsRegistry:
    """Holds every metric collected during one :func:`collecting` context."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- get-or-create --------------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge()
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram()
        return metric

    # -- emission shortcuts ---------------------------------------------
    def inc(self, name: str, amount: Number = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: Number) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: Number) -> None:
        self.histogram(name).observe(value)

    # -- export ---------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable view of everything collected so far."""
        return {
            "counters": {k: c.value for k, c in sorted(self.counters.items())},
            "gauges": {k: g.value for k, g in sorted(self.gauges.items())},
            "histograms": {
                k: {
                    "count": h.count,
                    "sum": h.total,
                    "min": h.min,
                    "max": h.max,
                    "mean": h.mean,
                }
                for k, h in sorted(self.histograms.items())
            },
        }

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one.

        Counters add, gauges take the other side's last write, histograms
        combine their streaming summaries.  This is how per-input scoped
        registries (:func:`isolated`) roll up into the invocation-wide
        aggregate.
        """
        for name, counter in other.counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge_metric in other.gauges.items():
            if gauge_metric.value is not None:
                self.gauge(name).set(gauge_metric.value)
        for name, histogram in other.histograms.items():
            mine = self.histogram(name)
            mine.count += histogram.count
            mine.total += histogram.total
            for bound in (histogram.min, histogram.max):
                if bound is None:
                    continue
                if mine.min is None or bound < mine.min:
                    mine.min = bound
                if mine.max is None or bound > mine.max:
                    mine.max = bound


# ----------------------------------------------------------------------
# the context-var registry
# ----------------------------------------------------------------------
_REGISTRY: ContextVar[Optional[MetricsRegistry]] = ContextVar(
    "repro_obs_metrics", default=None
)

#: module-level mirror of "is any collecting() context live?" -- the
#: single gate every disabled emission helper reads.
_COLLECTING: bool = False


def active() -> Optional[MetricsRegistry]:
    """The registry of the innermost :func:`collecting` context, or None."""
    return _REGISTRY.get()


@contextmanager
def collecting(registry: Optional[MetricsRegistry] = None):
    """Activate metrics collection for the dynamic extent of the block."""
    global _COLLECTING
    current = registry if registry is not None else MetricsRegistry()
    token = _REGISTRY.set(current)
    previous = _COLLECTING
    _COLLECTING = True
    try:
        yield current
    finally:
        _COLLECTING = previous
        _REGISTRY.reset(token)


@contextmanager
def isolated():
    """A fresh registry for one input, merged into the parent on exit.

    Multi-input CLI invocations (``repro lint``/``report``/``trace`` over
    a directory) wrap each input in this context so per-input snapshots
    -- run-log records, per-target counters -- do not accumulate state
    from earlier inputs, while the enclosing registry still sees the
    invocation-wide totals.  A no-op yielding ``None`` when collection is
    off.
    """
    parent = _REGISTRY.get()
    if parent is None:
        yield None
        return
    with collecting(MetricsRegistry()) as inner:
        try:
            yield inner
        finally:
            parent.merge(inner)


def inc(name: str, amount: Number = 1) -> None:
    """Bump a counter (no-op when collection is off)."""
    if not _COLLECTING:
        return
    registry = _REGISTRY.get()
    if registry is not None:
        registry.inc(name, amount)


def gauge(name: str, value: Number) -> None:
    """Set a gauge (no-op when collection is off)."""
    if not _COLLECTING:
        return
    registry = _REGISTRY.get()
    if registry is not None:
        registry.set_gauge(name, value)


def observe(name: str, value: Number) -> None:
    """Record one histogram observation (no-op when collection is off)."""
    if not _COLLECTING:
        return
    registry = _REGISTRY.get()
    if registry is not None:
        registry.observe(name, value)
