"""Prometheus text-exposition export of a metrics registry.

Renders a :class:`~repro.obs.metrics.MetricsRegistry` snapshot in the
Prometheus text format (version 0.0.4) so a scrape endpoint, pushgateway
job, or node-exporter textfile collector can ingest the analysis
telemetry unchanged.

Mapping rules:

* every name is prefixed ``repro_`` and dots become underscores;
* dynamic-suffix families become labels -- ``classify.class.<Name>`` is
  ``repro_classify_class_total{class="Name"}``, ``dep.blocked.<reason>``
  is ``repro_dep_blocked_total{reason="..."}``, and
  ``resilience.degraded.<phase>`` is
  ``repro_resilience_degraded_total{phase="..."}``;
* counters get the conventional ``_total`` suffix;
* histograms export ``_count`` and ``_sum`` series (the streaming summary
  keeps no buckets) plus ``_min`` / ``_max`` gauges; the ``time.<span>_s``
  family becomes ``repro_time_seconds_*{span="..."}``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.obs.metrics import MetricsRegistry

__all__ = ["prometheus_text", "write_prometheus"]

_PREFIX = "repro_"
_INVALID = re.compile(r"[^a-zA-Z0-9_:]")

#: dynamic-suffix counter families -> (prometheus family, label key)
_LABELLED_FAMILIES: Tuple[Tuple[str, str, str], ...] = (
    ("classify.class.", "classify_class", "class"),
    ("dep.blocked.", "dep_blocked", "reason"),
    ("resilience.degraded.", "resilience_degraded", "phase"),
)


def _sanitize(name: str) -> str:
    return _INVALID.sub("_", name)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _format_value(value) -> str:
    number = float(value)
    if number.is_integer():
        return str(int(number))
    return repr(number)


def _split_family(name: str) -> Optional[Tuple[str, str, str]]:
    """(family, label key, label value) when ``name`` is a labelled family
    member, else None."""
    for prefix, family, label in _LABELLED_FAMILIES:
        if name.startswith(prefix) and len(name) > len(prefix):
            return family, label, name[len(prefix):]
    return None


def _emit(
    lines: List[str],
    family: str,
    kind: str,
    help_text: str,
    samples: List[Tuple[Optional[Tuple[str, str]], object]],
    emitted: Dict[str, None],
) -> None:
    """Append one family's HELP/TYPE header and its samples."""
    if family not in emitted:
        emitted[family] = None
        lines.append(f"# HELP {family} {help_text}")
        lines.append(f"# TYPE {family} {kind}")
    for label_pair, value in samples:
        if label_pair is None:
            lines.append(f"{family} {_format_value(value)}")
        else:
            key, label_value = label_pair
            lines.append(
                f'{family}{{{key}="{_escape_label(label_value)}"}} '
                f"{_format_value(value)}"
            )


def prometheus_text(registry: MetricsRegistry) -> str:
    """The registry snapshot in Prometheus text exposition format."""
    lines: List[str] = []
    emitted: Dict[str, None] = {}

    # counters -- labelled families grouped, the rest one family each
    grouped: Dict[str, List[Tuple[Optional[Tuple[str, str]], object]]] = {}
    plain: List[Tuple[str, object]] = []
    for name, counter in sorted(registry.counters.items()):
        split = _split_family(name)
        if split is None:
            plain.append((name, counter.value))
        else:
            family, label, label_value = split
            grouped.setdefault(family, []).append(
                ((label, label_value), counter.value)
            )
    for family, samples in sorted(grouped.items()):
        _emit(
            lines,
            f"{_PREFIX}{family}_total",
            "counter",
            f"repro {family.replace('_', '.')} counter family",
            samples,
            emitted,
        )
    for name, value in plain:
        _emit(
            lines,
            f"{_PREFIX}{_sanitize(name)}_total",
            "counter",
            f"repro counter {name}",
            [(None, value)],
            emitted,
        )

    for name, gauge in sorted(registry.gauges.items()):
        if gauge.value is None:
            continue
        _emit(
            lines,
            f"{_PREFIX}{_sanitize(name)}",
            "gauge",
            f"repro gauge {name}",
            [(None, gauge.value)],
            emitted,
        )

    # histograms -- collect per-family sample lists first so each family's
    # samples stay contiguous under one HELP/TYPE header (the text format
    # forbids interleaving)
    histogram_families: Dict[
        Tuple[str, str, str],
        List[Tuple[Optional[Tuple[str, str]], object]],
    ] = {}
    for name, histogram in sorted(registry.histograms.items()):
        label_pair: Optional[Tuple[str, str]] = None
        if name.startswith("time.") and name.endswith("_s"):
            family = f"{_PREFIX}time_seconds"
            label_pair = ("span", name[len("time."):-len("_s")])
            help_text = "repro per-span wall time histogram"
        else:
            family = f"{_PREFIX}{_sanitize(name)}"
            help_text = f"repro histogram {name}"
        samples: List[Tuple[str, str, str, object]] = [
            ("count", "counter", "observation count", histogram.count),
            ("sum", "counter", "observation sum", histogram.total),
        ]
        for stat, value in (("min", histogram.min), ("max", histogram.max)):
            if value is not None:
                samples.append((stat, "gauge", stat, value))
        for suffix, kind, what, value in samples:
            key = (f"{family}_{suffix}", kind, f"{help_text} ({what})")
            histogram_families.setdefault(key, []).append((label_pair, value))
    for (family, kind, help_text), family_samples in sorted(
        histogram_families.items()
    ):
        _emit(lines, family, kind, help_text, family_samples, emitted)

    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: MetricsRegistry, path: str) -> None:
    """Write the registry to ``path`` in Prometheus text format."""
    with open(path, "w") as handle:
        handle.write(prometheus_text(registry))
