"""Classification provenance: which algebra rule produced each class.

The paper's driver classifies every SCR "at the time the SCR is
identified", so the whole analysis is a sequence of rule applications --
``cls_add`` on two operand classes, the affine-recurrence solver on a
cycle's cumulative effect, the wrap-around construction on a lone header
phi.  This module records that derivation: every
:class:`~repro.core.classes.Classification` produced at a decision point
gets a :class:`Provenance` attached (``cls.provenance``) naming the rule
and carrying the operand classes it consumed.

The attachment is a plain attribute (classification instances carry a
``__dict__`` through their slot-less base class) and is deliberately
excluded from ``__eq__`` / ``__hash__``: provenance never changes what a
classification *is*, only how it was derived.  The human-readable
rendering lives in :mod:`repro.obs.explain`.
"""

from __future__ import annotations

from typing import Tuple

__all__ = ["Provenance", "provenance_of", "remember"]


class Provenance:
    """One derivation step.

    ``rule``     -- the algebra rule applied (e.g. ``algebra.add``,
                    ``scr.linear-recurrence``, ``scr.wrap-around``).
    ``operands`` -- ``(label, classification)`` pairs the rule consumed;
                    the label is an SSA name, ``const N``, or a synthetic
                    description such as ``init``/``carried``.
    ``note``     -- extra human-readable detail (the recurrence solved,
                    the wrap-around order, ...).

    A plain ``__slots__`` class, not a dataclass: one is allocated per
    classification decision, so construction cost matters.
    """

    __slots__ = ("rule", "operands", "note")

    def __init__(self, rule: str, operands: Tuple = (), note: str = ""):
        self.rule = rule
        self.operands = tuple(operands)
        self.note = note

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Provenance):
            return NotImplemented
        return (
            self.rule == other.rule
            and self.operands == other.operands
            and self.note == other.note
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Provenance({self.rule!r}, {self.operands!r}, {self.note!r})"


def remember(cls, rule: str, operands: Tuple = (), note: str = ""):
    """Attach provenance to ``cls``; returns ``cls``.

    The record is stored in raw (tuple) form and only promoted to a
    :class:`Provenance` when :func:`provenance_of` first reads it -- the
    attach sites sit on the classification path, the read site is a
    human asking ``--explain``.  ``note`` may be a zero-argument callable
    (evaluated at first read) so callers can defer string formatting too.

    Never raises: a classification that cannot carry attributes (there is
    none today) would simply stay provenance-free.
    """
    try:
        cls.provenance = (rule, operands, note)
    except (AttributeError, TypeError):  # pragma: no cover - defensive
        pass
    return cls


def provenance_of(cls):
    """The classification's :class:`Provenance`, or ``None``.

    Resolves (and caches back) the raw record stored by :func:`remember`.
    Operator-node classifications carry no record at all -- their
    derivation is reconstructed from the loop's region context by
    :mod:`repro.obs.explain`.
    """
    raw = getattr(cls, "provenance", None)
    if raw is None or isinstance(raw, Provenance):
        return raw
    rule, operands, note = raw
    if callable(note):
        note = note()
    resolved = Provenance(rule, operands, note)
    try:
        cls.provenance = resolved
    except (AttributeError, TypeError):  # pragma: no cover - defensive
        pass
    return resolved
