"""The analysis flight recorder: persistent, append-only run logs.

Every analyzed function produces one structured JSON record -- class
distribution, per-loop verdicts with why-not-DOALL attribution chains,
degradations, range/invariant statistics, per-phase timings, a source
fingerprint -- appended as one line to a ``.repro/runs/<run-id>.jsonl``
store.  ``repro stats`` (:mod:`repro.obs.aggregate`) folds a store into
corpus-scale distributions.

Recording follows the same single-gate pay-for-use contract as tracing
and metrics: a module-level ``_RECORDING`` bool mirrors whether any
:func:`recording` context is live, so the :func:`capture` hook the
pipeline calls on every ``analyze()`` costs one module attribute read
when recording is off.  The context variable holding the active writer
remains the source of truth when the flag is set.

Self-profiling: every capture measures its own cost and publishes it as
the ``obs.overhead.runlog_s`` gauge plus an ``obs.overhead.runlog.records``
counter (when metrics collection is live), so the telemetry's own price
is visible in the same registry it serves.

Usage::

    from repro.obs import runlog

    with runlog.recording(".repro/runs") as writer:
        with runlog.origin("examples/foo.loop"):
            analyze(source)          # capture happens inside the pipeline
    print(writer.path, writer.records_written)
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Dict, List, Optional

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

__all__ = [
    "DEFAULT_STORE",
    "RUNLOG_SCHEMA",
    "RunLogWriter",
    "build_record",
    "capture",
    "origin",
    "recording",
    "source_fingerprint",
    "source_lang",
]

#: bump when the record shape changes; ``repro stats`` validates it.
#: Schema 2 added ``source_lang`` (which frontend produced the IR);
#: aggregation still reads schema-1 files, defaulting the field.
RUNLOG_SCHEMA = 2

#: where run logs land unless the caller picks a directory
DEFAULT_STORE = os.path.join(".repro", "runs")


def source_fingerprint(source: Optional[str], function=None) -> str:
    """A short stable fingerprint of the analyzed input.

    The sha256 of the source text when available; otherwise a structural
    fingerprint of the IR (so re-submitted identical programs can be
    deduplicated / cache-keyed by later aggregation and serving layers).
    """
    if source is not None:
        return hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]
    if function is not None:
        shape = repr(sorted((b.label, len(b.instructions)) for b in function))
        return "ir-" + hashlib.sha256(shape.encode("utf-8")).hexdigest()[:14]
    return "unknown"


class RunLogWriter:
    """Appends one JSON record per line to a run file inside a store."""

    def __init__(self, directory: str = DEFAULT_STORE, run_id: Optional[str] = None):
        os.makedirs(directory, exist_ok=True)
        if run_id is None:
            run_id = "run-%s-%d" % (
                time.strftime("%Y%m%dT%H%M%S", time.gmtime()),
                os.getpid(),
            )
        self.directory = directory
        self.run_id = run_id
        self.path = os.path.join(directory, f"{run_id}.jsonl")
        self.records_written = 0
        #: phase totals at the previous capture -- records carry per-input
        #: deltas even though the tracer accumulates across a corpus run
        self.phase_baseline: Dict[str, float] = {}

    def write(self, record: Dict[str, Any]) -> None:
        """Append one record crash-safely.

        The line is serialized first and appended with a **single**
        ``os.write`` on an ``O_APPEND`` descriptor: a process killed
        mid-append (crashed worker, SIGKILLed server) can truncate at
        most the final line, never interleave two writers' records, and
        a serialization failure raises before any byte lands in the log.
        ``repro stats`` skips-and-counts the one possibly-torn tail line.
        """
        line = (
            json.dumps(record, sort_keys=True, default=str) + "\n"
        ).encode("utf-8")
        fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, line)
        finally:
            os.close(fd)
        self.records_written += 1


# ----------------------------------------------------------------------
# the context-var writer + single-gate mirror
# ----------------------------------------------------------------------
_WRITER: ContextVar[Optional[RunLogWriter]] = ContextVar(
    "repro_obs_runlog", default=None
)
_ORIGIN: ContextVar[Optional[str]] = ContextVar(
    "repro_obs_runlog_origin", default=None
)
_SOURCE_LANG: ContextVar[Optional[str]] = ContextVar(
    "repro_obs_runlog_source_lang", default=None
)

#: module-level mirror of "is any recording() context live?" -- the single
#: gate the pipeline's capture hook reads when recording is off.
_RECORDING: bool = False


def active() -> Optional[RunLogWriter]:
    """The writer of the innermost :func:`recording` context, or None."""
    return _WRITER.get()


@contextmanager
def recording(
    directory: str = DEFAULT_STORE, writer: Optional[RunLogWriter] = None
):
    """Activate run-log recording for the dynamic extent of the block."""
    global _RECORDING
    current = writer if writer is not None else RunLogWriter(directory)
    token = _WRITER.set(current)
    previous = _RECORDING
    _RECORDING = True
    try:
        yield current
    finally:
        _RECORDING = previous
        _WRITER.reset(token)


@contextmanager
def origin(label: Optional[str]):
    """Label records captured inside the block with their input's origin."""
    token = _ORIGIN.set(label)
    try:
        yield
    finally:
        _ORIGIN.reset(token)


@contextmanager
def source_lang(label: Optional[str]):
    """Tag records captured inside the block with their source language.

    Frontends set this (e.g. ``"python"`` for :mod:`repro.pyfront`) so
    ``repro stats`` can aggregate mixed-language corpora per language;
    records captured outside any context default to ``"loop"``, the DSL.
    """
    token = _SOURCE_LANG.set(label)
    try:
        yield
    finally:
        _SOURCE_LANG.reset(token)


# ----------------------------------------------------------------------
# record construction
# ----------------------------------------------------------------------
def _loop_record(result, summary, verdict) -> Dict[str, Any]:
    class_counts: Dict[str, int] = {}
    classes: Dict[str, str] = {}
    for name, cls in summary.classifications.items():
        kind = type(cls).__name__
        class_counts[kind] = class_counts.get(kind, 0) + 1
        if not name.startswith("$"):
            classes[name] = cls.describe()
    trip = summary.trip
    record: Dict[str, Any] = {
        "header": summary.label,
        "depth": summary.loop.depth,
        "degraded": bool(summary.degraded),
        "trip": {
            "kind": trip.kind.value,
            "count": str(trip.count) if trip.count is not None else None,
            "constant": trip.constant(),
        },
        "graph_size": summary.graph_size,
        "scr_count": summary.scr_count,
        "class_counts": class_counts,
        "classes": classes,
    }
    if verdict is None:
        record["parallel"] = None
        record["blocked_by"] = []
    else:
        record["parallel"] = bool(verdict.parallelizable)
        record["blocked_by"] = [b.to_json() for b in verdict.blockers]
    return record


def _parallelism(program):
    """Per-loop verdicts for the record, or None when the graph fails."""
    if not program.result.loops:
        return {}
    try:
        from repro.dependence.graph import build_dependence_graph
        from repro.dependence.loopinfo import analyze_parallelism

        graph = build_dependence_graph(program.result)
        return analyze_parallelism(program.result, graph)
    except Exception:
        return None


def _ranges_stats(result) -> Optional[Dict[str, Any]]:
    info = getattr(result, "ranges", None)
    if info is None:
        return None
    bounded = sum(
        1 for header in info.trips if info.trip_upper_bound(header) is not None
    )
    return {
        "degraded": bool(info.degraded),
        "values": len(info.values),
        "nontrivial": info.nontrivial(),
        "trips_bounded": bounded,
    }


def _invariant_stats(result) -> Optional[Dict[str, Any]]:
    info = getattr(result, "invariants", None)
    if info is None:
        return None
    return {
        "degraded": bool(info.degraded),
        "loops": len(info.path_summaries),
        "equalities": info.total(),
    }


def build_record(
    program,
    origin_label: Optional[str] = None,
    phase_baseline: Optional[Dict[str, float]] = None,
) -> Dict[str, Any]:
    """The flight-recorder record of one analyzed program (JSON-ready)."""
    result = program.result
    verdicts = _parallelism(program)
    loops: List[Dict[str, Any]] = []
    classes_total: Dict[str, int] = {}
    blocked_total: Dict[str, int] = {}
    doall = serial = undecided = 0
    for summary in sorted(
        result.loops.values(), key=lambda s: (s.loop.depth, s.label)
    ):
        verdict = None if verdicts is None else verdicts.get(summary.label)
        loop_record = _loop_record(result, summary, verdict)
        loops.append(loop_record)
        for kind, count in loop_record["class_counts"].items():
            classes_total[kind] = classes_total.get(kind, 0) + count
        if loop_record["parallel"] is None:
            undecided += 1
        elif loop_record["parallel"]:
            doall += 1
        else:
            serial += 1
            for blocker in loop_record["blocked_by"]:
                reason = blocker["reason"]
                blocked_total[reason] = blocked_total.get(reason, 0) + 1

    record: Dict[str, Any] = {
        "schema": RUNLOG_SCHEMA,
        "ts": time.time(),
        "origin": origin_label,
        "source_lang": _SOURCE_LANG.get() or "loop",
        "function": program.ssa.name,
        "fingerprint": source_fingerprint(program.source, program.ssa),
        "loops": loops,
        "classes": classes_total,
        "parallel": {"doall": doall, "serial": serial, "undecided": undecided},
        "blocked": blocked_total,
        "degradations": [
            {
                "phase": d.phase,
                "code": d.code,
                "action": d.action,
                "scope": d.scope,
                "diag_code": d.diag_code,
                "message": d.message,
            }
            for d in program.degradations
        ],
        "ranges": _ranges_stats(result),
        "invariants": _invariant_stats(result),
    }
    tracer = _trace.active()
    if tracer is not None:
        base = phase_baseline or {}
        record["phases"] = {
            name: round(delta, 9)
            for name, total in tracer.phase_totals().items()
            if (delta := total - base.get(name, 0.0)) > 0.0
        }
    registry = _metrics.active()
    if registry is not None:
        record["counters"] = dict(
            sorted((k, c.value) for k, c in registry.counters.items())
        )
    return record


def capture(program) -> Optional[Dict[str, Any]]:
    """Record one analyzed program (the pipeline's per-function hook).

    Costs one module attribute read when no :func:`recording` context is
    live.  Never raises: a capture failure degrades to an error record so
    the flight recorder cannot break the analysis it observes.
    """
    if not _RECORDING:
        return None
    writer = _WRITER.get()
    if writer is None:
        return None
    started = time.perf_counter()
    origin_label = _ORIGIN.get()
    try:
        record = build_record(program, origin_label, writer.phase_baseline)
    except Exception as error:  # noqa: BLE001 - observability must not raise
        record = {
            "schema": RUNLOG_SCHEMA,
            "ts": time.time(),
            "origin": origin_label,
            "error": f"{type(error).__name__}: {error}",
        }
    tracer = _trace.active()
    if tracer is not None:
        writer.phase_baseline = dict(tracer.phase_totals())
    try:
        writer.write(record)
    except OSError:
        return None
    elapsed = time.perf_counter() - started
    _metrics.gauge("obs.overhead.runlog_s", elapsed)
    _metrics.inc("obs.overhead.runlog.records")
    return record
