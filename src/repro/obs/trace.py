"""Structured span tracing for the analysis pipeline.

The pipeline is instrumented with **spans** (named, nested, timed regions:
one per phase, per scalar pass, per transform, per classified loop) and
**instant events** (per-SCR classification decisions).  Instrumentation is
one line per site -- either ``@traced("phase.name")`` on the phase's entry
point or ``with span("phase.name"):`` around a region -- and is strictly
pay-for-use: a module-level ``_TRACING_ENABLED`` flag mirrors whether any
:func:`tracing` context is live, so a disabled hook is a single module
attribute read -- no context-var machinery at all (``span`` additionally
returns one shared no-op context manager, allocating nothing).  The
:class:`contextvars.ContextVar` holding the active tracer remains the
source of truth when the flag is set; the flag is only a fast
"definitely off" gate.  Like the expression-budget mirror in
:mod:`repro.resilience.budget`, the flag is per-process, not per-thread:
it matches the pipeline's one-analysis-at-a-time execution model, and a
thread outside the tracing context still falls through to the (``None``)
context-var and records nothing.

Usage::

    from repro.obs import tracing

    with tracing() as tracer:
        program = analyze(source)
    for record in tracer.in_start_order():
        print("  " * record.depth, record.name, record.duration_ns)

Timestamps come from :func:`time.perf_counter_ns` and are relative to the
tracer's creation, so exported traces always start near t=0.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "EventRecord",
    "SpanRecord",
    "Tracer",
    "active",
    "event",
    "span",
    "traced",
    "tracing",
]


class SpanRecord:
    """One finished (or still open) span.

    ``start_ns`` / ``end_ns`` are nanoseconds relative to the tracer epoch;
    ``depth`` is the nesting depth at entry (0 for top level); ``parent`` is
    the start-order index of the enclosing span (or ``None``).
    """

    __slots__ = ("name", "attrs", "start_ns", "end_ns", "depth", "parent", "index")

    def __init__(
        self,
        name: str,
        attrs: Dict[str, Any],
        start_ns: int,
        depth: int,
        parent: Optional[int],
        index: int,
    ):
        self.name = name
        self.attrs = attrs
        self.start_ns = start_ns
        self.end_ns: Optional[int] = None
        self.depth = depth
        self.parent = parent
        self.index = index

    @property
    def duration_ns(self) -> int:
        return (self.end_ns if self.end_ns is not None else self.start_ns) - self.start_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanRecord({self.name!r}, depth={self.depth}, dur={self.duration_ns}ns)"


class EventRecord:
    """One instant event (e.g. a single SCR classification decision)."""

    __slots__ = ("name", "attrs", "ts_ns", "depth", "parent")

    def __init__(
        self,
        name: str,
        attrs: Dict[str, Any],
        ts_ns: int,
        depth: int,
        parent: Optional[int],
    ):
        self.name = name
        self.attrs = attrs
        self.ts_ns = ts_ns
        self.depth = depth
        self.parent = parent

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventRecord({self.name!r}, ts={self.ts_ns}ns)"


class Tracer:
    """Records spans and events for one observed region of execution."""

    def __init__(self, clock: Callable[[], int] = time.perf_counter_ns):
        self._clock = clock
        self._epoch = clock()
        self._stack: List[SpanRecord] = []
        self._all: List[SpanRecord] = []  # in start order
        self.events: List[EventRecord] = []

    # -- recording ------------------------------------------------------
    def begin(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> SpanRecord:
        parent = self._stack[-1].index if self._stack else None
        record = SpanRecord(
            name,
            attrs or {},
            self._clock() - self._epoch,
            len(self._stack),
            parent,
            len(self._all),
        )
        self._all.append(record)
        self._stack.append(record)
        return record

    def end(self) -> SpanRecord:
        record = self._stack.pop()
        record.end_ns = self._clock() - self._epoch
        registry = _metrics_registry()
        if registry is not None:
            registry.observe(f"time.{record.name}_s", record.duration_ns / 1e9)
        return record

    def event(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> EventRecord:
        parent = self._stack[-1].index if self._stack else None
        record = EventRecord(
            name, attrs or {}, self._clock() - self._epoch, len(self._stack), parent
        )
        self.events.append(record)
        return record

    # -- inspection -----------------------------------------------------
    def in_start_order(self) -> List[SpanRecord]:
        """All spans (finished and open) in the order they were entered."""
        return list(self._all)

    @property
    def spans(self) -> List[SpanRecord]:
        """Finished spans, in start order."""
        return [record for record in self._all if record.end_ns is not None]

    def open_depth(self) -> int:
        return len(self._stack)

    def phase_totals(self) -> Dict[str, float]:
        """Total seconds per span name (summed over all occurrences)."""
        totals: Dict[str, float] = {}
        for record in self.spans:
            totals[record.name] = totals.get(record.name, 0.0) + record.duration_ns / 1e9
        return totals


# ----------------------------------------------------------------------
# the context-var span stack
# ----------------------------------------------------------------------
_TRACER: ContextVar[Optional[Tracer]] = ContextVar("repro_obs_tracer", default=None)

#: module-level mirror of "is any tracing() context live?" -- the single
#: gate every disabled hook reads (the PR 4 module-mirror trick).
_TRACING_ENABLED: bool = False


def _metrics_registry():
    """The active metrics registry (lazy import to avoid a module cycle)."""
    from repro.obs import metrics

    return metrics.active()


def active() -> Optional[Tracer]:
    """The tracer of the innermost :func:`tracing` context, or ``None``."""
    return _TRACER.get()


@contextmanager
def tracing(tracer: Optional[Tracer] = None):
    """Activate span tracing for the dynamic extent of the block."""
    global _TRACING_ENABLED
    current = tracer if tracer is not None else Tracer()
    token = _TRACER.set(current)
    previous = _TRACING_ENABLED
    _TRACING_ENABLED = True
    try:
        yield current
    finally:
        _TRACING_ENABLED = previous
        _TRACER.reset(token)


class _NullSpan:
    """Shared no-op context manager returned by :func:`span` when disabled."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


NULL_SPAN = _NullSpan()


class _SpanContext:
    __slots__ = ("_tracer", "_name", "_attrs")

    def __init__(self, tracer: Tracer, name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> SpanRecord:
        return self._tracer.begin(self._name, self._attrs)

    def __exit__(self, *exc):
        self._tracer.end()
        return False


def span(name: str, **attrs: Any):
    """A context manager recording one span (no-op when tracing is off)."""
    if not _TRACING_ENABLED:
        return NULL_SPAN
    tracer = _TRACER.get()
    if tracer is None:
        return NULL_SPAN
    return _SpanContext(tracer, name, attrs)


def event(name: str, **attrs: Any) -> None:
    """Record one instant event (no-op when tracing is off)."""
    if not _TRACING_ENABLED:
        return
    tracer = _TRACER.get()
    if tracer is not None:
        tracer.event(name, attrs)


def traced(name: str) -> Callable:
    """Decorator: run the function inside a span named ``name``.

    The one-line instrumentation hook for whole phases.  When no tracer is
    active the wrapper costs one module attribute read and falls straight
    through to the wrapped function.
    """

    def decorate(fn: Callable) -> Callable:
        import functools

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _TRACING_ENABLED:
                return fn(*args, **kwargs)
            tracer = _TRACER.get()
            if tracer is None:
                return fn(*args, **kwargs)
            tracer.begin(name)
            try:
                return fn(*args, **kwargs)
            finally:
                tracer.end()

        wrapper.__traced_span__ = name
        return wrapper

    return decorate
