"""One-call pipeline: source text -> classified program.

>>> from repro.pipeline import analyze
>>> program = analyze('''
... i = 0
... L1: while i < n do
...   i = i + 2
... endwhile
... ''')
>>> program.result.describe(program.ssa_name("i", "L1"))
'(L1, 0, 2)'

:func:`analyze` is **fault tolerant** by default: it runs inside a
resilient context (:mod:`repro.resilience.isolation`), so an internal
failure in any phase is contained at the nearest boundary -- a failing
SCR classifies as ``Unknown``, a failing loop degrades to a
:class:`~repro.core.driver.DegradedLoopSummary`, a failing optimize pass
falls back to the unoptimized SSA, and only an unanalyzable function
degrades to an empty classification.  Every containment is recorded in
``AnalyzedProgram.degradations``.  ``strict=True`` (the CLI's
``--strict-errors``) restores raise-on-first-error; genuine *input*
errors (:class:`~repro.frontend.lexer.FrontendError`) and sanitizer
violations always raise.  An optional
:class:`~repro.resilience.AnalysisBudget` bounds worst-case symbolic
work for the same dynamic extent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.dominators import DominatorTree, dominator_tree
from repro.analysis.loops import LoopNest, find_loops
from repro.analysis.loopsimplify import simplify_loops
from repro.core.driver import AnalysisResult, classify_function
from repro.diagnostics import sanitizer
from repro.frontend.lower import lower_program
from repro.frontend.parser import parse_program
from repro.ir.clone import clone_function
from repro.ir.function import Function
from repro.ir.instructions import Return
from repro.obs import metrics as _metrics
from repro.obs import runlog as _runlog
from repro.obs import trace as _trace
from repro.resilience import budget as _budget
from repro.resilience import isolation as _isolation
from repro.resilience.budget import AnalysisBudget
from repro.resilience.errors import (
    MissingPhiError,
    RecoveryPolicy,
    wrap_exception,
)
from repro.resilience.isolation import DegradationRecord
from repro.ssa.construct import SSAInfo, construct_ssa


@dataclass
class AnalyzedProgram:
    """Source + all intermediate forms + classification results."""

    source: Optional[str]
    named_ir: Function  # pre-SSA (kept for the classical baseline / interp)
    ssa: Function  # SSA form (shares labels with named_ir)
    ssa_info: SSAInfo
    domtree: DominatorTree
    nest: LoopNest
    result: AnalysisResult
    #: every failure contained during analysis (empty on a clean run)
    degradations: List[DegradationRecord] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """True when any phase, loop, or SCR was degraded or skipped."""
        return bool(self.degradations)

    def ssa_names(self, var: str) -> List[str]:
        """All SSA names of one source variable."""
        return self.ssa_info.names_of(var)

    def ssa_name(self, var: str, loop_header: str) -> str:
        """The SSA name of ``var`` defined by the phi at ``loop_header``.

        This is "the first member of the family" (section 3.1): the name the
        paper's tuples describe, e.g. ``i2`` in ``i2 = phi(i1, i3)``.

        Raises :class:`~repro.resilience.errors.MissingPhiError` (a
        ``KeyError`` subclass) when no such phi exists -- including when
        the loop itself is unknown or the analysis degraded before phi
        placement.
        """
        try:
            block = self.ssa.block(loop_header)
        except Exception as error:
            raise MissingPhiError(
                f"no loop-header phi for {var!r} at {loop_header!r}: "
                f"{error}"
            ) from error
        for phi in block.phis():
            if self.ssa_info.origin.get(phi.result) == var:
                return phi.result
        raise MissingPhiError(
            f"no loop-header phi for {var!r} at {loop_header!r}"
        )

    def classification(self, name: str):
        return self.result.classification_of(name)

    def describe_all(self) -> Dict[str, str]:
        """Readable classification of every variable.

        Covers every name classified in a loop summary *plus* the
        top-level names defined outside every loop -- those are invariant
        over the whole function (``AnalysisResult.classification_of``
        semantics) and used to be silently dropped.
        """
        out = {}
        for summary in self.result.loops.values():
            for name, cls in sorted(summary.classifications.items()):
                out[name] = cls.describe()
        for name in sorted(self.ssa.definitions()):
            if name in out:
                continue
            if self.result.defining_loop(name) is not None:
                continue  # inside a loop but unclassified: not invariant
            out[name] = self.result.classification_of(name).describe()
        return out


def analyze(
    source: str,
    name: str = "main",
    optimize: bool = True,
    sanitize: bool = False,
    strict: bool = False,
    budget: Optional[AnalysisBudget] = None,
    ranges: bool = False,
    invariants: bool = False,
) -> AnalyzedProgram:
    """Compile and classify a source program.

    ``optimize`` runs SCCP / simplification / copy propagation before
    classification, resolving constant initial values the way the paper
    assumes ("the initial value ... can often be evaluated and substituted,
    using an algorithm such as constant propagation").

    ``sanitize`` activates the pipeline sanitizer
    (:mod:`repro.diagnostics.sanitizer`): the IR is re-verified and the
    cached definition indexes are cross-checked after every pass, raising
    :class:`~repro.diagnostics.SanitizerError` on the first violation.

    ``strict`` disables failure isolation: the first internal error
    propagates to the caller (the CLI's ``--strict-errors``).

    ``budget`` caps worst-case symbolic work (see
    :class:`~repro.resilience.AnalysisBudget`); exhaustion degrades the
    affected scope rather than raising.

    ``ranges`` additionally runs the value-range analysis
    (:mod:`repro.ranges`) and attaches its :class:`RangeInfo` to
    ``program.result.ranges``, where dependence testing picks up trip
    bounds.  The phase is optional and isolated: on failure it degrades
    to all-top ranges without aborting analysis.

    ``invariants`` additionally runs the path-sensitive invariants phase
    (:mod:`repro.invariants`): per-path update summaries and polynomial
    loop invariants attach to each :class:`LoopSummary` and to
    ``program.result.invariants``.  Combine with ``ranges=True`` to also
    prune provably-dead paths and tighten ranges with invariant-implied
    bounds.  Optional and isolated: on failure it degrades to a
    no-invariants :class:`InvariantInfo`.
    """
    with _trace.span("pipeline.analyze"), _isolation.resilient() as log, \
            _isolation.strict_errors(strict), _budget.budgeted(budget):
        try:
            program = parse_program(source)
            named = lower_program(program, name=name)
        except Exception as error:  # noqa: BLE001 - FrontendError re-raises
            _isolation.absorb(error, "frontend", diag_code="RES505")
            return _degraded_program(source, name, log)
        try:
            simplify_loops(named)
        except Exception as error:  # noqa: BLE001
            _isolation.absorb(
                error,
                "analysis.loop-simplify",
                action="skipped",
                diag_code="RES502",
            )
            # simplify_loops mutates in place: re-lower to discard any
            # half-canonicalized CFG and analyze the raw form instead
            named = lower_program(program, name=name)
        sanitizer.checkpoint(named, "simplify-loops", ssa=False)
        return _analyze_function(
            named, source, optimize, log, ranges=ranges, invariants=invariants
        )


def analyze_function(
    named: Function,
    source: Optional[str] = None,
    optimize: bool = True,
    sanitize: bool = False,
    strict: bool = False,
    budget: Optional[AnalysisBudget] = None,
    ranges: bool = False,
    invariants: bool = False,
) -> AnalyzedProgram:
    """Run SSA construction + classification on named IR.

    ``named`` is kept intact (a clone is converted to SSA).  Failure
    isolation, strict mode, budgets, and the optional ranges phase work
    as in :func:`analyze`.
    """
    if sanitize and not sanitizer.active():
        with sanitizer.sanitizing(strict=True):
            return analyze_function(
                named, source, optimize, strict=strict, budget=budget,
                ranges=ranges, invariants=invariants,
            )
    with _isolation.resilient() as log, _isolation.strict_errors(strict), \
            _budget.budgeted(budget):
        return _analyze_function(
            named, source, optimize, log, ranges=ranges, invariants=invariants
        )


def _expr_cache_totals() -> Dict[str, int]:
    """Flattened hit/miss totals of the Expr memo tables (for deltas)."""
    from repro.symbolic.expr import cache_stats

    stats = cache_stats()
    return {
        f"{table}.{kind}": stats[table][kind]
        for table in ("sym", "subst", "const")
        for kind in ("hits", "misses")
    }


def _record_expr_cache_delta(before: Dict[str, int]) -> None:
    """Feed this run's Expr memo hit/miss deltas into the metrics registry."""
    from repro.symbolic.expr import cache_stats

    registry = _metrics.active()
    if registry is None:
        return
    after = _expr_cache_totals()
    for key, value in after.items():
        registry.inc(f"expr.cache.{key}", value - before[key])
    stats = cache_stats()
    registry.set_gauge(
        "expr.cache.size", sum(stats[table]["size"] for table in stats)
    )


def _degraded_program(
    source: Optional[str],
    name: str,
    log: _isolation.DegradationLog,
) -> AnalyzedProgram:
    """The maximally degraded (but structurally valid) result.

    Used when even the frontend could not produce IR under fault
    injection: an empty function whose every query answers honestly
    (no names, no loops, all-Unknown classifications).
    """
    named = Function(name)
    named.add_block("entry").terminator = Return()
    return _degraded_from_named(named, source, log)


def _degraded_from_named(
    named: Function,
    source: Optional[str],
    log: _isolation.DegradationLog,
) -> AnalyzedProgram:
    """Degrade to a classification-free result over intact named IR."""
    ssa = clone_function(named)
    domtree = dominator_tree(ssa)
    nest = find_loops(ssa, domtree)
    ssa_info = SSAInfo(ssa, domtree)
    result = AnalysisResult(ssa, nest, domtree)
    program = AnalyzedProgram(
        source=source,
        named_ir=named,
        ssa=ssa,
        ssa_info=ssa_info,
        domtree=domtree,
        nest=nest,
        result=result,
        degradations=list(log.records),
    )
    _runlog.capture(program)  # one bool read when recording is off
    return program


def _run_scalar_passes(ssa: Function) -> None:
    """The optimize phase body (raises; isolation is the caller's job)."""
    from repro.ir.verify import verify_function
    from repro.scalar.copyprop import propagate_copies
    from repro.scalar.gvn import run_gvn
    from repro.scalar.sccp import run_sccp
    from repro.scalar.simplify import simplify_instructions

    with _trace.span("pipeline.optimize"), _budget.phase_deadline("optimize"):
        for _ in range(3):
            _budget.check_deadline("optimize")
            run_sccp(ssa)
            sanitizer.checkpoint(ssa, "sccp")
            changed = simplify_instructions(ssa)
            sanitizer.checkpoint(ssa, "simplify")
            changed += run_gvn(ssa)
            sanitizer.checkpoint(ssa, "gvn")
            changed += propagate_copies(ssa)
            sanitizer.checkpoint(ssa, "copyprop")
            if not changed:
                break
    verify_function(ssa, ssa=True)


def _analyze_function(
    named: Function,
    source: Optional[str],
    optimize: bool,
    log: Optional[_isolation.DegradationLog] = None,
    ranges: bool = False,
    invariants: bool = False,
) -> AnalyzedProgram:
    if log is None:
        log = _isolation.DegradationLog()

    cache_before = _expr_cache_totals() if _metrics.active() is not None else None

    try:
        ssa = clone_function(named)
        ssa_info = construct_ssa(ssa)
    except Exception as error:  # noqa: BLE001 - whole-function boundary
        _isolation.absorb(error, "ssa.construct", diag_code="RES505")
        return _degraded_from_named(named, source, log)
    sanitizer.checkpoint(ssa, "construct-ssa")
    if optimize:
        try:
            _run_scalar_passes(ssa)
        except Exception as error:  # noqa: BLE001 - phase boundary
            wrapped = wrap_exception(error, "pipeline.optimize")
            retry_ok = False
            if (
                wrapped.policy is RecoveryPolicy.RETRY
                and _isolation.isolating()
            ):
                log.record(
                    phase=wrapped.phase or "pipeline.optimize",
                    code=wrapped.code,
                    message=wrapped.message,
                    diag_code="RES504",
                    action="retried",
                )
                # the failed passes mutated ``ssa`` in place: rebuild from
                # the intact named IR before re-running them
                try:
                    ssa = clone_function(named)
                    ssa_info = construct_ssa(ssa)
                    _run_scalar_passes(ssa)
                    retry_ok = True
                except Exception as retry_error:  # noqa: BLE001
                    error = retry_error
                    wrapped = wrap_exception(error, "pipeline.optimize")
            if not retry_ok:
                _isolation.absorb(
                    error,
                    wrapped.phase or "pipeline.optimize",
                    action="skipped",
                    diag_code="RES502",
                )
                try:
                    ssa = clone_function(named)
                    ssa_info = construct_ssa(ssa)
                except Exception as rebuild_error:  # noqa: BLE001
                    _isolation.absorb(
                        rebuild_error, "ssa.construct", diag_code="RES505"
                    )
                    return _degraded_from_named(named, source, log)
    try:
        domtree = dominator_tree(ssa)
        nest = find_loops(ssa, domtree)
    except Exception as error:  # noqa: BLE001 - whole-function boundary
        _isolation.absorb(error, "analysis.loops", diag_code="RES505")
        return _degraded_from_named(named, source, log)
    try:
        # a request over its whole-analysis deadline degrades here rather
        # than starting classification it cannot finish (the serving
        # layer's per-request budget; a no-op without one)
        _budget.check_request_deadline("classify.function")
        result = classify_function(ssa, nest, domtree)
    except Exception as error:  # noqa: BLE001 - whole-function boundary
        _isolation.absorb(error, "classify.function", diag_code="RES505")
        result = AnalysisResult(ssa, nest, domtree)
    if ranges:
        from repro.ranges.analysis import RangeInfo, compute_ranges

        # optional + isolated: a failure degrades to all-top ranges (every
        # query answers the full interval) and analysis continues
        def _ranges_phase():
            _budget.check_request_deadline("ranges.compute")
            return compute_ranges(result)

        result.ranges = _isolation.run_optional(
            "ranges.compute",
            _ranges_phase,
            default=RangeInfo.top_info(function=ssa.name),
        )
    if invariants:
        from repro.invariants.analysis import InvariantInfo, compute_invariants

        # optional + isolated: a failure degrades to a no-invariants info
        # (every query answers "no claim") and analysis continues
        def _invariants_phase():
            _budget.check_request_deadline("invariants.compute")
            return compute_invariants(result)

        result.invariants = _isolation.run_optional(
            "invariants.compute",
            _invariants_phase,
            default=InvariantInfo.degraded_info(function=ssa.name),
        )
    if cache_before is not None:
        _record_expr_cache_delta(cache_before)
    program = AnalyzedProgram(
        source=source,
        named_ir=named,
        ssa=ssa,
        ssa_info=ssa_info,
        domtree=domtree,
        nest=nest,
        result=result,
        degradations=list(log.records),
    )
    _runlog.capture(program)  # one bool read when recording is off
    return program
