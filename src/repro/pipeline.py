"""One-call pipeline: source text -> classified program.

>>> from repro.pipeline import analyze
>>> program = analyze('''
... i = 0
... L1: while i < n do
...   i = i + 2
... endwhile
... ''')
>>> program.result.describe(program.ssa_name("i", "L1"))
'(L1, 0, 2)'
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.dominators import DominatorTree, dominator_tree
from repro.analysis.loops import LoopNest, find_loops
from repro.analysis.loopsimplify import simplify_loops
from repro.core.driver import AnalysisResult, classify_function
from repro.diagnostics import sanitizer
from repro.frontend.lower import lower_program
from repro.frontend.parser import parse_program
from repro.ir.clone import clone_function
from repro.ir.function import Function
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.ssa.construct import SSAInfo, construct_ssa


@dataclass
class AnalyzedProgram:
    """Source + all intermediate forms + classification results."""

    source: Optional[str]
    named_ir: Function  # pre-SSA (kept for the classical baseline / interp)
    ssa: Function  # SSA form (shares labels with named_ir)
    ssa_info: SSAInfo
    domtree: DominatorTree
    nest: LoopNest
    result: AnalysisResult

    # ------------------------------------------------------------------
    def ssa_names(self, var: str) -> List[str]:
        """All SSA names of one source variable."""
        return self.ssa_info.names_of(var)

    def ssa_name(self, var: str, loop_header: str) -> str:
        """The SSA name of ``var`` defined by the phi at ``loop_header``.

        This is "the first member of the family" (section 3.1): the name the
        paper's tuples describe, e.g. ``i2`` in ``i2 = phi(i1, i3)``.
        """
        for phi in self.ssa.block(loop_header).phis():
            if self.ssa_info.origin.get(phi.result) == var:
                return phi.result
        raise KeyError(f"no loop-header phi for {var!r} at {loop_header!r}")

    def classification(self, name: str):
        return self.result.classification_of(name)

    def describe_all(self) -> Dict[str, str]:
        """Readable classification of every variable.

        Covers every name classified in a loop summary *plus* the
        top-level names defined outside every loop -- those are invariant
        over the whole function (``AnalysisResult.classification_of``
        semantics) and used to be silently dropped.
        """
        out = {}
        for summary in self.result.loops.values():
            for name, cls in sorted(summary.classifications.items()):
                out[name] = cls.describe()
        for name in sorted(self.ssa.definitions()):
            if name in out:
                continue
            if self.result.defining_loop(name) is not None:
                continue  # inside a loop but unclassified: not invariant
            out[name] = self.result.classification_of(name).describe()
        return out


def analyze(
    source: str, name: str = "main", optimize: bool = True, sanitize: bool = False
) -> AnalyzedProgram:
    """Compile and classify a source program.

    ``optimize`` runs SCCP / simplification / copy propagation before
    classification, resolving constant initial values the way the paper
    assumes ("the initial value ... can often be evaluated and substituted,
    using an algorithm such as constant propagation").

    ``sanitize`` activates the pipeline sanitizer
    (:mod:`repro.diagnostics.sanitizer`): the IR is re-verified and the
    cached definition indexes are cross-checked after every pass, raising
    :class:`~repro.diagnostics.SanitizerError` on the first violation.
    """
    with _trace.span("pipeline.analyze"):
        program = parse_program(source)
        named = lower_program(program, name=name)
        simplify_loops(named)
        sanitizer.checkpoint(named, "simplify-loops", ssa=False)
        return analyze_function(
            named, source=source, optimize=optimize, sanitize=sanitize
        )


def analyze_function(
    named: Function,
    source: Optional[str] = None,
    optimize: bool = True,
    sanitize: bool = False,
) -> AnalyzedProgram:
    """Run SSA construction + classification on named IR.

    ``named`` is kept intact (a clone is converted to SSA).
    """
    if sanitize and not sanitizer.active():
        with sanitizer.sanitizing(strict=True):
            return _analyze_function(named, source, optimize)
    return _analyze_function(named, source, optimize)


def _expr_cache_totals() -> Dict[str, int]:
    """Flattened hit/miss totals of the Expr memo tables (for deltas)."""
    from repro.symbolic.expr import cache_stats

    stats = cache_stats()
    return {
        f"{table}.{kind}": stats[table][kind]
        for table in ("sym", "subst", "const")
        for kind in ("hits", "misses")
    }


def _record_expr_cache_delta(before: Dict[str, int]) -> None:
    """Feed this run's Expr memo hit/miss deltas into the metrics registry."""
    from repro.symbolic.expr import cache_stats

    registry = _metrics.active()
    if registry is None:
        return
    after = _expr_cache_totals()
    for key, value in after.items():
        registry.inc(f"expr.cache.{key}", value - before[key])
    stats = cache_stats()
    registry.set_gauge(
        "expr.cache.size", sum(stats[table]["size"] for table in stats)
    )


def _analyze_function(
    named: Function, source: Optional[str], optimize: bool
) -> AnalyzedProgram:
    from repro.scalar.copyprop import propagate_copies
    from repro.scalar.gvn import run_gvn
    from repro.scalar.sccp import run_sccp
    from repro.scalar.simplify import simplify_instructions

    cache_before = _expr_cache_totals() if _metrics.active() is not None else None

    ssa = clone_function(named)
    ssa_info = construct_ssa(ssa)
    sanitizer.checkpoint(ssa, "construct-ssa")
    if optimize:
        from repro.ir.verify import verify_function

        with _trace.span("pipeline.optimize"):
            for _ in range(3):
                run_sccp(ssa)
                sanitizer.checkpoint(ssa, "sccp")
                changed = simplify_instructions(ssa)
                sanitizer.checkpoint(ssa, "simplify")
                changed += run_gvn(ssa)
                sanitizer.checkpoint(ssa, "gvn")
                changed += propagate_copies(ssa)
                sanitizer.checkpoint(ssa, "copyprop")
                if not changed:
                    break
        verify_function(ssa, ssa=True)
    domtree = dominator_tree(ssa)
    nest = find_loops(ssa, domtree)
    result = classify_function(ssa, nest, domtree)
    if cache_before is not None:
        _record_expr_cache_delta(cache_before)
    return AnalyzedProgram(
        source=source,
        named_ir=named,
        ssa=ssa,
        ssa_info=ssa_info,
        domtree=domtree,
        nest=nest,
        result=result,
    )
