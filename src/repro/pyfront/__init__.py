"""The real-Python frontend: CPython ``ast`` to repro IR.

The paper's recognizer only matters if it can face real programs; this
package is the bridge.  :func:`repro.pyfront.lower.compile_module` turns
an ordinary Python file into named IR functions (the supported subset is
catalogued in ``SUPPORTED`` and ``docs/PYTHON.md``), degrading per
function and per construct through the ``PYF4xx`` diagnostic family
instead of ever raising.  :func:`repro.pyfront.driver.pylint_paths` is
the corpus driver behind ``repro pylint``: it walks packages and runs
every lowered function through classification, value ranges, invariants,
and dependence testing.
"""

from __future__ import annotations

from repro.pyfront.driver import (
    CorpusResult,
    FunctionOutcome,
    pylint_paths,
    render_corpus_json,
    render_corpus_text,
)
from repro.pyfront.lower import (
    LEN_SUFFIX,
    CompiledFunction,
    ModuleCompilation,
    compile_function,
    compile_module,
)

__all__ = [
    "LEN_SUFFIX",
    "SUPPORTED",
    "CompiledFunction",
    "CorpusResult",
    "FunctionOutcome",
    "ModuleCompilation",
    "compile_function",
    "compile_module",
    "pylint_paths",
    "render_corpus_json",
    "render_corpus_text",
]

#: the supported subset, construct -> how it lowers.  ``docs/PYTHON.md``
#: documents every key (the doc-sync test holds the two in lockstep).
SUPPORTED = {
    "def": "positional int / list-of-int parameters; a list parameter "
    "becomes an IR array plus a synthetic `name$len` length parameter",
    "return": "bare, `return None`, or an int expression",
    "for-range": "`for i in range(stop|start,stop[,step])` with a "
    "non-zero literal step; lowers to the counted header/latch shape",
    "for-list": "`for x in xs` over a list parameter; a hidden counter "
    "indexes `xs` and loads into `x` at the top of the body",
    "while": "any supported condition (no `else` clause)",
    "if": "`if`/`elif`/`else` with short-circuit `and`/`or`/`not`",
    "break-continue": "inside any loop",
    "arithmetic": "int `+ - * // %`, unary `-`; `//` and `%` expand "
    "branch-free to CPython floor semantics over the IR's truncating "
    "division",
    "augmented-assign": "`+= -= *= //= %=` on names and subscripts",
    "comparisons": "`< <= > >= == !=`, chained in conditions",
    "subscript": "`a[i]` load/store on list parameters; constant "
    "negative indices rewrite to `a[a$len - k]`",
    "len": "`len(a)` of a list parameter reads `a$len`",
    "assert": "`assert n <op> literal` and `assert len(a) <op> literal` "
    "become range assumptions (other asserts drop with a PYF407 note)",
}
