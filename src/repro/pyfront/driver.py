"""The real-Python corpus driver behind ``repro pylint``.

Walks packages, compiles every function the frontend can carry
(:mod:`repro.pyfront.lower`), and runs each one through the full
analysis pipeline: classification, value ranges (RNG6xx findings on real
code), polynomial invariants, dependence testing, and why-not-DOALL
attribution.  Functions the frontend cannot lower degrade to ``PYF4xx``
findings instead of being silently dropped, so the corpus report always
accounts for every ``def`` it saw.

The zero-exception contract of ``repro pylint`` lives here: every
per-function step is isolated, so one pathological function (or one
analysis bug) costs exactly that function, never the corpus run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.diagnostics.diagnostic import Diagnostic, DiagnosticCollector
from repro.pyfront.lower import CompiledFunction, compile_module

#: hint attached to PYF4xx findings (instead of the RES5xx default)
_HINT = "see docs/PYTHON.md for the supported Python subset"

__all__ = [
    "CorpusResult",
    "FunctionOutcome",
    "pylint_paths",
    "render_corpus_json",
    "render_corpus_text",
]


@dataclass
class FunctionOutcome:
    """What happened to one real-Python function."""

    origin: str
    qualname: str
    ok: bool
    #: per-loop rows: header label, DOALL verdict, blocker slugs, and the
    #: classification (``describe()``) of every source-level name
    loops: List[Dict[str, Any]] = field(default_factory=list)


@dataclass
class CorpusResult:
    """Everything one ``repro pylint`` run learned."""

    files: int = 0
    functions: int = 0
    lowered: int = 0
    degraded: int = 0
    outcomes: List[FunctionOutcome] = field(default_factory=list)
    collector: DiagnosticCollector = field(default_factory=DiagnosticCollector)

    @property
    def findings(self) -> List[Diagnostic]:
        return self.collector.sorted()


def _publish(
    local: DiagnosticCollector, out: DiagnosticCollector, origin: str
) -> None:
    out.extend(
        d.with_origin(origin) if d.origin is None else d for d in local
    )


def _skip_record(cf: CompiledFunction) -> Dict[str, Any]:
    """A flight-recorder record for a function that never lowered.

    Shaped to satisfy ``repro stats --strict`` validation, so a corpus
    run's store aggregates cleanly even when most of a real package
    degrades (the expected steady state on arbitrary code).
    """
    from repro.obs.runlog import RUNLOG_SCHEMA, source_fingerprint

    return {
        "schema": RUNLOG_SCHEMA,
        "ts": time.time(),
        "origin": cf.origin,
        "source_lang": "python",
        "function": cf.qualname,
        "fingerprint": source_fingerprint(cf.source),
        "loops": [],
        "classes": {},
        "parallel": {"doall": 0, "serial": 0, "undecided": 0},
        "blocked": {},
        "degradations": [
            {
                "phase": d.phase,
                "code": d.code,
                "action": d.action,
                "scope": d.scope,
                "diag_code": d.diag_code,
                "message": d.message,
            }
            for d in cf.degradations
        ],
        "ranges": None,
        "invariants": None,
    }


def _loop_rows(program) -> List[Dict[str, Any]]:
    """Per-loop verdicts + classifications for the corpus report."""
    rows: List[Dict[str, Any]] = []
    result = program.result
    verdicts: Dict[str, Any] = {}
    if result.loops:
        try:
            from repro.dependence.graph import build_dependence_graph
            from repro.dependence.loopinfo import analyze_parallelism

            graph = build_dependence_graph(result)
            verdicts = analyze_parallelism(result, graph)
        except Exception:  # noqa: BLE001 - verdicts degrade to undecided
            verdicts = {}
    for summary in sorted(
        result.loops.values(), key=lambda s: (s.loop.depth, s.label)
    ):
        verdict = verdicts.get(summary.label)
        classes = {
            name: cls.describe()
            for name, cls in sorted(summary.classifications.items())
            if not name.startswith("$")
        }
        rows.append(
            {
                "header": summary.label,
                "parallel": None if verdict is None else bool(
                    verdict.parallelizable
                ),
                "blocked_by": []
                if verdict is None
                else [b.to_json()["reason"] for b in verdict.blockers],
                "classes": classes,
            }
        )
    return rows


def _analyze_compiled(
    cf: CompiledFunction,
    out: DiagnosticCollector,
    ranges: bool,
    invariants: bool,
    budget,
) -> FunctionOutcome:
    """Full pipeline over one lowered function; never raises."""
    from repro.analysis.loopsimplify import simplify_loops
    from repro.diagnostics.lints import lint_lattice
    from repro.diagnostics.lints import lint_source as lint_src
    from repro.diagnostics.verifier import verify_collect
    from repro.ir.clone import clone_function
    from repro.obs import runlog
    from repro.pipeline import analyze_function
    from repro.resilience.isolation import diagnostics_of

    local = DiagnosticCollector()
    if cf.degradations:
        diagnostics_of(cf.degradations, local, origin=cf.origin, hint=_HINT)
    named = clone_function(cf.function)
    try:
        simplify_loops(named)
    except Exception:  # noqa: BLE001 - analyze the raw shape instead
        named = clone_function(cf.function)
    with runlog.origin(cf.origin), runlog.source_lang("python"):
        program = analyze_function(
            named,
            source=cf.source,
            ranges=ranges,
            invariants=invariants,
            budget=budget,
        )
    seen = {(d.code, d.message) for d in local}
    for diagnostic in verify_collect(program.ssa, ssa=True):
        if (diagnostic.code, diagnostic.message) not in seen:
            local.diagnostics.append(diagnostic)
    if program.degradations:
        diagnostics_of(program.degradations, local)
    # static lints only: execution lints re-interpret every sample, which
    # a corpus-scale walk cannot afford (and the differential oracle
    # already holds lowering to CPython semantics)
    lint_lattice(program, local)
    lint_src(program, local)
    if ranges and program.result.ranges is not None:
        from repro.ranges import check_ranges

        check_ranges(program.result, program.result.ranges, local)
    _publish(local, out, cf.origin)
    return FunctionOutcome(
        origin=cf.origin,
        qualname=cf.qualname,
        ok=True,
        loops=_loop_rows(program),
    )


def pylint_paths(
    paths: Sequence[str],
    collector: Optional[DiagnosticCollector] = None,
    ranges: bool = True,
    invariants: bool = True,
    budget=None,
) -> CorpusResult:
    """Lint every ``def`` of every Python file under ``paths``.

    Never raises past a function: frontend degradations become PYF4xx
    findings, analysis failures become RES5xx findings, and an
    unreadable file becomes one PYF406 finding.  Callers that want
    flight-recorder output wrap the call in ``runlog.recording()`` --
    per-function records are captured inside the pipeline; functions
    that never lowered get an explicit skip record so the store accounts
    for the whole corpus.
    """
    from repro.diagnostics.driver import discover_files
    from repro.obs import metrics as _metrics
    from repro.obs import runlog
    from repro.resilience.isolation import diagnostics_of

    result = CorpusResult(
        collector=collector if collector is not None else DiagnosticCollector()
    )
    for path in discover_files(paths, (".py",)):
        result.files += 1
        try:
            with open(path, encoding="utf-8", errors="replace") as handle:
                text = handle.read()
        except OSError as error:
            result.collector.emit(
                "PYF406", f"cannot read {path!r}: {error}", origin=path
            )
            continue
        module = compile_module(text, origin=path)
        if module.error is not None:
            diagnostics_of(
                [module.error], result.collector, origin=path, hint=_HINT
            )
            continue
        for cf in module.functions:
            result.functions += 1
            _metrics.inc("pyfront.functions")
            with _metrics.isolated():
                if cf.ok:
                    try:
                        outcome = _analyze_compiled(
                            cf, result.collector, ranges, invariants, budget
                        )
                    except Exception as error:  # noqa: BLE001 - contract
                        result.collector.emit(
                            "LNT001",
                            f"analysis failed: {error}",
                            origin=cf.origin,
                            function=cf.qualname,
                        )
                        outcome = FunctionOutcome(
                            origin=cf.origin, qualname=cf.qualname, ok=False
                        )
                else:
                    _metrics.inc("pyfront.degraded")
                    diagnostics_of(
                        cf.degradations,
                        result.collector,
                        origin=cf.origin,
                        hint=_HINT,
                    )
                    writer = runlog.active()
                    if writer is not None:
                        try:
                            writer.write(_skip_record(cf))
                        except OSError:
                            pass
                    outcome = FunctionOutcome(
                        origin=cf.origin, qualname=cf.qualname, ok=False
                    )
            if outcome.ok:
                result.lowered += 1
            else:
                result.degraded += 1
            result.outcomes.append(outcome)
    return result


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def render_corpus_text(result: CorpusResult) -> str:
    """The corpus report: ingestion stats, loop verdicts, findings."""
    from repro.diagnostics import render_text

    lines: List[str] = []
    lines.append("== corpus ==")
    lines.append(
        f"  files: {result.files}, functions: {result.functions} "
        f"({result.lowered} lowered, {result.degraded} degraded)"
    )
    rows = [
        (outcome, row)
        for outcome in result.outcomes
        for row in outcome.loops
    ]
    lines.append("")
    lines.append("== loops ==")
    if not rows:
        lines.append("  none lowered")
    for outcome, row in rows:
        if row["parallel"] is None:
            verdict = "undecided"
        elif row["parallel"]:
            verdict = "DOALL"
        else:
            verdict = "serial[" + ",".join(row["blocked_by"]) + "]"
        interesting = {
            name: described
            for name, described in row["classes"].items()
            if not described.startswith("Unknown")
        }
        shown = ", ".join(
            f"{name}: {described}" for name, described in interesting.items()
        )
        lines.append(
            f"  {outcome.origin} {outcome.qualname} {row['header']}: "
            f"{verdict}" + (f"  {shown}" if shown else "")
        )
    lines.append("")
    lines.append("== findings ==")
    lines.append(render_text(result.findings))
    return "\n".join(lines)


def render_corpus_json(result: CorpusResult) -> str:
    """The corpus report as one JSON document (the CI artifact shape)."""
    import json

    payload = {
        "files": result.files,
        "functions": result.functions,
        "lowered": result.lowered,
        "degraded": result.degraded,
        "loops": [
            {
                "origin": outcome.origin,
                "function": outcome.qualname,
                **row,
            }
            for outcome in result.outcomes
            for row in outcome.loops
        ],
        "findings": [d.to_dict() for d in result.findings],
        "counts": _severity_counts(result.findings),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _severity_counts(findings: Sequence[Diagnostic]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for diagnostic in findings:
        key = str(diagnostic.severity)
        counts[key] = counts.get(key, 0) + 1
    return counts
