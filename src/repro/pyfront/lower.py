"""Lower a subset of real CPython functions (stdlib ``ast``) to named IR.

The supported subset is exactly what the IR can execute with identical
semantics to CPython on int inputs (the differential oracle in
``tests/pyfront/test_differential.py`` holds the frontend to that):

* ``def`` with positional int / list-of-int parameters
* ``for i in range(...)`` (1/2/3-arg, constant step), ``for x in xs``
* ``while`` / ``if`` / ``elif`` / ``else`` / ``break`` / ``continue``
* int ``+ - * // %``, unary ``-``, augmented assigns, comparisons
  (including chained), ``and`` / ``or`` / ``not`` in conditions
* list subscript loads and stores (constant negative indices included),
  ``len()``
* ``assert`` bounds of the shapes ``assert n <op> literal`` and
  ``assert len(a) <op> literal``, recorded as range assumptions

Everything else **degrades, never raises**: validation collects one
:class:`~repro.resilience.isolation.DegradationRecord` per unsupported
construct (the ``PYF4xx`` diagnostic family) and the function is skipped.
Ingesting an arbitrary package is therefore total -- the corpus driver
(:mod:`repro.pyfront.driver`) leans on that to walk real packages.

Semantics notes (where CPython and the IR disagree and how it's bridged):

* ``//`` floors while the IR's ``DIV`` truncates toward zero; ``a // b``
  expands branch-free to ``q0 - (r0 != 0)*(sign(a) != sign(b))`` using
  the 0/1 results of ``Compare``.  ``%`` derives from that quotient, so
  both match CPython exactly (and both trap on a zero divisor).
* ``for i in range(...)`` lowers to the classical counted-loop shape
  (init / header compare / latch increment).  After the loop CPython
  keeps the *last yielded* value while the counted shape overshoots by
  one step, so a loop variable that is read after its loop (or written
  inside it) degrades the function (``PYF405``) instead of miscompiling.
* ``for x in xs`` lowers to a hidden counter plus a body-top ``Load``;
  the post-loop binding of ``x`` matches CPython, so only in-body writes
  to ``x`` degrade.
* A list parameter ``a`` becomes an IR array plus a synthetic length
  parameter ``a$len`` (``$`` cannot appear in Python identifiers) with
  the assumption ``a$len >= 0``; ``len(a)`` reads it and ``a[-k]``
  rewrites to ``a[a$len - k]``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    Assign,
    BinOp,
    Branch,
    Compare,
    Jump,
    Load,
    Return,
    Store,
    UnOp,
)
from repro.ir.opcodes import BinaryOp, Relation
from repro.ir.values import Const, Ref, Value
from repro.obs.trace import traced
from repro.pyfront.typeinfer import INT, LIST, Kinds, infer_kinds
from repro.resilience.isolation import DegradationRecord

__all__ = [
    "LEN_SUFFIX",
    "CompiledFunction",
    "ModuleCompilation",
    "compile_function",
    "compile_module",
]

#: suffix of the synthetic length parameter of a list parameter
LEN_SUFFIX = "$len"

_BINOPS = {
    ast.Add: BinaryOp.ADD,
    ast.Sub: BinaryOp.SUB,
    ast.Mult: BinaryOp.MUL,
}

_RELATIONS = {
    ast.Lt: ("<", Relation.LT),
    ast.LtE: ("<=", Relation.LE),
    ast.Gt: (">", Relation.GT),
    ast.GtE: (">=", Relation.GE),
    ast.Eq: ("==", Relation.EQ),
    ast.NotEq: ("!=", Relation.NE),
}

#: comparison relations the range analysis consumes as assumptions
_ASSUMABLE = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "=="}


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass
class CompiledFunction:
    """One Python function: lowered IR, or the reasons it degraded."""

    qualname: str
    origin: str
    lineno: int
    #: parameter names with inferred kinds, in signature order
    params: List[Tuple[str, str]] = field(default_factory=list)
    #: clean re-rendered source (``ast.unparse``) for the oracle / runlog
    source: Optional[str] = None
    #: the named IR, or ``None`` when the function degraded
    function: Optional[Function] = None
    #: one record per unsupported construct (PYF4xx), plus dropped-assert
    #: notes; non-empty degradations with ``function is None`` mean skipped
    degradations: List[DegradationRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.function is not None


@dataclass
class ModuleCompilation:
    """Every function of one Python file, compiled or degraded."""

    origin: str
    functions: List[CompiledFunction] = field(default_factory=list)
    #: the PYF406 record of an unparseable file (``functions`` is empty)
    error: Optional[DegradationRecord] = None

    @property
    def degradations(self) -> List[DegradationRecord]:
        out = [self.error] if self.error is not None else []
        for compiled in self.functions:
            out.extend(compiled.degradations)
        return out


class _Unsupported(Exception):
    """Internal: a construct slipped past validation into the lowerer."""


def _record(
    diag_code: str,
    code: str,
    message: str,
    scope: str,
    action: str = "skipped",
) -> DegradationRecord:
    return DegradationRecord(
        phase="pyfront.lower",
        code=code,
        message=message,
        diag_code=diag_code,
        scope=scope,
        action=action,
    )


def _const_int(node: ast.AST) -> Optional[int]:
    """The value of an int literal (allowing a leading unary minus)."""
    if isinstance(node, ast.Constant) and type(node.value) is int:
        return node.value
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
        and isinstance(node.operand, ast.Constant)
        and type(node.operand.value) is int
    ):
        return -node.operand.value if isinstance(node.op, ast.USub) else node.operand.value
    return None


def _is_none(node: Optional[ast.AST]) -> bool:
    return node is None or (isinstance(node, ast.Constant) and node.value is None)


def _describe(node: ast.AST) -> str:
    kind = type(node).__name__
    lineno = getattr(node, "lineno", None)
    return f"{kind} (line {lineno})" if lineno is not None else kind


def _len_call(node: ast.AST) -> Optional[str]:
    """The list name of a ``len(name)`` call, or None."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "len"
        and len(node.args) == 1
        and not node.keywords
        and isinstance(node.args[0], ast.Name)
    ):
        return node.args[0].id
    return None


# ----------------------------------------------------------------------
# validation: collect every unsupported construct, never raise
# ----------------------------------------------------------------------
class _Validator:
    """Walks one function and records every construct the IR can't carry.

    Collecting *all* problems (instead of failing fast) is what gives the
    corpus driver per-construct degradation records.
    """

    def __init__(self, node: ast.FunctionDef, kinds: Kinds, scope: str):
        self.node = node
        self.kinds = kinds
        self.scope = scope
        self.records: List[DegradationRecord] = []
        self.loop_depth = 0
        self.params = [a.arg for a in _all_args(node)]

    # -- recording -----------------------------------------------------
    def problem(self, diag_code: str, code: str, message: str) -> None:
        self.records.append(_record(diag_code, code, message, self.scope))

    def note(self, code: str, message: str) -> None:
        self.records.append(
            _record("PYF407", code, message, self.scope, action="dropped")
        )

    # -- entry ---------------------------------------------------------
    def run(self) -> List[DegradationRecord]:
        node = self.node
        if node.decorator_list:
            self.problem(
                "PYF401", "decorated-function",
                f"decorated function {self.scope!r} is not lowered",
            )
        args = node.args
        if args.vararg or args.kwarg or args.kwonlyargs:
            self.problem(
                "PYF403", "unsupported-signature",
                f"{self.scope!r} takes *args/**kwargs/keyword-only "
                "parameters; only positional int/list parameters lower",
            )
        for name, why_int, why_list in self.kinds.conflicts:
            self.problem(
                "PYF404", "kind-conflict",
                f"{name!r} is {why_int} and {why_list}; names must be "
                "either int scalars or list-of-int parameters",
            )
        for name, kind in self.kinds.kinds.items():
            if kind == LIST and name not in self.params:
                self.problem(
                    "PYF404", "local-list",
                    f"{name!r} is used as a list but is not a parameter; "
                    "only list parameters are modeled as arrays",
                )
        self.body(node.body)
        self.check_loop_targets()
        return self.records

    # -- statements ----------------------------------------------------
    def body(self, statements: Sequence[ast.stmt]) -> None:
        for statement in statements:
            self.statement(statement)

    def statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Return):
            if not _is_none(stmt.value):
                self.int_expr(stmt.value)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self.target(target)
            self.int_expr(stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            self.target(stmt.target)
            if stmt.value is not None:
                self.int_expr(stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self.target(stmt.target, augmented=True)
            if type(stmt.op) not in _BINOPS and not isinstance(
                stmt.op, (ast.FloorDiv, ast.Mod)
            ):
                self.problem(
                    "PYF401", "unsupported-augassign",
                    f"augmented {type(stmt.op).__name__} at line "
                    f"{stmt.lineno}; only += -= *= //= %= lower",
                )
            self.int_expr(stmt.value)
        elif isinstance(stmt, ast.If):
            self.condition(stmt.test)
            self.body(stmt.body)
            self.body(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.condition(stmt.test)
            if stmt.orelse:
                self.problem(
                    "PYF401", "loop-else",
                    f"while-else at line {stmt.lineno} is not lowered",
                )
            self.loop_depth += 1
            self.body(stmt.body)
            self.loop_depth -= 1
        elif isinstance(stmt, ast.For):
            self.for_loop(stmt)
        elif isinstance(stmt, ast.Expr):
            if not isinstance(stmt.value, ast.Constant):
                self.problem(
                    "PYF401", "expression-statement",
                    f"expression statement {_describe(stmt.value)} has no "
                    "IR effect (calls are not supported)",
                )
        elif isinstance(stmt, ast.Assert):
            if _assert_bound(stmt.test, self.kinds) is None:
                self.note(
                    "assert-dropped",
                    f"assert at line {stmt.lineno} is not a recognized "
                    "bound shape; dropped",
                )
        elif isinstance(stmt, ast.Pass):
            pass
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            if self.loop_depth == 0:
                self.problem(
                    "PYF401", "break-outside-loop",
                    f"{type(stmt).__name__.lower()} outside a loop at "
                    f"line {stmt.lineno}",
                )
        else:
            self.problem(
                "PYF401", f"unsupported-statement:{type(stmt).__name__}",
                f"unsupported statement {_describe(stmt)}",
            )

    def for_loop(self, stmt: ast.For) -> None:
        if stmt.orelse:
            self.problem(
                "PYF401", "loop-else",
                f"for-else at line {stmt.lineno} is not lowered",
            )
        if not isinstance(stmt.target, ast.Name):
            self.problem(
                "PYF401", "unsupported-loop-target",
                f"for target {_describe(stmt.target)}; only a plain name "
                "is supported",
            )
        iterable = stmt.iter
        if isinstance(iterable, ast.Name):
            if not self.kinds.is_list(iterable.id):
                self.problem(
                    "PYF402", "unsupported-iterable",
                    f"iterating non-list {iterable.id!r} at line "
                    f"{stmt.lineno}",
                )
        elif _range_call(iterable) is not None:
            args = iterable.args
            for arg in args:
                self.int_expr(arg)
            if len(args) == 3 and (_const_int(args[2]) or 0) == 0:
                self.problem(
                    "PYF401", "non-constant-range-step",
                    f"range() step at line {stmt.lineno} must be a "
                    "non-zero int literal",
                )
        else:
            self.problem(
                "PYF402", "unsupported-iterable",
                f"for iterates {_describe(iterable)}; only range(...) "
                "and list parameters are supported",
            )
        self.loop_depth += 1
        self.body(stmt.body)
        self.loop_depth -= 1

    def target(self, node: ast.expr, augmented: bool = False) -> None:
        if isinstance(node, ast.Name):
            return
        if isinstance(node, ast.Subscript):
            self.subscript(node)
            return
        self.problem(
            "PYF401", "unsupported-target",
            f"assignment target {_describe(node)}; only names and "
            "list subscripts are supported",
        )

    # -- expressions ---------------------------------------------------
    def int_expr(self, node: ast.expr) -> None:
        if isinstance(node, ast.Constant):
            if type(node.value) not in (int, bool):
                self.problem(
                    "PYF402", "non-int-literal",
                    f"literal {node.value!r} at line {node.lineno}; only "
                    "int and bool literals lower",
                )
        elif isinstance(node, ast.Name):
            self.name_use(node)
        elif isinstance(node, ast.BinOp):
            if type(node.op) not in _BINOPS and not isinstance(
                node.op, (ast.FloorDiv, ast.Mod)
            ):
                self.problem(
                    "PYF402", f"unsupported-operator:{type(node.op).__name__}",
                    f"operator {type(node.op).__name__} at line "
                    f"{node.lineno}; only + - * // % lower",
                )
            self.int_expr(node.left)
            self.int_expr(node.right)
        elif isinstance(node, ast.UnaryOp):
            if isinstance(node.op, (ast.USub, ast.UAdd)):
                self.int_expr(node.operand)
            else:
                self.problem(
                    "PYF402", f"unsupported-operator:{type(node.op).__name__}",
                    f"unary {type(node.op).__name__} at line {node.lineno} "
                    "is not an integer expression",
                )
        elif isinstance(node, ast.Subscript):
            self.subscript(node)
        elif isinstance(node, ast.Call):
            if _len_call(node) is None:
                self.problem(
                    "PYF402", "unsupported-call",
                    f"call {_describe(node)}; only len(list_param) and a "
                    "for-loop's range(...) are supported",
                )
        elif isinstance(node, ast.Compare):
            if len(node.ops) == 1:
                self.int_expr(node.left)
                self.int_expr(node.comparators[0])
                self.relation(node.ops[0], node)
            else:
                self.problem(
                    "PYF402", "chained-compare-value",
                    f"chained comparison at line {node.lineno} used as a "
                    "value (supported only as a branch condition)",
                )
        else:
            self.problem(
                "PYF402", f"unsupported-expression:{type(node).__name__}",
                f"unsupported expression {_describe(node)}",
            )

    def subscript(self, node: ast.Subscript) -> None:
        if not isinstance(node.value, ast.Name):
            self.problem(
                "PYF402", "unsupported-subscript-base",
                f"subscript base {_describe(node.value)}; only list "
                "parameters are subscriptable",
            )
            return
        index = node.slice
        if isinstance(index, ast.Slice):
            self.problem(
                "PYF402", "slice",
                f"slice of {node.value.id!r} at line {node.lineno}; only "
                "single int indices are supported",
            )
            return
        self.int_expr(index)

    def name_use(self, node: ast.Name) -> None:
        name = node.id
        if self.kinds.is_list(name):
            self.problem(
                "PYF402", "list-as-value",
                f"list {name!r} used as a value at line {node.lineno} "
                "(only element loads/stores and len() are supported)",
            )
            return
        if (
            name not in self.params
            and name not in self.kinds.assigned
            and name not in ("True", "False")
        ):
            self.problem(
                "PYF402", "free-variable",
                f"free variable {name!r} at line {node.lineno}; globals "
                "and closures are not modeled",
            )

    def relation(self, op: ast.cmpop, node: ast.Compare) -> None:
        if type(op) not in _RELATIONS:
            self.problem(
                "PYF402", f"unsupported-comparison:{type(op).__name__}",
                f"comparison {type(op).__name__} at line {node.lineno}; "
                "only < <= > >= == != lower",
            )

    def condition(self, node: ast.expr) -> None:
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self.condition(value)
        elif isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            self.condition(node.operand)
        elif isinstance(node, ast.Compare):
            self.int_expr(node.left)
            for op, comparator in zip(node.ops, node.comparators):
                self.relation(op, node)
                self.int_expr(comparator)
        else:
            self.int_expr(node)  # int truthiness: lowered as  != 0

    # -- loop-variable escape checks (see module docstring) ------------
    def check_loop_targets(self) -> None:
        loops = [
            child
            for child in ast.walk(self.node)
            if isinstance(child, ast.For) and isinstance(child.target, ast.Name)
        ]
        # Name nodes inside the *body* of a loop over each variable: reads
        # there see that loop's fresh per-iteration binding, so a later
        # same-named loop "shields" reads inside its own body
        shielded: Dict[str, set] = {}
        for loop in loops:
            ids = shielded.setdefault(loop.target.id, set())
            for body_stmt in loop.body:
                for child in ast.walk(body_stmt):
                    if isinstance(child, ast.Name):
                        ids.add(id(child))
        for loop in loops:
            var = loop.target.id
            subtree = {
                id(child)
                for child in ast.walk(loop)
                if isinstance(child, ast.Name)
            }
            end = (loop.end_lineno or loop.lineno, loop.end_col_offset or 0)
            is_range = _range_call(loop.iter) is not None
            for child in ast.walk(self.node):
                if not isinstance(child, ast.Name) or child.id != var:
                    continue
                if isinstance(child.ctx, ast.Store):
                    if id(child) in subtree and child is not loop.target:
                        self.problem(
                            "PYF405", "loop-variable-reassigned",
                            f"loop variable {var!r} is reassigned inside "
                            f"its loop (line {child.lineno}); the counted "
                            "shape would diverge from CPython",
                        )
                elif is_range and id(child) not in subtree:
                    position = (child.lineno, child.col_offset)
                    if position > end and id(child) not in shielded.get(var, ()):
                        self.problem(
                            "PYF405", "loop-variable-read-after-loop",
                            f"loop variable {var!r} is read after its loop "
                            f"(line {child.lineno}); its post-loop value "
                            "differs from CPython's",
                        )


def _range_call(node: ast.AST) -> Optional[ast.Call]:
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "range"
        and not node.keywords
        and 1 <= len(node.args) <= 3
    ):
        return node
    return None


def _assert_bound(
    test: ast.expr, kinds: Kinds
) -> Optional[Tuple[str, str, int, bool]]:
    """Decode ``assert`` shapes into ``(name, relation, bound, is_len)``.

    Supported: ``name <op> literal``, ``literal <op> name``,
    ``len(a) <op> literal``, ``literal <op> len(a)`` with a relational
    ``<op>`` the range analysis consumes.  Returns None otherwise.
    """
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return None
    op = type(test.ops[0])
    if op not in _RELATIONS:
        return None
    relation = _RELATIONS[op][0]
    if relation not in _ASSUMABLE:
        return None
    left, right = test.left, test.comparators[0]
    flipped = False
    if _const_int(left) is not None:
        left, right = right, left
        flipped = True
    bound = _const_int(right)
    if bound is None:
        return None
    if flipped:
        relation = _ASSUMABLE[relation]
    array = _len_call(left)
    if array is not None:
        return (array, relation, bound, True)
    if isinstance(left, ast.Name) and not kinds.is_list(left.id):
        return (left.id, relation, bound, False)
    return None


# ----------------------------------------------------------------------
# lowering
# ----------------------------------------------------------------------
class _PyLowerer:
    """AST -> named IR for one pre-validated function."""

    def __init__(self, node: ast.FunctionDef, kinds: Kinds, name: str):
        self.node = node
        self.kinds = kinds
        params: List[str] = []
        arrays: List[str] = []
        for arg in _all_args(node):
            if kinds.is_list(arg.arg):
                arrays.append(arg.arg)
                params.append(arg.arg + LEN_SUFFIX)
            else:
                params.append(arg.arg)
        self.function = Function(name, params=params, arrays=arrays)
        for array in arrays:
            self.function.array_extents[array] = [array + LEN_SUFFIX]
            self.function.assumptions.append((array + LEN_SUFFIX, ">=", 0))
        self.current: BasicBlock = self.function.add_block("entry")
        self.temp_counter = 0
        self.exit_stack: List[str] = []
        self.continue_stack: List[str] = []

    # -- plumbing ------------------------------------------------------
    def temp(self) -> str:
        self.temp_counter += 1
        return f"$t{self.temp_counter}"

    def new_block(self, hint: str) -> BasicBlock:
        return self.function.add_block(self.function.fresh_label(hint))

    def set_current(self, block: BasicBlock) -> None:
        self.current = block

    def loop_header(self, lineno: int) -> BasicBlock:
        # line-numbered headers phrase findings like the paper phrases
        # classifications: "(L12, 0, 1)" points at the source line
        return self.function.add_block(self.function.fresh_label(f"L{lineno}"))

    # -- expressions ---------------------------------------------------
    def lower_expr(self, node: ast.expr, target: Optional[str] = None) -> Value:
        constant = _const_int(node)
        if constant is None and isinstance(node, ast.Constant):
            if type(node.value) is bool:
                constant = int(node.value)
        if constant is not None:
            return self.place(Const(constant), target)
        if isinstance(node, ast.Name):
            return self.place(Ref(node.id), target)
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            operand = self.lower_expr(node.operand)
            if isinstance(node.op, ast.UAdd):
                return self.place(operand, target)
            result = target if target is not None else self.temp()
            self.current.append(UnOp(result, operand))
            return Ref(result)
        if isinstance(node, ast.BinOp):
            lhs = self.lower_expr(node.left)
            rhs = self.lower_expr(node.right)
            if isinstance(node.op, ast.FloorDiv):
                return self.floor_div(lhs, rhs, target)
            if isinstance(node.op, ast.Mod):
                return self.floor_mod(lhs, rhs, target)
            result = target if target is not None else self.temp()
            self.current.append(BinOp(result, _BINOPS[type(node.op)], lhs, rhs))
            return Ref(result)
        if isinstance(node, ast.Subscript):
            array = node.value.id  # validated: Name of list kind
            index = self.lower_index(node.slice, array)
            result = target if target is not None else self.temp()
            self.current.append(Load(result, array, [index]))
            return Ref(result)
        if isinstance(node, ast.Call):
            array = _len_call(node)
            if array is not None:
                return self.place(Ref(array + LEN_SUFFIX), target)
            raise _Unsupported(_describe(node))
        if isinstance(node, ast.Compare) and len(node.ops) == 1:
            lhs = self.lower_expr(node.left)
            rhs = self.lower_expr(node.comparators[0])
            relation = _RELATIONS[type(node.ops[0])][1]
            result = target if target is not None else self.temp()
            self.current.append(Compare(result, relation, lhs, rhs))
            return Ref(result)
        raise _Unsupported(_describe(node))

    def place(self, value: Value, target: Optional[str]) -> Value:
        if target is None:
            return value
        self.current.append(Assign(target, value))
        return Ref(target)

    def lower_index(self, node: ast.expr, array: str) -> Value:
        constant = _const_int(node)
        if constant is not None and constant < 0:
            # a[-k]  ->  a[a$len - k]  (CPython raises for len(a) < k,
            # where the oracle skips the input)
            result = self.temp()
            self.current.append(
                BinOp(result, BinaryOp.SUB, Ref(array + LEN_SUFFIX), Const(-constant))
            )
            return Ref(result)
        return self.lower_expr(node)

    def floor_div(self, lhs: Value, rhs: Value, target: Optional[str] = None) -> Value:
        """Branch-free CPython floor division from truncating ``DIV``.

        ``q0 = trunc(a/b)``; the quotient needs one correction step when
        the division was inexact *and* the signs differ:
        ``a // b == q0 - (a - q0*b != 0) * ((a < 0) != (b < 0))``.
        """
        q0 = self.temp()
        self.current.append(BinOp(q0, BinaryOp.DIV, lhs, rhs))
        back = self.temp()
        self.current.append(BinOp(back, BinaryOp.MUL, Ref(q0), rhs))
        remainder = self.temp()
        self.current.append(BinOp(remainder, BinaryOp.SUB, lhs, Ref(back)))
        inexact = self.temp()
        self.current.append(Compare(inexact, Relation.NE, Ref(remainder), Const(0)))
        lhs_neg = self.temp()
        self.current.append(Compare(lhs_neg, Relation.LT, lhs, Const(0)))
        rhs_neg = self.temp()
        self.current.append(Compare(rhs_neg, Relation.LT, rhs, Const(0)))
        signs_differ = self.temp()
        self.current.append(
            Compare(signs_differ, Relation.NE, Ref(lhs_neg), Ref(rhs_neg))
        )
        correction = self.temp()
        self.current.append(
            BinOp(correction, BinaryOp.MUL, Ref(inexact), Ref(signs_differ))
        )
        result = target if target is not None else self.temp()
        self.current.append(BinOp(result, BinaryOp.SUB, Ref(q0), Ref(correction)))
        return Ref(result)

    def floor_mod(self, lhs: Value, rhs: Value, target: Optional[str] = None) -> Value:
        """CPython ``%`` (sign follows the divisor): ``a - (a // b) * b``."""
        quotient = self.floor_div(lhs, rhs)
        back = self.temp()
        self.current.append(BinOp(back, BinaryOp.MUL, quotient, rhs))
        result = target if target is not None else self.temp()
        self.current.append(BinOp(result, BinaryOp.SUB, lhs, Ref(back)))
        return Ref(result)

    # -- conditions (short-circuit) ------------------------------------
    def lower_condition(
        self, node: ast.expr, true_label: str, false_label: str
    ) -> None:
        if isinstance(node, ast.BoolOp):
            values = list(node.values)
            if isinstance(node.op, ast.And):
                for value in values[:-1]:
                    step = self.new_block("and")
                    self.lower_condition(value, step.label, false_label)
                    self.set_current(step)
            else:
                for value in values[:-1]:
                    step = self.new_block("or")
                    self.lower_condition(value, true_label, step.label)
                    self.set_current(step)
            self.lower_condition(values[-1], true_label, false_label)
            return
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            self.lower_condition(node.operand, false_label, true_label)
            return
        if isinstance(node, ast.Compare):
            left = self.lower_expr(node.left)
            pairs = list(zip(node.ops, node.comparators))
            for position, (op, comparator) in enumerate(pairs):
                right = self.lower_expr(comparator)
                flag = self.temp()
                self.current.append(
                    Compare(flag, _RELATIONS[type(op)][1], left, right)
                )
                if position == len(pairs) - 1:
                    self.current.terminator = Branch(
                        Ref(flag), true_label, false_label
                    )
                else:
                    step = self.new_block("and")
                    self.current.terminator = Branch(
                        Ref(flag), step.label, false_label
                    )
                    self.set_current(step)
                    left = right
            return
        constant = _const_int(node)
        if constant is None and isinstance(node, ast.Constant):
            constant = int(bool(node.value)) if type(node.value) is bool else None
        if constant is not None:
            # e.g. "while True:" -- an unconditional edge, not a Compare,
            # so the loop lowers to the paper's loop/endloop shape
            self.current.terminator = Jump(
                true_label if constant else false_label
            )
            return
        value = self.lower_expr(node)
        flag = self.temp()
        self.current.append(Compare(flag, Relation.NE, value, Const(0)))
        self.current.terminator = Branch(Ref(flag), true_label, false_label)

    # -- statements ----------------------------------------------------
    def lower_body(self, statements: Sequence[ast.stmt]) -> None:
        for statement in statements:
            self.lower_statement(statement)

    def lower_statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Return):
            value = None if _is_none(stmt.value) else self.lower_expr(stmt.value)
            self.current.terminator = Return(value)
            self.set_current(self.new_block("dead"))
        elif isinstance(stmt, ast.Assign):
            self.lower_assign(stmt.targets, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.lower_assign([stmt.target], stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self.lower_augassign(stmt)
        elif isinstance(stmt, ast.If):
            self.lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self.lower_while(stmt)
        elif isinstance(stmt, ast.For):
            self.lower_for(stmt)
        elif isinstance(stmt, ast.Break):
            self.current.terminator = Jump(self.exit_stack[-1])
            self.set_current(self.new_block("dead"))
        elif isinstance(stmt, ast.Continue):
            self.current.terminator = Jump(self.continue_stack[-1])
            self.set_current(self.new_block("dead"))
        elif isinstance(stmt, ast.Assert):
            self.lower_assert(stmt)
        elif isinstance(stmt, (ast.Pass, ast.Expr)):
            pass  # docstrings / constant expression statements
        else:
            raise _Unsupported(_describe(stmt))

    def lower_assign(self, targets: Sequence[ast.expr], value: ast.expr) -> None:
        if len(targets) == 1 and isinstance(targets[0], ast.Name):
            self.lower_expr(value, target=targets[0].id)
            return
        lowered = self.lower_expr(value)
        for target in targets:
            if isinstance(target, ast.Name):
                self.current.append(Assign(target.id, lowered))
            else:  # validated: Subscript of a list name
                array = target.value.id
                index = self.lower_index(target.slice, array)
                self.current.append(Store(array, [index], lowered))

    def lower_augassign(self, stmt: ast.AugAssign) -> None:
        op = type(stmt.op)
        if isinstance(stmt.target, ast.Name):
            name = stmt.target.id
            rhs = self.lower_expr(stmt.value)
            self.apply_binop(op, Ref(name), rhs, target=name)
            return
        array = stmt.target.value.id
        index = self.lower_index(stmt.target.slice, array)
        loaded = self.temp()
        self.current.append(Load(loaded, array, [index]))
        rhs = self.lower_expr(stmt.value)
        result = self.apply_binop(op, Ref(loaded), rhs)
        self.current.append(Store(array, [index], result))

    def apply_binop(
        self, op: type, lhs: Value, rhs: Value, target: Optional[str] = None
    ) -> Value:
        if op is ast.FloorDiv:
            return self.floor_div(lhs, rhs, target)
        if op is ast.Mod:
            return self.floor_mod(lhs, rhs, target)
        result = target if target is not None else self.temp()
        self.current.append(BinOp(result, _BINOPS[op], lhs, rhs))
        return Ref(result)

    def lower_assert(self, stmt: ast.Assert) -> None:
        decoded = _assert_bound(stmt.test, self.kinds)
        if decoded is None:
            return  # validator recorded the PYF407 note
        name, relation, bound, is_len = decoded
        if is_len:
            if relation == "==" and bound >= 0:
                # a concrete extent: RNG601/RNG602 can prove bounds on it
                self.function.array_extents[name] = [bound]
            self.function.assumptions.append((name + LEN_SUFFIX, relation, bound))
        else:
            self.function.assumptions.append((name, relation, bound))

    def lower_if(self, stmt: ast.If) -> None:
        then_block = self.new_block("then")
        join_block = self.new_block("endif")
        if stmt.orelse:
            else_block = self.new_block("else")
            self.lower_condition(stmt.test, then_block.label, else_block.label)
            self.set_current(else_block)
            self.lower_body(stmt.orelse)
            self.current.terminator = Jump(join_block.label)
        else:
            self.lower_condition(stmt.test, then_block.label, join_block.label)
        self.set_current(then_block)
        self.lower_body(stmt.body)
        self.current.terminator = Jump(join_block.label)
        self.set_current(join_block)

    def lower_while(self, stmt: ast.While) -> None:
        header = self.loop_header(stmt.lineno)
        body_block = self.new_block(f"{header.label}.body")
        exit_block = self.new_block(f"{header.label}.exit")
        self.current.terminator = Jump(header.label)
        self.set_current(header)
        self.lower_condition(stmt.test, body_block.label, exit_block.label)
        self.set_current(body_block)
        self.exit_stack.append(exit_block.label)
        self.continue_stack.append(header.label)
        self.lower_body(stmt.body)
        self.continue_stack.pop()
        self.exit_stack.pop()
        self.current.terminator = Jump(header.label)
        self.set_current(exit_block)

    def lower_for(self, stmt: ast.For) -> None:
        var = stmt.target.id
        call = _range_call(stmt.iter)
        if call is not None:
            args = call.args
            if len(args) == 1:
                start: ast.expr = ast.Constant(value=0)
                stop = args[0]
            else:
                start, stop = args[0], args[1]
            step = _const_int(args[2]) if len(args) == 3 else 1
            self.lower_expr(start, target=var)
            limit = self.once(self.lower_expr(stop))
            counter = var
        else:
            array = stmt.iter.id  # validated: a list parameter
            counter = self.temp()
            self.current.append(Assign(counter, Const(0)))
            limit = Ref(array + LEN_SUFFIX)
            step = 1

        header = self.loop_header(stmt.lineno)
        body_block = self.new_block(f"{header.label}.body")
        latch_block = self.new_block(f"{header.label}.latch")
        exit_block = self.new_block(f"{header.label}.exit")

        self.current.terminator = Jump(header.label)
        self.set_current(header)
        relation = Relation.LT if step > 0 else Relation.GT
        flag = self.temp()
        self.current.append(Compare(flag, relation, Ref(counter), limit))
        self.current.terminator = Branch(
            Ref(flag), body_block.label, exit_block.label
        )

        self.set_current(body_block)
        if call is None:
            self.current.append(Load(var, stmt.iter.id, [Ref(counter)]))
        self.exit_stack.append(exit_block.label)
        self.continue_stack.append(latch_block.label)
        self.lower_body(stmt.body)
        self.continue_stack.pop()
        self.exit_stack.pop()
        self.current.terminator = Jump(latch_block.label)

        self.set_current(latch_block)
        latch_block.append(BinOp(counter, BinaryOp.ADD, Ref(counter), Const(step)))
        latch_block.terminator = Jump(header.label)

        self.set_current(exit_block)

    def once(self, value: Value) -> Value:
        """Copy a bare name into a temp: range() bounds evaluate once."""
        if isinstance(value, Ref) and not value.name.startswith("$"):
            fresh = self.temp()
            self.current.append(Assign(fresh, value))
            return Ref(fresh)
        return value

    # -- entry ---------------------------------------------------------
    def lower(self) -> Function:
        self.lower_body(self.node.body)
        for block in self.function:
            if block.terminator is None:
                block.terminator = Return()
        from repro.ir.verify import verify_function

        verify_function(self.function, ssa=False)
        return self.function


def _all_args(node: ast.FunctionDef) -> List[ast.arg]:
    args = node.args
    return list(getattr(args, "posonlyargs", ())) + list(args.args)


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------
def compile_function(
    node: ast.FunctionDef, qualname: str, origin: str
) -> CompiledFunction:
    """Compile one ``ast.FunctionDef``; degrades instead of raising."""
    scope = qualname
    where = f"{origin}:{node.lineno}"
    try:
        source = ast.unparse(node)
    except Exception:  # noqa: BLE001 - unparse is best-effort metadata
        source = None
    kinds = infer_kinds(node)
    params = [(arg.arg, kinds.kind_of(arg.arg)) for arg in _all_args(node)]
    compiled = CompiledFunction(
        qualname=qualname,
        origin=where,
        lineno=node.lineno,
        params=params,
        source=source,
    )
    try:
        records = _Validator(node, kinds, scope).run()
    except Exception as error:  # noqa: BLE001 - total-ingestion contract
        compiled.degradations.append(
            _record(
                "PYF401", "internal-error",
                f"validation failed: {type(error).__name__}: {error}", scope,
            )
        )
        return compiled
    compiled.degradations.extend(records)
    if any(entry.diag_code != "PYF407" for entry in records):
        return compiled
    try:
        compiled.function = _PyLowerer(node, kinds, node.name).lower()
    except Exception as error:  # noqa: BLE001 - total-ingestion contract
        compiled.function = None
        compiled.degradations.append(
            _record(
                "PYF401", "internal-error",
                f"lowering failed: {type(error).__name__}: {error}", scope,
            )
        )
    return compiled


@traced("pyfront.lower")
def compile_module(source: str, origin: str = "<python>") -> ModuleCompilation:
    """Compile every function of one Python source text.

    Never raises: an unparseable file yields a ``PYF406`` record, and
    each function degrades independently.
    """
    try:
        tree = ast.parse(source)
    except (SyntaxError, ValueError) as error:
        return ModuleCompilation(
            origin=origin,
            error=DegradationRecord(
                phase="pyfront.parse",
                code="syntax-error",
                message=f"{origin}: {error}",
                diag_code="PYF406",
                scope=origin,
                action="skipped",
            ),
        )
    out = ModuleCompilation(origin=origin)
    for qualname, node in _function_defs(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            out.functions.append(
                CompiledFunction(
                    qualname=qualname,
                    origin=f"{origin}:{node.lineno}",
                    lineno=node.lineno,
                    degradations=[
                        _record(
                            "PYF401", "async-function",
                            f"async function {qualname!r} is not lowered",
                            qualname,
                        )
                    ],
                )
            )
            continue
        out.functions.append(compile_function(node, qualname, origin))
    return out


def _function_defs(tree: ast.Module) -> List[Tuple[str, ast.AST]]:
    """Every (qualname, def) in the module, in source order."""
    found: List[Tuple[str, ast.AST]] = []

    def walk(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                found.append((prefix + child.name, child))
                walk(child, prefix + child.name + ".")
            elif isinstance(child, ast.ClassDef):
                walk(child, prefix + child.name + ".")
            else:
                walk(child, prefix)

    walk(tree, "")
    found.sort(key=lambda item: item[1].lineno)
    return found
