"""Usage-based kind inference for the real-Python frontend.

The IR models exactly two kinds of value: int scalars and arrays of
ints.  A real Python function gets to play only if every name it touches
fits one of those: parameters and locals used in arithmetic, compares,
``range()`` arguments, or subscript *indices* are ``int``; names that
are subscripted, iterated over, or passed to ``len()`` are ``list``.
A name used both ways (or a list that is *assigned*, i.e. created
locally) is a kind conflict -- the function degrades with ``PYF404``
instead of guessing.

The inference is deliberately syntactic: two linear passes over the
``ast``, no dataflow.  That matches the frontend's contract -- it must
never be *wrong silently*; when in doubt it reports a conflict and the
function degrades.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

INT = "int"
LIST = "list"

__all__ = ["INT", "LIST", "Kinds", "infer_kinds"]


@dataclass
class Kinds:
    """The inferred kind of every name a function touches."""

    #: name -> ``"int"`` | ``"list"`` (conflicted names stay ``"list"``)
    kinds: Dict[str, str] = field(default_factory=dict)
    #: ``(name, why-int, why-list)`` for every name used both ways
    conflicts: List[Tuple[str, str, str]] = field(default_factory=list)
    #: every name written anywhere (Store context, incl. for-targets)
    assigned: Set[str] = field(default_factory=set)

    def kind_of(self, name: str) -> str:
        return self.kinds.get(name, INT)

    def is_list(self, name: str) -> bool:
        return self.kinds.get(name) == LIST


def infer_kinds(node: ast.FunctionDef) -> Kinds:
    """Infer the kind of every name in one function body."""
    int_uses: Dict[str, str] = {}
    list_uses: Dict[str, str] = {}
    assigned: Set[str] = set()
    # Name nodes claimed by a list-position or call-callee pattern; the
    # generic pass below must not double-count them as int uses
    claimed: Set[int] = set()

    def list_use(name_node: ast.Name, why: str) -> None:
        list_uses.setdefault(name_node.id, why)
        claimed.add(id(name_node))

    # pass 1: structural list positions
    for child in ast.walk(node):
        if isinstance(child, ast.Subscript) and isinstance(child.value, ast.Name):
            list_use(child.value, "subscripted")
        elif isinstance(child, ast.Call):
            if isinstance(child.func, ast.Name):
                claimed.add(id(child.func))  # callee, not a value use
                if (
                    child.func.id == "len"
                    and len(child.args) == 1
                    and isinstance(child.args[0], ast.Name)
                ):
                    list_use(child.args[0], "passed to len()")
        elif isinstance(child, ast.For) and isinstance(child.iter, ast.Name):
            list_use(child.iter, "iterated over")

    # pass 2: every remaining name is an int position
    for child in ast.walk(node):
        if not isinstance(child, ast.Name):
            continue
        if isinstance(child.ctx, ast.Store):
            assigned.add(child.id)
            if id(child) not in claimed:
                int_uses.setdefault(child.id, "assigned")
        elif id(child) not in claimed:
            int_uses.setdefault(child.id, "used as an integer")

    kinds: Dict[str, str] = {}
    conflicts: List[Tuple[str, str, str]] = []
    for name in sorted(set(int_uses) | set(list_uses)):
        if name in list_uses:
            kinds[name] = LIST
            if name in int_uses:
                conflicts.append((name, int_uses[name], list_uses[name]))
        else:
            kinds[name] = INT
    for arg in _all_args(node):
        kinds.setdefault(arg.arg, INT)
    return Kinds(kinds=kinds, conflicts=conflicts, assigned=assigned)


def _all_args(node: ast.FunctionDef) -> List[ast.arg]:
    args = node.args
    return list(getattr(args, "posonlyargs", ())) + list(args.args)
