"""Symbolic value-range analysis over the classification lattice.

The classifier (section 4) turns SSA values into *facts*: a linear IV
with a known trip count has an exact value range, a monotonic variable
has a one-sided bound, a periodic variable takes finitely many values.
This package makes those facts queryable:

* :mod:`repro.ranges.interval` -- the shared interval algebra (exact
  :class:`~fractions.Fraction` endpoints, a proper :class:`Bound` type
  for the infinities) used both here and by the Banerjee bound tester;
* :mod:`repro.ranges.analysis` -- :func:`compute_ranges`, mapping every
  classified SSA value to an interval and propagating through operator
  nodes to a fixpoint;
* :mod:`repro.ranges.checks` -- the ``RNG6xx`` checker suite (subscript
  bounds, division by zero, empty loops, dead branches).

The analysis is *optional and isolated*: ``analyze(..., ranges=True)``
runs it behind a resilience boundary (fault point ``ranges.compute``);
on failure every query degrades to the full interval.
"""

from repro.ranges.analysis import RangeInfo, compute_ranges
from repro.ranges.checks import check_ranges
from repro.ranges.interval import NEG_INF, POS_INF, Bound, Interval

__all__ = [
    "Bound",
    "Interval",
    "NEG_INF",
    "POS_INF",
    "RangeInfo",
    "check_ranges",
    "compute_ranges",
]
