"""Value-range analysis over the classification lattice.

Every classified SSA value already *is* a range fact (section 4's whole
point): an ``Invariant(e)`` is the point ``[e, e]``; a linear IV with a
known trip count spans exactly ``[init, init + step*(n-1)]`` (sign
aware); polynomial and geometric IVs are bounded by endpoint plus
interior-extremum evaluation over ``h in [0, n-1]``; a monotonic
variable is half-bounded from its initial value; wrap-around and
periodic variables take finitely many values; ``Unknown`` is the full
interval.  :func:`compute_ranges` seeds every name from its class, then
propagates through the operator nodes (phi = union, arithmetic =
interval algebra, compare = ``[0, 1]``) to a decreasing fixpoint --
operator information only ever *intersects* what the lattice already
proved, so each step stays a sound over-approximation.

Parameter facts come from source-level ``assume`` declarations
(:attr:`~repro.ir.function.Function.assumptions`); trip-count ranges are
derived per loop from its :class:`~repro.core.tripcount.TripCount`, so a
symbolic count like ``n`` with ``assume n <= 50`` yields the finite trip
bound the Banerjee tester needs.

The operator fixpoint runs on a **def-use worklist** seeded in
topological (block) order: an instruction re-runs its transfer function
only when an operand's interval actually narrowed, so the cost is
proportional to the narrowings that happen rather than to
``passes * instructions``.  The result is the unique greatest fixpoint
below the seed (every transfer function is monotone and intersection
only descends), bit-identical to the old whole-function re-sweep
retained as :func:`_fixpoint_resweep` for the equivalence tests.

Everything degrades safely: an unknown symbol, an unevaluable closed
form, or an injected fault (point ``ranges.compute``) answers the full
interval and analysis continues.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.core.classes import (
    BranchDependent,
    Classification,
    InductionVariable,
    Invariant,
    Monotonic,
    Periodic,
    Unknown,
    WrapAround,
)
from repro.core.driver import AnalysisResult
from repro.core.tripcount import TripCount, TripCountKind
from repro.ir.function import Function
from repro.ir.instructions import Assign, BinOp, Compare, Instruction, Load, Phi, UnOp
from repro.ir.opcodes import BinaryOp, Relation
from repro.ir.values import Const, Ref, Value
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.ranges import interval as _interval
from repro.ranges.interval import NEG_INF, POS_INF, Bound, Finite, Interval
from repro.ranges.interval import _canonical as _num
from repro.resilience.faultinject import fault_point
from repro.symbolic.closedform import ClosedForm, ClosedFormError
from repro.symbolic.expr import Expr

TOP = Interval.top()
_ONE = Interval.point(1)

#: fixpoint pass cap of the reference re-sweep (:func:`_fixpoint_resweep`)
MAX_PASSES = 8
#: largest finite iteration span enumerated exactly for closed forms
MAX_ENUM = 64
#: largest exponent interval-powered before giving up
MAX_POWER = 16


@dataclass
class RangeInfo:
    """Queryable result of one value-range analysis.

    ``values`` maps SSA names (and parameters) to intervals; ``trips``
    maps loop headers to trip-*count* intervals.  Missing entries -- and
    everything on a ``degraded`` instance -- answer the full interval,
    which is the safe default the resilience boundary degrades to.
    """

    function: str = ""
    values: Dict[str, Interval] = field(default_factory=dict)
    trips: Dict[str, Interval] = field(default_factory=dict)
    degraded: bool = False
    #: worklist statistics of the run that produced this info (exported
    #: as the ``ranges.fixpoint.*`` metrics)
    fixpoint_visits: int = 0
    fixpoint_narrowed: int = 0
    fixpoint_insts: int = 0

    def range_of(self, name: str) -> Interval:
        return self.values.get(name, TOP)

    def value_interval(self, value: Value) -> Interval:
        """Range of an IR operand (constants are points)."""
        if isinstance(value, Const):
            return Interval.point(value.value)
        if isinstance(value, Ref):
            return self.values.get(value.name, TOP)
        return TOP

    def trip_range(self, header: str) -> Interval:
        return self.trips.get(header, Interval.at_least(0))

    def trip_upper_bound(self, header: str) -> Optional[int]:
        """Largest possible trip count of ``header``, or None if unbounded.

        This is what tightens the Banerjee tests: iteration variables
        range over ``[0, bound - 1]``, and any upper bound on the trip
        count is sound there.
        """
        upper = self.trip_range(header).int_upper()
        if upper is None:
            return None
        return max(upper, 0)

    def nontrivial(self) -> int:
        """How many tracked values have a better-than-full interval."""
        return sum(1 for iv in self.values.values() if not iv.is_top)

    @staticmethod
    def top_info(function: str = "", degraded: bool = True) -> "RangeInfo":
        """The all-top fallback used when the ranges phase degrades."""
        return RangeInfo(function=function, degraded=degraded)


# ----------------------------------------------------------------------
# assumptions and expression evaluation
# ----------------------------------------------------------------------
def assumption_env(function: Function) -> Dict[str, Interval]:
    """Intervals implied by the source's ``assume`` declarations."""
    env: Dict[str, Interval] = {}
    for name, relation, bound in getattr(function, "assumptions", ()):
        if relation == "<=":
            fact = Interval.at_most(bound)
        elif relation == "<":
            fact = Interval.at_most(bound - 1)
        elif relation == ">=":
            fact = Interval.at_least(bound)
        elif relation == ">":
            fact = Interval.at_least(bound + 1)
        elif relation == "==":
            fact = Interval.point(bound)
        else:
            continue
        env[name] = env.get(name, TOP).intersect(fact)
    return env


def _power(interval: Interval, exponent: int) -> Interval:
    if exponent == 1:
        return interval
    if exponent < 0 or exponent > MAX_POWER:
        return TOP
    out = _ONE
    for _ in range(exponent):
        out = out * interval
    if exponent and exponent % 2 == 0:
        # an even power is never negative, even when the base straddles 0
        out = out.intersect(_NONNEG)
    return out


_NONNEG = Interval.at_least(0)
_NONPOS = Interval.at_most(0)


def eval_expr(expr: Expr, env: Dict[str, Interval]) -> Interval:
    """Interval of ``expr`` under per-symbol intervals (unknown = full)."""
    total: Optional[Interval] = None
    for mono, coeff in expr.iter_terms():
        term = Interval.point(coeff)
        for symbol, exponent in mono:
            term = term * _power(env.get(symbol, TOP), exponent)
        total = term if total is None else total + term
    return total if total is not None else Interval.point(0)


# ----------------------------------------------------------------------
# trip-count ranges
# ----------------------------------------------------------------------
def trip_interval(
    trip: Optional[TripCount],
    env: Dict[str, Interval],
    result: Optional[AnalysisResult] = None,
) -> Interval:
    """Sound interval of a loop's dynamic trip count.

    The paper's formula clamps at zero (``tripcount = 0 if i <= 0``), so
    a symbolic count expression is an upper bound wherever non-negative:
    the true count always lies in ``[0, max(count, 0)]``.
    """
    if trip is None or trip.kind is TripCountKind.UNKNOWN:
        return Interval.at_least(0)
    if trip.kind is TripCountKind.ZERO:
        return Interval.point(0)
    if trip.kind is TripCountKind.INFINITE:
        return Interval.at_least(0)
    constant = trip.constant()
    if constant is not None:
        if trip.exact:
            return Interval.point(constant)
        return Interval(0, max(constant, 0))
    if trip.count is None:
        return Interval.at_least(0)
    count = eval_expr(trip.count, env)
    count = _refine_opaque_count(trip.count, count, env, result)
    if count.empty:
        return Interval.at_least(0)
    if trip.exact and count.int_lower() is not None and count.int_lower() >= 1:
        # the count expression is provably positive: it is exact
        return count.intersect(Interval.at_least(0))
    upper = count.int_upper()
    if upper is None:
        return Interval.at_least(0)
    return Interval(0, max(upper, 0))


def _refine_opaque_count(
    count: Expr,
    evaluated: Interval,
    env: Dict[str, Interval],
    result: Optional[AnalysisResult],
) -> Interval:
    """Bound an opaque ``$k = ceil(init / d)`` symbol through its definition."""
    if result is None or not evaluated.is_top:
        return evaluated
    symbols = count.free_symbols()
    if len(symbols) != 1:
        return evaluated
    definition = result.opaque_definitions.get(next(iter(symbols)))
    if not definition or definition[0] != "ceildiv":
        return evaluated
    _tag, init, divisor = definition
    inner = eval_expr(init, env)
    if inner.empty or divisor <= 0:
        return evaluated
    # ceil(x / d) lies within [x/d, x/d + 1)
    lo = (
        Bound.of(Fraction(inner.lo.value) / divisor)
        if inner.lo.is_finite
        else NEG_INF
    )
    hi = (
        Bound.of(Fraction(inner.hi.value) / divisor + 1)
        if inner.hi.is_finite
        else POS_INF
    )
    return Interval(lo, hi)


def _iteration_interval(trip: Interval) -> Interval:
    """``h in [0, trips - 1]`` for the iterations that actually execute."""
    upper = trip.int_upper()
    if upper is None:
        return Interval.at_least(0)
    return Interval(0, max(upper - 1, 0))


def _phi_iteration_interval(trip: Interval) -> Interval:
    """``h in [0, trips]``: header phis see one extra evaluation.

    The guarded header runs once more than the body -- the evaluation
    whose guard fails and exits the loop -- so a header phi's closed form
    must also cover ``h = trips`` (e.g. ``i`` reaches 11 leaving
    ``for i = 1 to 10``).
    """
    upper = trip.int_upper()
    if upper is None:
        return Interval.at_least(0)
    return Interval(0, max(upper, 0))


# ----------------------------------------------------------------------
# per-class intervals
# ----------------------------------------------------------------------
def class_interval(
    cls: Classification, h: Interval, env: Dict[str, Interval]
) -> Interval:
    """Interval of a classified value over the iteration space ``h``."""
    if isinstance(cls, Invariant):
        return eval_expr(cls.expr, env)
    if isinstance(cls, InductionVariable):
        return closedform_interval(cls.form, h, env)
    if isinstance(cls, WrapAround):
        out = class_interval(cls.inner, h, env)
        upper = h.int_upper()
        for index, pre in enumerate(cls.pre_values):
            if upper is not None and index > upper:
                break
            out = out.union(eval_expr(pre, env))
        return out
    if isinstance(cls, Periodic):
        out = Interval.empty_interval()
        for value in cls.values:
            out = out.union(eval_expr(value, env))
        return out if not out.empty else TOP
    if isinstance(cls, Monotonic):
        if cls.init is None:
            return TOP
        start = eval_expr(cls.init, env)
        if start.empty:
            return TOP
        if cls.direction > 0:
            return Interval(start.lo, POS_INF)
        return Interval(NEG_INF, start.hi)
    if isinstance(cls, BranchDependent):
        # after h full trips the value lies in ``init + h * [min, max]``
        # over the per-path step set: an affine hull for bounded h, a
        # half-line for one-signed steps, top only when nothing is known
        if cls.init is None:
            return TOP
        start = eval_expr(cls.init, env)
        if start.empty:
            return TOP
        step = Interval.empty_interval()
        for candidate in cls.steps:
            step = step.union(eval_expr(candidate, env))
        if step.empty:
            return TOP
        # every step's sign is part of the classification: fold it in even
        # when the step expressions themselves evaluate unbounded
        if cls.direction == 1:
            step = step.intersect(_NONNEG)
        elif cls.direction == -1:
            step = step.intersect(_NONPOS)
        return start + h * step
    return TOP  # Unknown and anything new


def closedform_interval(
    form: ClosedForm, h: Interval, env: Dict[str, Interval]
) -> Interval:
    """Interval of ``form(h)`` over an integer iteration interval."""
    lower = h.int_lower()
    upper = h.int_upper()

    # fast path: a constant-coefficient polynomial of degree <= 2 has an
    # exact hull from its endpoints (plus the interior vertex for the
    # quadratic) -- identical to the enumeration below, without the
    # MAX_ENUM per-point evaluations
    if not form.geo and len(form.coeffs) <= 3:
        constant = all(c.is_constant for c in form.coeffs)
        if constant and form.degree <= 1:
            c0 = _num(form.coeff(0).constant_value())
            c1 = _num(form.coeff(1).constant_value()) if form.degree == 1 else 0
            if c1 == 0:
                return Interval.point(c0)
            if lower is not None and upper is not None:
                return Interval.hull((c0 + c1 * lower, c0 + c1 * upper))
            return h.scale(c1) + Interval.point(c0)
        if constant and form.degree == 2 and lower is not None and upper is not None:
            return _quadratic_hull(form, lower, upper)

    if (
        lower is not None
        and upper is not None
        and upper - lower <= MAX_ENUM
    ):
        out = Interval.empty_interval()
        for point in range(lower, upper + 1):
            try:
                value = form.value_at(point)
            except ClosedFormError:
                out = None
                break
            out = out.union(eval_expr(value, env))
        if out is not None:
            return out if not out.empty else TOP

    if _is_constant_quadratic(form) and lower is not None and upper is not None:
        return _quadratic_hull(form, lower, upper)

    # general interval arithmetic over the polynomial + geometric parts
    # (constant coefficients scale directly -- no point-interval products)
    total = Interval.point(0)
    for power, coeff in enumerate(form.coeffs):
        if coeff.is_constant:
            total = total + _power(h, power).scale(coeff.constant_value())
        else:
            total = total + eval_expr(coeff, env) * _power(h, power)
    for base, coeff in form.geo.items():
        term = _geo_power(base, lower, upper)
        if coeff.is_constant:
            total = total + term.scale(coeff.constant_value())
        else:
            total = total + eval_expr(coeff, env) * term
    return total


def _is_constant_quadratic(form: ClosedForm) -> bool:
    return (
        not form.geo
        and form.degree == 2
        and all(c.is_constant for c in form.coeffs)
    )


def _quadratic_hull(form: ClosedForm, lower: int, upper: int) -> Interval:
    """Exact hull of a constant quadratic: endpoints + interior extremum.

    A quadratic over an integer interval attains its extrema at the
    endpoints or at the integers adjacent to the real vertex.
    """
    c0 = _num(form.coeff(0).constant_value())
    c1 = _num(form.coeff(1).constant_value())
    c2 = _num(form.coeff(2).constant_value())

    def value(h: int) -> Finite:
        return c0 + (c1 + c2 * h) * h

    points = {lower, upper}
    if c2 != 0:
        vertex = Fraction(-c1, 2 * c2) if type(c1) is int and type(c2) is int else -c1 / (2 * c2)
        for candidate in (int(vertex), int(vertex) + 1, int(vertex) - 1):
            if lower <= candidate <= upper:
                points.add(candidate)
    return Interval.hull(value(h) for h in points)


def _geo_power(base: int, lower: Optional[int], upper: Optional[int]) -> Interval:
    """Interval of ``base ** h`` for integer ``h`` in ``[lower, upper]``."""
    if lower is None:
        lower = 0
    lower = max(lower, 0)
    if base == 0:
        return Interval(0, 1)  # 0**0 == 1, 0**h == 0 afterwards
    if base >= 1:
        if upper is None:
            return Interval(base**lower, POS_INF) if base > 1 else Interval.point(1)
        return Interval(base**lower, base**upper)
    # negative base: alternating sign, magnitude bounded by |base|**upper
    if upper is None:
        return TOP
    magnitude = abs(base) ** upper
    return Interval(-magnitude, magnitude)


# ----------------------------------------------------------------------
# operator transfer functions
# ----------------------------------------------------------------------
def _div_interval(a: Interval, b: Interval) -> Interval:
    """Truncating integer division: ``trunc(a / b)``.

    Truncation moves toward zero, so the quotient always lies in the hull
    of the dividend's range and zero; a constant divisor gives the exact
    monotone image.
    """
    if a.empty or b.empty:
        return Interval.empty_interval()
    coarse = a.union(Interval.point(0))
    if b.is_point and b.lo.is_finite and b.lo.value != 0:
        divisor = b.lo.value
        lo = a.lo
        hi = a.hi
        if lo.is_finite and hi.is_finite:
            corners = [_trunc_div(lo.value, divisor), _trunc_div(hi.value, divisor)]
            return Interval(min(corners), max(corners))
    return coarse


def _trunc_div(a, b) -> int:
    """Exact ``trunc(a / b)`` without intermediate Fraction allocation."""
    if type(a) is int and type(b) is int:
        quotient = a // b
        if quotient < 0 and quotient * b != a:
            quotient += 1  # floor -> trunc for inexact negative quotients
        return quotient
    return int(Fraction(a) / b)  # int() truncates toward zero for Fractions


def _mod_interval(a: Interval, b: Interval) -> Interval:
    """Remainder with the dividend's sign (``|r| < |b|`` and ``|r| <= |a|``)."""
    if a.empty or b.empty:
        return Interval.empty_interval()
    out = a.union(Interval.point(0))
    if b.lo.is_finite and b.hi.is_finite:
        magnitude = max(abs(b.lo.value), abs(b.hi.value))
        if magnitude > 0:
            out = out.intersect(Interval(-(magnitude - 1), magnitude - 1))
    return out


_BOOL = Interval(0, 1)


def _compare_interval(relation: Relation, a: Interval, b: Interval) -> Interval:
    if a.empty or b.empty:
        return _BOOL
    definitely = _relation_definitely(relation, a, b)
    if definitely is True:
        return Interval.point(1)
    if definitely is False:
        return Interval.point(0)
    return _BOOL


def _relation_definitely(relation: Relation, a: Interval, b: Interval):
    """True/False when every value pair decides the relation; else None."""
    if relation is Relation.LT:
        if a.hi < b.lo:
            return True
        if a.lo >= b.hi:
            return False
    elif relation is Relation.LE:
        if a.hi <= b.lo:
            return True
        if a.lo > b.hi:
            return False
    elif relation is Relation.GT:
        return _relation_definitely(Relation.LT, b, a)
    elif relation is Relation.GE:
        return _relation_definitely(Relation.LE, b, a)
    elif relation is Relation.EQ:
        if a.is_point and b.is_point and a.lo == b.lo:
            return True
        if not a.intersects(b):
            return False
    elif relation is Relation.NE:
        inverse = _relation_definitely(Relation.EQ, a, b)
        if inverse is not None:
            return not inverse
    return None


def _transfer(inst: Instruction, info: RangeInfo) -> Optional[Interval]:
    value_of = info.value_interval
    if isinstance(inst, Assign):
        return value_of(inst.src)
    if isinstance(inst, UnOp):
        return -value_of(inst.operand)
    if isinstance(inst, BinOp):
        a = value_of(inst.lhs)
        b = value_of(inst.rhs)
        if inst.op is BinaryOp.ADD:
            return a + b
        if inst.op is BinaryOp.SUB:
            return a - b
        if inst.op is BinaryOp.MUL:
            return a * b
        if inst.op is BinaryOp.DIV:
            return _div_interval(a, b)
        if inst.op is BinaryOp.MOD:
            return _mod_interval(a, b)
        if inst.op is BinaryOp.EXP:
            if b.is_point and b.lo.is_finite:
                exponent = b.lo.value
                if exponent.denominator == 1 and 0 <= exponent <= MAX_POWER:
                    return _power(a, int(exponent))
            return TOP
        return TOP
    if isinstance(inst, Compare):
        return _compare_interval(inst.relation, value_of(inst.lhs), value_of(inst.rhs))
    if isinstance(inst, Phi):
        out = Interval.empty_interval()
        for value in inst.uses():
            out = out.union(value_of(value))
        return out if not out.empty else TOP
    if isinstance(inst, Load):
        return TOP
    return None


# ----------------------------------------------------------------------
# the driver
# ----------------------------------------------------------------------
def compute_ranges(result: AnalysisResult) -> RangeInfo:
    """Map every classified SSA value of ``result`` to a sound interval."""
    fault_point("ranges.compute")
    function = result.function
    registry = _metrics.active()
    cache_before = _interval_cache_totals() if registry is not None else None
    with _trace.span("ranges", function=function.name):
        info = _compute(function, result)
    if registry is not None:
        registry.inc("ranges.values", len(info.values))
        registry.inc("ranges.nontrivial", info.nontrivial())
        registry.inc("ranges.loops", len(info.trips))
        registry.inc(
            "ranges.trips.bounded",
            sum(1 for iv in info.trips.values() if iv.int_upper() is not None),
        )
        registry.inc("ranges.fixpoint.insts", info.fixpoint_insts)
        registry.inc("ranges.fixpoint.visits", info.fixpoint_visits)
        registry.inc("ranges.fixpoint.narrowed", info.fixpoint_narrowed)
        _record_interval_cache_delta(registry, cache_before)
    return info


def _interval_cache_totals() -> Dict[str, int]:
    """Flattened hit/miss totals of the interval memo tables (for deltas)."""
    stats = _interval.cache_stats()
    return {
        f"{table}.{kind}": stats[table][kind]
        for table in ("bound", "point")
        for kind in ("hits", "misses")
    }


def _record_interval_cache_delta(registry, before: Dict[str, int]) -> None:
    """Feed this run's interning hit/miss deltas into the metrics registry."""
    after = _interval_cache_totals()
    for key, value in after.items():
        registry.inc(f"interval.cache.{key}", value - before[key])
    stats = _interval.cache_stats()
    registry.set_gauge(
        "interval.cache.size", sum(stats[table]["size"] for table in stats)
    )


def _compute(function: Function, result: AnalysisResult) -> RangeInfo:
    """Seed from the classification lattice, then run the worklist fixpoint."""
    info = _seed(function, result)
    _fixpoint_worklist(function, info)
    return info


def _compute_resweep(function: Function, result: AnalysisResult) -> RangeInfo:
    """Reference implementation: seed, then the old whole-function re-sweep.

    Kept (not exported) purely so the equivalence tests can assert the
    worklist fixpoint is bit-identical to the historical behavior.
    """
    info = _seed(function, result)
    _fixpoint_resweep(function, info)
    return info


def _seed(function: Function, result: AnalysisResult) -> RangeInfo:
    info = RangeInfo(function=function.name, values=assumption_env(function))
    env = info.values

    # seed classification-derived ranges, outermost loops first: an inner
    # (symbolic) trip count mentions outer names whose ranges must exist
    for loop in reversed(list(result.nest.inner_to_outer())):
        summary = result.loops.get(loop.header)
        trip = trip_interval(
            summary.trip if summary is not None else None, env, result
        )
        info.trips[loop.header] = trip
        if summary is None:
            continue
        h = _iteration_interval(trip)
        h_phi = _phi_iteration_interval(trip)
        header = function.blocks.get(loop.header)
        phi_names = (
            {phi.result for phi in header.phis()} if header is not None else set()
        )
        for name, cls in summary.classifications.items():
            try:
                defining = result.defining_loop(name)
            except Exception:  # noqa: BLE001 - treat as not-in-a-loop
                defining = None
            if defining is not None and defining.header != loop.header:
                # an enclosing summary sees an inner loop's name only as
                # its exit value; the inner summary covers every value it
                # actually takes, so only that one may seed the range
                continue
            derived = class_interval(
                cls, h_phi if name in phi_names else h, env
            )
            env[name] = env.get(name, TOP).intersect(derived)
    return info


def _fixpoint_worklist(function: Function, info: RangeInfo) -> None:
    """Operator propagation on a def-use worklist (intersection only).

    Every result-producing instruction is queued once in topological
    (block) order; after that, an instruction re-enters the queue only
    when one of its operands' intervals actually narrowed.  Transfer
    functions are monotone and intersection only descends, so this
    converges to the unique greatest fixpoint below the seed -- the same
    intervals :func:`_fixpoint_resweep` computes, visiting a fraction of
    the instructions.
    """
    env = info.values
    insts: List[Instruction] = []
    for block in function:
        for inst in block:
            if inst.result is not None:
                insts.append(inst)
    users: Dict[str, List[int]] = {}
    for pos, inst in enumerate(insts):
        for value in inst.uses():
            if isinstance(value, Ref):
                users.setdefault(value.name, []).append(pos)

    count = len(insts)
    pending = deque(range(count))
    queued = bytearray(b"\x01") * count
    visits = narrowed = 0
    while pending:
        pos = pending.popleft()
        queued[pos] = 0
        inst = insts[pos]
        visits += 1
        derived = _transfer(inst, info)
        if derived is None:
            continue
        name = inst.result
        old = env.get(name, TOP)
        new = old.intersect(derived)
        if new is old or new == old:
            continue
        env[name] = new
        narrowed += 1
        for user in users.get(name, ()):
            if not queued[user]:
                queued[user] = 1
                pending.append(user)
    info.fixpoint_insts = count
    info.fixpoint_visits = visits
    info.fixpoint_narrowed = narrowed


def _fixpoint_resweep(function: Function, info: RangeInfo) -> None:
    """The historical intersect-only re-sweep (reference for equivalence)."""
    env = info.values
    for _ in range(MAX_PASSES):
        changed = False
        for block in function:
            for inst in block:
                if inst.result is None:
                    continue
                derived = _transfer(inst, info)
                if derived is None:
                    continue
                old = env.get(inst.result, TOP)
                new = old.intersect(derived)
                if new != old:
                    env[inst.result] = new
                    changed = True
        if not changed:
            break
