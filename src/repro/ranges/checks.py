"""The ``RNG6xx`` checker suite: safety facts read off value ranges.

Each check is a one-directional proof over the intervals produced by
:func:`repro.ranges.analysis.compute_ranges`:

* **RNG601** -- a subscript whose entire range misses every valid index
  (given the array's declared extent) is *provably* out of bounds;
* **RNG602** -- a subscript contained in ``[0, extent - 1]`` for every
  possible extent is provably in bounds (a note, useful as a receipt);
* **RNG603** -- a divisor whose range contains zero (but is not simply
  unknown) may divide by zero;
* **RNG604** -- a loop-carried self-update whose step is provably zero
  never changes the variable;
* **RNG605** -- a loop whose trip-count range excludes every positive
  count never runs its body;
* **RNG606** -- a conditional branch whose condition is a provable
  constant always (or never) takes its true edge.

Ranges are over-approximations, so the *negative* direction never fires
falsely: an interval that excludes all valid indices excludes all
*reachable* indices too.  A degraded (all-top) :class:`RangeInfo`
trivially proves nothing and the suite stays silent.
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro.core.driver import AnalysisResult
from repro.diagnostics.diagnostic import DiagnosticCollector
from repro.ir.instructions import Assign, BinOp, Branch, Load, Store
from repro.ir.opcodes import BinaryOp
from repro.ir.values import Const, Ref, Value
from repro.ranges.analysis import RangeInfo
from repro.ranges.interval import Interval

STAGE = "ranges"

_ZERO = Interval.point(0)


def check_ranges(
    result: AnalysisResult, info: RangeInfo, collector: DiagnosticCollector
) -> int:
    """Run the whole suite; returns how many diagnostics were emitted."""
    before = len(collector.diagnostics)
    function = result.function
    _check_subscripts(function, info, collector)
    _check_divisions(function, info, collector)
    _check_self_updates(result, info, collector)
    _check_empty_loops(result, info, collector)
    _check_branches(function, info, collector)
    return len(collector.diagnostics) - before


# ----------------------------------------------------------------------
# RNG601 / RNG602: subscript bounds
# ----------------------------------------------------------------------
def _extent_interval(
    extent: Union[int, str], info: RangeInfo
) -> Interval:
    if isinstance(extent, int):
        return Interval.point(extent)
    return info.range_of(extent)


def _check_subscripts(function, info: RangeInfo, collector) -> None:
    extents = getattr(function, "array_extents", {})
    if not extents:
        return
    for block in function:
        for inst in block:
            if isinstance(inst, (Load, Store)) and inst.indices is not None:
                declared = extents.get(inst.array)
                if declared is None:
                    continue
                _check_reference(inst, declared, block.label, info, collector)


def _check_reference(inst, declared, label: str, info: RangeInfo, collector) -> None:
    if len(inst.indices) != len(declared):
        return  # rank mismatch is the sanitizer's business, not ours
    proofs: List[str] = []
    for dim, (index, extent) in enumerate(zip(inst.indices, declared)):
        index_iv = info.value_interval(index)
        if index_iv.empty:
            continue  # dead code: no reachable index to judge
        extent_iv = _extent_interval(extent, info)
        # widest the valid region can be: [0, max-extent - 1]
        widest_hi = extent_iv.int_upper()
        if widest_hi is not None:
            widest = Interval(0, max(widest_hi - 1, -1))
            if not index_iv.intersects(widest.intersect(Interval.at_least(0))):
                collector.emit(
                    "RNG601",
                    f"subscript {dim + 1} of @{inst.array} is provably out of "
                    f"bounds: index range {index_iv} never meets valid "
                    f"indices [0, {extent} - 1]",
                    function=info.function,
                    block=label,
                    name=inst.result,
                    stage=STAGE,
                    hint="widen the array extent or fix the subscript",
                )
                return
        # narrowest the valid region can be: [0, min-extent - 1]
        narrow_hi = extent_iv.int_lower()
        if narrow_hi is not None and narrow_hi >= 1:
            narrowest = Interval(0, narrow_hi - 1)
            if narrowest.contains_interval(index_iv):
                proofs.append(f"dim {dim + 1} in [0, {extent} - 1]")
    if proofs and len(proofs) == len(declared):
        collector.emit(
            "RNG602",
            f"every subscript of @{inst.array} is provably in bounds "
            f"({'; '.join(proofs)})",
            function=info.function,
            block=label,
            name=inst.result,
            stage=STAGE,
        )


# ----------------------------------------------------------------------
# RNG603: division by zero
# ----------------------------------------------------------------------
def _check_divisions(function, info: RangeInfo, collector) -> None:
    for block in function:
        for inst in block:
            if (
                isinstance(inst, BinOp)
                and inst.op in (BinaryOp.DIV, BinaryOp.MOD)
                and not isinstance(inst.rhs, Const)
            ):
                divisor = info.value_interval(inst.rhs)
                if divisor.empty or divisor.is_top:
                    continue  # unknown divisors would make this pure noise
                if divisor.contains(0):
                    op = "division" if inst.op is BinaryOp.DIV else "modulo"
                    collector.emit(
                        "RNG603",
                        f"possible {op} by zero: divisor range {divisor} "
                        f"contains 0",
                        function=info.function,
                        block=block.label,
                        name=inst.result,
                        stage=STAGE,
                        hint="guard the division or assume the divisor's sign",
                    )


# ----------------------------------------------------------------------
# RNG604: zero-step self-update
# ----------------------------------------------------------------------
def _resolve_copy(name: str, function) -> Optional[str]:
    """Follow SSA copies back to the original defining name."""
    seen = set()
    while name not in seen:
        seen.add(name)
        site = function.def_site(name)
        if site is None:
            return name
        block, position = site
        inst = function.blocks[block].instructions[position]
        if isinstance(inst, Assign) and isinstance(inst.src, Ref):
            name = inst.src.name
            continue
        return name
    return name


def _check_self_updates(result: AnalysisResult, info: RangeInfo, collector) -> None:
    function = result.function
    for loop in result.nest.inner_to_outer():
        header = function.blocks.get(loop.header)
        if header is None:
            continue
        for phi in header.phis():
            for label, incoming in phi.incoming.items():
                if label not in loop.body or not isinstance(incoming, Ref):
                    continue
                step = _self_update_step(phi.result, incoming.name, function)
                if step is None:
                    continue
                if info.value_interval(step) == _ZERO:
                    collector.emit(
                        "RNG604",
                        f"self-update of %{phi.result} adds a provably zero "
                        f"step: the value never changes across iterations "
                        f"of {loop.header}",
                        function=info.function,
                        block=loop.header,
                        name=phi.result,
                        stage=STAGE,
                        hint="the loop-carried update is a no-op; was a "
                        "different step intended?",
                    )
                break


def _self_update_step(phi_name: str, carried: str, function) -> Optional[Value]:
    """The step operand of ``x = phi +- step`` (through copies), if any."""
    site = function.def_site(_resolve_copy(carried, function))
    if site is None:
        return None
    block, position = site
    inst = function.blocks[block].instructions[position]
    if not isinstance(inst, BinOp) or inst.op not in (BinaryOp.ADD, BinaryOp.SUB):
        return None
    lhs_is_phi = (
        isinstance(inst.lhs, Ref)
        and _resolve_copy(inst.lhs.name, function) == phi_name
    )
    rhs_is_phi = (
        isinstance(inst.rhs, Ref)
        and _resolve_copy(inst.rhs.name, function) == phi_name
    )
    if lhs_is_phi and not rhs_is_phi:
        return inst.rhs
    if rhs_is_phi and not lhs_is_phi and inst.op is BinaryOp.ADD:
        return inst.lhs
    return None


# ----------------------------------------------------------------------
# RNG605: provably-empty loops
# ----------------------------------------------------------------------
def _check_empty_loops(result: AnalysisResult, info: RangeInfo, collector) -> None:
    for header, trip in info.trips.items():
        upper = trip.int_upper()
        if upper is not None and upper < 1:
            collector.emit(
                "RNG605",
                f"loop {header} is provably empty: trip-count range {trip} "
                f"excludes every positive count",
                function=info.function,
                block=header,
                stage=STAGE,
                hint="the body never executes; check the loop bounds",
            )


# ----------------------------------------------------------------------
# RNG606: always/never-taken branches
# ----------------------------------------------------------------------
def _check_branches(function, info: RangeInfo, collector) -> None:
    for block in function:
        term = block.terminator
        if not isinstance(term, Branch) or term.true_target == term.false_target:
            continue
        cond = info.value_interval(term.cond)
        if not cond.is_point:
            continue
        if cond == Interval.point(1):
            verdict, dead = "always taken", term.false_target
        elif cond == _ZERO:
            verdict, dead = "never taken", term.true_target
        else:
            continue
        name = term.cond.name if isinstance(term.cond, Ref) else None
        collector.emit(
            "RNG606",
            f"branch condition in {block.label} is {verdict}: "
            f"{dead} is unreachable from here",
            function=info.function,
            block=block.label,
            name=name,
            stage=STAGE,
            hint="the condition's range is a single constant",
        )
