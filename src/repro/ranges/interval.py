"""The shared interval algebra: exact endpoints, typed infinities.

One implementation serves both consumers: the Banerjee bound tester
(:mod:`repro.dependence.banerjee`) and the value-range analysis
(:mod:`repro.ranges.analysis`).  Endpoints are exact -- a finite
:class:`Bound` wraps a plain :class:`int` when the value is integral and
only falls back to a :class:`~fractions.Fraction` for non-integral
values (the result of a division, an opaque ceil refinement); the
infinities are the module constants :data:`NEG_INF` and :data:`POS_INF`
rather than sentinel strings, so arithmetic and comparisons are total
and typed.

Because bounds and intervals are immutable values, the hot constructors
are **hash-consed** the same way :mod:`repro.symbolic.expr` interns its
expressions: small integer bounds and small integer point intervals are
interned, ``TOP`` and ``EMPTY`` are canonical singletons, and the
memo-table hit/miss tallies are served by :func:`cache_stats` (the
observability layer records per-``analyze`` deltas as the
``interval.cache.*`` metrics).  Interning is semantically invisible --
``==`` and ``hash`` are value-based, and :func:`set_interning` switches
it off so the equivalence tests can prove exactly that.

Multiplication uses the hull convention ``0 * inf = 0`` (sound for
interval products: the zero factor pins the result).  ``+inf + -inf``
is a programming error and raises.
"""

from __future__ import annotations

from fractions import Fraction
from math import ceil, floor
from typing import Dict, Iterable, Optional, Union

__all__ = [
    "Bound",
    "Interval",
    "NEG_INF",
    "POS_INF",
    "cache_stats",
    "reset_cache_stats",
    "set_interning",
]

Finite = Union[int, Fraction]


def _canonical(value: Finite) -> Finite:
    """Normalize integral Fractions to plain ints (the fast representation).

    ``Fraction(3) == 3`` and ``hash(Fraction(3)) == hash(3)``, so the
    collapse is invisible to equality, ordering and hashing -- it only
    makes the subsequent arithmetic int-speed.
    """
    if type(value) is int:
        return value
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return value.numerator
        return value
    if isinstance(value, int):  # bool and int subclasses
        return int(value)
    raise TypeError(f"bound value must be int or Fraction, got {type(value).__name__}")


class Bound:
    """One interval endpoint: a finite exact number or an infinity.

    ``infinite`` is -1 (negative infinity), 0 (finite, ``value`` valid)
    or +1 (positive infinity).  ``value`` is a plain :class:`int`
    whenever the bound is integral and a :class:`~fractions.Fraction`
    otherwise.
    """

    __slots__ = ("value", "infinite")

    def __init__(self, value: Finite = 0, infinite: int = 0):
        if infinite:
            self.value = 0
            self.infinite = infinite
        else:
            self.value = _canonical(value)
            self.infinite = 0

    @staticmethod
    def of(value: Union["Bound", Finite]) -> "Bound":
        if type(value) is int:
            if _INTERN_ENABLED:
                cached = _INT_BOUNDS.get(value)
                if cached is not None:
                    _STATS["bound_hits"] += 1
                    return cached
                _STATS["bound_misses"] += 1
            return Bound(value)
        if isinstance(value, Bound):
            return value
        return Bound(value)

    @property
    def is_finite(self) -> bool:
        return self.infinite == 0

    def _key(self):
        if self.infinite:
            return (self.infinite, 0)
        return (0, self.value)

    def __eq__(self, other) -> bool:
        if other is self:
            return True
        if isinstance(other, Bound):
            if self.infinite != other.infinite:
                return False
            return bool(self.infinite) or self.value == other.value
        if isinstance(other, (int, Fraction)):
            return self.infinite == 0 and self.value == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.infinite, self.value))

    def __lt__(self, other) -> bool:
        if not isinstance(other, Bound):
            other = Bound.of(other)
        if self.infinite or other.infinite:
            return self.infinite < other.infinite
        return self.value < other.value

    def __le__(self, other) -> bool:
        if not isinstance(other, Bound):
            other = Bound.of(other)
        if self.infinite or other.infinite:
            return self.infinite <= other.infinite
        return self.value <= other.value

    def __gt__(self, other) -> bool:
        if not isinstance(other, Bound):
            other = Bound.of(other)
        if self.infinite or other.infinite:
            return self.infinite > other.infinite
        return self.value > other.value

    def __ge__(self, other) -> bool:
        if not isinstance(other, Bound):
            other = Bound.of(other)
        if self.infinite or other.infinite:
            return self.infinite >= other.infinite
        return self.value >= other.value

    def __neg__(self) -> "Bound":
        if self.infinite:
            return NEG_INF if self.infinite > 0 else POS_INF
        return _bound(-self.value)

    def __add__(self, other: Union["Bound", Finite]) -> "Bound":
        if not isinstance(other, Bound):
            other = Bound.of(other)
        if self.infinite:
            if other.infinite and self.infinite != other.infinite:
                raise ValueError("indeterminate bound sum: +inf + -inf")
            return self
        if other.infinite:
            return other
        return _bound(self.value + other.value)

    def __sub__(self, other: Union["Bound", Finite]) -> "Bound":
        return self + (-Bound.of(other))

    def __mul__(self, other: Union["Bound", Finite]) -> "Bound":
        if not isinstance(other, Bound):
            other = Bound.of(other)
        if not self.infinite and not other.infinite:
            return _bound(self.value * other.value)
        # hull convention: a zero factor pins the product at zero
        if (self.is_finite and self.value == 0) or (
            other.is_finite and other.value == 0
        ):
            return _ZERO_BOUND
        sign_a = self.infinite or (1 if self.value > 0 else -1)
        sign_b = other.infinite or (1 if other.value > 0 else -1)
        return POS_INF if sign_a * sign_b > 0 else NEG_INF

    def floor_int(self) -> Optional[int]:
        """Largest integer <= this bound, or None when infinite."""
        if self.infinite:
            return None
        value = self.value
        return value if type(value) is int else floor(value)

    def ceil_int(self) -> Optional[int]:
        """Smallest integer >= this bound, or None when infinite."""
        if self.infinite:
            return None
        value = self.value
        return value if type(value) is int else ceil(value)

    def __repr__(self) -> str:
        if self.infinite > 0:
            return "+inf"
        if self.infinite < 0:
            return "-inf"
        return str(self.value)


#: the typed infinities (canonical singletons; the old string sentinels
#: are long gone)
NEG_INF = Bound(infinite=-1)
POS_INF = Bound(infinite=1)

#: interned small-int bounds, read by :func:`_bound` / :meth:`Bound.of`
_INT_BOUND_LIMIT = 1024
_INT_BOUNDS: Dict[int, Bound] = {
    n: Bound(n) for n in range(-_INT_BOUND_LIMIT, _INT_BOUND_LIMIT + 1)
}
_ZERO_BOUND = _INT_BOUNDS[0]

_INTERN_ENABLED = True

#: hit/miss tallies of the memo tables, served by :func:`cache_stats`
_STATS: Dict[str, int] = {
    "bound_hits": 0,
    "bound_misses": 0,
    "point_hits": 0,
    "point_misses": 0,
}


def _bound(value: Finite) -> Bound:
    """Finite-bound constructor: interned for small ints, fresh otherwise."""
    if type(value) is int:
        if _INTERN_ENABLED:
            cached = _INT_BOUNDS.get(value)
            if cached is not None:
                _STATS["bound_hits"] += 1
                return cached
            _STATS["bound_misses"] += 1
        out = Bound.__new__(Bound)
        out.value = value
        out.infinite = 0
        return out
    return Bound(value)


def _scale_bound(bound: Bound, factor: Finite) -> Bound:
    """``bound * factor`` for a nonzero exact scalar (sign flips infinities)."""
    if bound.infinite:
        if factor > 0:
            return bound
        return NEG_INF if bound.infinite > 0 else POS_INF
    return _bound(bound.value * factor)


def _bmin(a: Bound, b: Bound) -> Bound:
    return a if a <= b else b


def _bmax(a: Bound, b: Bound) -> Bound:
    return a if a >= b else b


class Interval:
    """A closed interval with possibly infinite endpoints; may be empty.

    The constructor coerces ints / Fractions, so ``Interval(0, 10)`` and
    ``Interval(Fraction(0), Bound(Fraction(10)))`` are the same value.
    Instances are immutable by contract (the hot constructors hand out
    interned, shared objects); equality and hashing are value-based.
    """

    __slots__ = ("lo", "hi", "empty")

    def __init__(self, lo, hi, empty: bool = False):
        self.lo = lo if isinstance(lo, Bound) else Bound.of(lo)
        self.hi = hi if isinstance(hi, Bound) else Bound.of(hi)
        self.empty = empty

    @classmethod
    def _raw(cls, lo: Bound, hi: Bound) -> "Interval":
        """Internal fast constructor: endpoints must already be Bounds."""
        out = cls.__new__(cls)
        out.lo = lo
        out.hi = hi
        out.empty = False
        return out

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def point(value: Finite) -> "Interval":
        if type(value) is int and _INTERN_ENABLED:
            cached = _POINT_CACHE.get(value)
            if cached is not None:
                _STATS["point_hits"] += 1
                return cached
            _STATS["point_misses"] += 1
        bound = Bound.of(value)
        return Interval._raw(bound, bound)

    @staticmethod
    def empty_interval() -> "Interval":
        if _INTERN_ENABLED:
            return EMPTY
        return Interval(_ZERO_BOUND, _ZERO_BOUND, empty=True)

    @staticmethod
    def top() -> "Interval":
        if _INTERN_ENABLED:
            return TOP
        return Interval(NEG_INF, POS_INF)

    @staticmethod
    def at_least(value: Finite) -> "Interval":
        return Interval._raw(Bound.of(value), POS_INF)

    @staticmethod
    def at_most(value: Finite) -> "Interval":
        return Interval._raw(NEG_INF, Bound.of(value))

    @staticmethod
    def hull(values: Iterable[Finite]) -> "Interval":
        """Smallest interval containing every value (empty for none)."""
        lo = hi = None
        for value in values:
            value = _canonical(value)
            if lo is None:
                lo = hi = value
            else:
                if value < lo:
                    lo = value
                if value > hi:
                    hi = value
        if lo is None:
            return Interval.empty_interval()
        return Interval._raw(_bound(lo), _bound(hi))

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    @property
    def is_top(self) -> bool:
        return not self.empty and bool(self.lo.infinite) and bool(self.hi.infinite)

    @property
    def is_point(self) -> bool:
        return not self.empty and self.lo == self.hi

    def contains(self, value: Finite) -> bool:
        """Membership test; ``value`` is compared exactly, converted never."""
        if self.empty:
            return False
        lo = self.lo
        if lo.infinite == 0:
            if value < lo.value:
                return False
        elif lo.infinite > 0:
            return False
        hi = self.hi
        if hi.infinite == 0:
            if value > hi.value:
                return False
        elif hi.infinite < 0:
            return False
        return True

    def contains_interval(self, other: "Interval") -> bool:
        if other.empty:
            return True
        if self.empty:
            return False
        return self.lo <= other.lo and other.hi <= self.hi

    def intersects(self, other: "Interval") -> bool:
        meet = self.intersect(other)
        return not meet.empty

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def __add__(self, other: "Interval") -> "Interval":
        if self.empty or other.empty:
            return Interval.empty_interval()
        return Interval._raw(self.lo + other.lo, self.hi + other.hi)

    def __neg__(self) -> "Interval":
        if self.empty:
            return self
        return Interval._raw(-self.hi, -self.lo)

    def __sub__(self, other: "Interval") -> "Interval":
        return self + (-other)

    def __mul__(self, other: "Interval") -> "Interval":
        if self.empty or other.empty:
            return Interval.empty_interval()
        a, b, c, d = self.lo, self.hi, other.lo, other.hi
        if not (a.infinite or b.infinite or c.infinite or d.infinite):
            # all-finite fast path: four exact products, no Bound temporaries
            av, bv, cv, dv = a.value, b.value, c.value, d.value
            p1 = av * cv
            p2 = av * dv
            p3 = bv * cv
            p4 = bv * dv
            return Interval._raw(
                _bound(min(p1, p2, p3, p4)), _bound(max(p1, p2, p3, p4))
            )
        corners = (a * c, a * d, b * c, b * d)
        lo = hi = corners[0]
        for corner in corners[1:]:
            if corner < lo:
                lo = corner
            elif corner > hi:
                hi = corner
        return Interval._raw(lo, hi)

    def scale(self, factor: Finite) -> "Interval":
        """Multiply by an exact scalar (cheaper than ``* point(factor)``)."""
        if self.empty:
            return self
        factor = _canonical(factor)
        if factor == 0:
            return _POINT_CACHE[0]  # hull convention: 0 * inf = 0
        lo, hi = (self.lo, self.hi) if factor > 0 else (self.hi, self.lo)
        return Interval._raw(_scale_bound(lo, factor), _scale_bound(hi, factor))

    def union(self, other: "Interval") -> "Interval":
        if self.empty:
            return other
        if other.empty or self is other:
            return self
        lo = self.lo if self.lo <= other.lo else other.lo
        hi = self.hi if self.hi >= other.hi else other.hi
        if lo is self.lo and hi is self.hi:
            return self
        if lo is other.lo and hi is other.hi:
            return other
        return Interval._raw(lo, hi)

    def intersect(self, other: "Interval") -> "Interval":
        if self is other:
            return self
        if self.empty or other.empty:
            return Interval.empty_interval()
        lo = self.lo if self.lo >= other.lo else other.lo
        hi = self.hi if self.hi <= other.hi else other.hi
        if lo is self.lo and hi is self.hi:
            return self
        if lo is other.lo and hi is other.hi:
            return other
        if lo > hi:
            return Interval.empty_interval()
        return Interval._raw(lo, hi)

    # ------------------------------------------------------------------
    # integer views
    # ------------------------------------------------------------------
    def int_lower(self) -> Optional[int]:
        """Smallest integer in the interval, or None when unbounded/empty."""
        if self.empty:
            return None
        return self.lo.ceil_int()

    def int_upper(self) -> Optional[int]:
        """Largest integer in the interval, or None when unbounded/empty."""
        if self.empty:
            return None
        return self.hi.floor_int()

    # ------------------------------------------------------------------
    # dunder plumbing (value semantics, exactly as the old dataclass had)
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if other is self:
            return True
        if not isinstance(other, Interval):
            return NotImplemented
        return (
            self.empty == other.empty
            and self.lo == other.lo
            and self.hi == other.hi
        )

    def __hash__(self) -> int:
        return hash((self.lo, self.hi, self.empty))

    def __repr__(self) -> str:
        if self.empty:
            return "Interval(empty)"
        return f"[{self.lo!r}, {self.hi!r}]"


#: canonical singletons, shared by every caller when interning is on
TOP = Interval(NEG_INF, POS_INF)
EMPTY = Interval(_ZERO_BOUND, _ZERO_BOUND, empty=True)

#: interned small-int point intervals
_POINT_LIMIT = 64
_POINT_CACHE: Dict[int, Interval] = {
    n: Interval(_INT_BOUNDS[n], _INT_BOUNDS[n])
    for n in range(-_POINT_LIMIT, _POINT_LIMIT + 1)
}


# ----------------------------------------------------------------------
# interning control and statistics (the expr.cache_stats() pattern)
# ----------------------------------------------------------------------
def cache_stats() -> Dict[str, Dict[str, int]]:
    """Hit/miss/size counts of the interning memo tables.

    Returns ``{"bound": {"hits", "misses", "size"}, "point": {...}}``.
    Hits and misses accumulate since process start (or the last
    :func:`reset_cache_stats`); ``size`` is the number of interned
    entries.  :func:`repro.ranges.compute_ranges` records per-run deltas
    of these counters as the ``interval.cache.*`` metrics.
    """
    return {
        "bound": {
            "hits": _STATS["bound_hits"],
            "misses": _STATS["bound_misses"],
            "size": len(_INT_BOUNDS),
        },
        "point": {
            "hits": _STATS["point_hits"],
            "misses": _STATS["point_misses"],
            "size": len(_POINT_CACHE),
        },
    }


def reset_cache_stats() -> None:
    """Zero the hit/miss tallies (the interned tables are untouched)."""
    for key in _STATS:
        _STATS[key] = 0


def set_interning(enabled: bool) -> bool:
    """Enable/disable interval interning; returns the previous state.

    Interning never changes results (bounds and intervals are immutable
    values, ``==``/``hash`` are value-based) -- this switch exists so the
    equivalence tests can prove exactly that, and as an escape hatch.
    """
    global _INTERN_ENABLED
    previous = _INTERN_ENABLED
    _INTERN_ENABLED = bool(enabled)
    return previous
