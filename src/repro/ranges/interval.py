"""The shared interval algebra: exact endpoints, typed infinities.

One implementation serves both consumers: the Banerjee bound tester
(:mod:`repro.dependence.banerjee`) and the value-range analysis
(:mod:`repro.ranges.analysis`).  Endpoints are exact -- a finite
:class:`Bound` wraps a :class:`~fractions.Fraction`; the infinities are
the module constants :data:`NEG_INF` and :data:`POS_INF` rather than
sentinel strings, so arithmetic and comparisons are total and typed.

Multiplication uses the hull convention ``0 * inf = 0`` (sound for
interval products: the zero factor pins the result).  ``+inf + -inf``
is a programming error and raises.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from math import ceil, floor
from typing import Iterable, Optional, Union

__all__ = ["Bound", "Interval", "NEG_INF", "POS_INF"]

Finite = Union[int, Fraction]


@dataclass(frozen=True, eq=False)
class Bound:
    """One interval endpoint: a finite rational or an infinity.

    ``infinite`` is -1 (negative infinity), 0 (finite, ``value`` valid)
    or +1 (positive infinity).
    """

    value: Fraction = Fraction(0)
    infinite: int = 0

    @staticmethod
    def of(value: Union["Bound", Finite]) -> "Bound":
        if isinstance(value, Bound):
            return value
        return Bound(Fraction(value))

    @property
    def is_finite(self) -> bool:
        return self.infinite == 0

    def _key(self):
        if self.infinite:
            return (self.infinite, Fraction(0))
        return (0, self.value)

    def __eq__(self, other) -> bool:
        if isinstance(other, Bound):
            return self._key() == other._key()
        if isinstance(other, (int, Fraction)):
            return self.infinite == 0 and self.value == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._key())

    def __lt__(self, other) -> bool:
        return self._key() < Bound.of(other)._key()

    def __le__(self, other) -> bool:
        return self._key() <= Bound.of(other)._key()

    def __gt__(self, other) -> bool:
        return self._key() > Bound.of(other)._key()

    def __ge__(self, other) -> bool:
        return self._key() >= Bound.of(other)._key()

    def __neg__(self) -> "Bound":
        if self.infinite:
            return Bound(infinite=-self.infinite)
        return Bound(-self.value)

    def __add__(self, other: Union["Bound", Finite]) -> "Bound":
        other = Bound.of(other)
        if self.infinite and other.infinite and self.infinite != other.infinite:
            raise ValueError("indeterminate bound sum: +inf + -inf")
        if self.infinite:
            return self
        if other.infinite:
            return other
        return Bound(self.value + other.value)

    def __sub__(self, other: Union["Bound", Finite]) -> "Bound":
        return self + (-Bound.of(other))

    def __mul__(self, other: Union["Bound", Finite]) -> "Bound":
        other = Bound.of(other)
        # hull convention: a zero factor pins the product at zero
        if (self.is_finite and self.value == 0) or (
            other.is_finite and other.value == 0
        ):
            return Bound(Fraction(0))
        if self.infinite or other.infinite:
            sign_a = self.infinite or (1 if self.value > 0 else -1)
            sign_b = other.infinite or (1 if other.value > 0 else -1)
            return Bound(infinite=sign_a * sign_b)
        return Bound(self.value * other.value)

    def floor_int(self) -> Optional[int]:
        """Largest integer <= this bound, or None when infinite."""
        return None if self.infinite else floor(self.value)

    def ceil_int(self) -> Optional[int]:
        """Smallest integer >= this bound, or None when infinite."""
        return None if self.infinite else ceil(self.value)

    def __repr__(self) -> str:
        if self.infinite > 0:
            return "+inf"
        if self.infinite < 0:
            return "-inf"
        return str(self.value)


#: the typed infinities (the old string sentinels are gone)
NEG_INF = Bound(infinite=-1)
POS_INF = Bound(infinite=1)


def _bmin(a: Bound, b: Bound) -> Bound:
    return a if a <= b else b


def _bmax(a: Bound, b: Bound) -> Bound:
    return a if a >= b else b


@dataclass(frozen=True)
class Interval:
    """A closed interval with possibly infinite endpoints; may be empty.

    The constructor coerces ints / Fractions, so ``Interval(0, 10)`` and
    ``Interval(Fraction(0), Bound(Fraction(10)))`` are the same value.
    """

    lo: Bound
    hi: Bound
    empty: bool = False

    def __post_init__(self):
        object.__setattr__(self, "lo", Bound.of(self.lo))
        object.__setattr__(self, "hi", Bound.of(self.hi))

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def point(value: Finite) -> "Interval":
        bound = Bound.of(value)
        return Interval(bound, bound)

    @staticmethod
    def empty_interval() -> "Interval":
        return Interval(Bound(Fraction(0)), Bound(Fraction(0)), empty=True)

    @staticmethod
    def top() -> "Interval":
        return Interval(NEG_INF, POS_INF)

    @staticmethod
    def at_least(value: Finite) -> "Interval":
        return Interval(Bound.of(value), POS_INF)

    @staticmethod
    def at_most(value: Finite) -> "Interval":
        return Interval(NEG_INF, Bound.of(value))

    @staticmethod
    def hull(values: Iterable[Finite]) -> "Interval":
        """Smallest interval containing every value (empty for none)."""
        result = Interval.empty_interval()
        for value in values:
            result = result.union(Interval.point(value))
        return result

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    @property
    def is_top(self) -> bool:
        return not self.empty and not self.lo.is_finite and not self.hi.is_finite

    @property
    def is_point(self) -> bool:
        return not self.empty and self.lo == self.hi

    def contains(self, value: Finite) -> bool:
        if self.empty:
            return False
        return self.lo <= Fraction(value) and Bound.of(Fraction(value)) <= self.hi

    def contains_interval(self, other: "Interval") -> bool:
        if other.empty:
            return True
        if self.empty:
            return False
        return self.lo <= other.lo and other.hi <= self.hi

    def intersects(self, other: "Interval") -> bool:
        meet = self.intersect(other)
        return not meet.empty

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    def __add__(self, other: "Interval") -> "Interval":
        if self.empty or other.empty:
            return Interval.empty_interval()
        return Interval(self.lo + other.lo, self.hi + other.hi)

    def __neg__(self) -> "Interval":
        if self.empty:
            return self
        return Interval(-self.hi, -self.lo)

    def __sub__(self, other: "Interval") -> "Interval":
        return self + (-other)

    def __mul__(self, other: "Interval") -> "Interval":
        if self.empty or other.empty:
            return Interval.empty_interval()
        corners = [
            self.lo * other.lo,
            self.lo * other.hi,
            self.hi * other.lo,
            self.hi * other.hi,
        ]
        lo = corners[0]
        hi = corners[0]
        for corner in corners[1:]:
            lo = _bmin(lo, corner)
            hi = _bmax(hi, corner)
        return Interval(lo, hi)

    def scale(self, factor: Finite) -> "Interval":
        return self * Interval.point(factor)

    def union(self, other: "Interval") -> "Interval":
        if self.empty:
            return other
        if other.empty:
            return self
        return Interval(_bmin(self.lo, other.lo), _bmax(self.hi, other.hi))

    def intersect(self, other: "Interval") -> "Interval":
        if self.empty or other.empty:
            return Interval.empty_interval()
        lo = _bmax(self.lo, other.lo)
        hi = _bmin(self.hi, other.hi)
        if lo > hi:
            return Interval.empty_interval()
        return Interval(lo, hi)

    # ------------------------------------------------------------------
    # integer views
    # ------------------------------------------------------------------
    def int_lower(self) -> Optional[int]:
        """Smallest integer in the interval, or None when unbounded/empty."""
        if self.empty:
            return None
        return self.lo.ceil_int()

    def int_upper(self) -> Optional[int]:
        """Largest integer in the interval, or None when unbounded/empty."""
        if self.empty:
            return None
        return self.hi.floor_int()

    def __repr__(self) -> str:
        if self.empty:
            return "Interval(empty)"
        return f"[{self.lo!r}, {self.hi!r}]"


TOP = Interval.top()
