"""Human-readable analysis reports.

``format_report(program)`` renders everything the pipeline learned about a
program -- per-loop classifications (in the paper's tuple notation), trip
counts, exit values, the dependence graph and per-loop parallelism
verdicts -- the way a compiler's ``-fdump-loop-analysis`` would.
Used by the command-line interface (``python -m repro``).

Degradations recorded by the fault-tolerant pipeline are rendered in a
``== resilience ==`` section; degraded loops are flagged inline.  The
dependence-graph build itself runs as an *optional phase*: if it fails,
the report notes the skip instead of crashing.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.tripcount import TripCountKind
from repro.dependence.graph import build_dependence_graph
from repro.dependence.loopinfo import analyze_parallelism
from repro.pipeline import AnalyzedProgram
from repro.resilience import isolation as _isolation


def format_report(
    program: AnalyzedProgram,
    show_temporaries: bool = False,
    show_dependences: bool = True,
    show_ir: bool = False,
    diagnostics: Optional[Sequence] = None,
) -> str:
    lines: List[str] = []
    result = program.result

    if show_ir:
        from repro.ir.printer import print_function

        lines.append("== SSA form ==")
        lines.append(print_function(program.ssa))
        lines.append("")

    if not result.loops:
        lines.append("no loops found")
        _append_resilience(lines, program)
        _append_diagnostics(lines, diagnostics)
        return "\n".join(lines)

    graph = None
    if show_dependences:
        with _isolation.resilient(_report_log(program)):
            graph = _isolation.run_optional(
                "dependence.graph",
                lambda: build_dependence_graph(result),
                diag_code="RES502",
            )
    parallelism = analyze_parallelism(result, graph) if graph is not None else {}

    for loop in sorted(result.loops.values(), key=lambda s: s.loop.depth):
        summary = loop
        header = summary.label
        indent = "  " * (summary.loop.depth - 1)
        flag = "  [degraded]" if summary.degraded else ""
        lines.append(f"{indent}loop {header} (depth {summary.loop.depth}):{flag}")

        trip = summary.trip
        if trip.kind is TripCountKind.FINITE:
            extra = "" if trip.exact else " (upper bound)"
            assumption = f"  [{'; '.join(trip.assumptions)}]" if trip.assumptions else ""
            lines.append(f"{indent}  trip count: {trip.count}{extra}{assumption}")
        else:
            lines.append(f"{indent}  trip count: {trip.kind.value}")
        ranges = result.ranges
        if ranges is not None and header in ranges.trips:
            interval = ranges.trips[header]
            if not interval.is_top:
                lines.append(f"{indent}  trip range: {interval}")

        lines.append(f"{indent}  SSA graph size: {summary.graph_size}, "
                     f"SCRs: {summary.scr_count}")

        for name in sorted(summary.classifications):
            if not show_temporaries and name.startswith("$"):
                continue
            cls = summary.classifications[name]
            nested = result.nested_describe(name)
            plain = cls.describe()
            shown = nested if nested != plain else plain
            lines.append(f"{indent}  {name:12} {shown}")
            exit_value = result.exit_value(header, name)
            if exit_value is not None:
                lines.append(f"{indent}  {'':12}   exits with {exit_value}")

        verdict = parallelism.get(header)
        if verdict is not None:
            if verdict.parallelizable:
                lines.append(f"{indent}  parallelizable: yes (DOALL)")
            else:
                lines.append(
                    f"{indent}  parallelizable: no "
                    f"({len(verdict.carried)} carried dependence(s))"
                )
                for blocker in verdict.blockers:
                    lines.append(f"{indent}    blocked by: {blocker.describe()}")
        lines.append("")

    if show_dependences:
        lines.append("== dependence graph ==")
        if graph is None:
            lines.append("  skipped (dependence analysis degraded)")
        elif graph.edges:
            for edge in graph.edges:
                note = f"   [{edge.result.notes[-1]}]" if edge.result.notes else ""
                lines.append(f"  {edge!r}{note}")
        else:
            lines.append("  no dependences")
    _append_ranges(lines, program, show_temporaries)
    _append_invariants(lines, program)
    _append_resilience(lines, program)
    _append_diagnostics(lines, diagnostics)
    return "\n".join(lines)


def _report_log(program: AnalyzedProgram) -> _isolation.DegradationLog:
    """A log whose records land in ``program.degradations``.

    Report-time optional phases (the dependence graph) degrade into the
    same list the pipeline filled, so one ``== resilience ==`` section
    covers both.
    """
    log = _isolation.DegradationLog()
    log.records = program.degradations
    return log


def _append_ranges(
    lines: List[str], program: AnalyzedProgram, show_temporaries: bool
) -> None:
    """Append a ``== value ranges ==`` section when the phase ran."""
    info = program.result.ranges
    if info is None:
        return
    lines.append("")
    lines.append("== value ranges ==")
    if info.degraded:
        lines.append("  degraded: every value spans [-inf, +inf]")
        return
    shown = 0
    for name in sorted(info.values):
        if not show_temporaries and name.startswith("$"):
            continue
        interval = info.values[name]
        if interval.is_top:
            continue
        lines.append(f"  {name:12} {interval}")
        shown += 1
    if not shown:
        lines.append("  no nontrivial ranges")


def _append_invariants(lines: List[str], program: AnalyzedProgram) -> None:
    """Append an ``== invariants ==`` section when the phase ran."""
    info = getattr(program.result, "invariants", None)
    if info is None:
        return
    lines.append("")
    lines.append("== invariants ==")
    if info.degraded:
        lines.append("  degraded: no path summaries or equalities available")
        return
    if not info.path_summaries:
        lines.append("  no loop admitted path enumeration")
        return
    for header in sorted(info.path_summaries):
        summary = info.path_summaries[header]
        lines.append(f"  {header}: {', '.join(summary.notes())}")
        for path in summary.paths:
            lines.append(f"    path {path.describe()}")
        for invariant in info.invariants_of(header):
            lines.append(f"    invariant {invariant.describe()}")


def _append_resilience(lines: List[str], program: AnalyzedProgram) -> None:
    """Append a ``== resilience ==`` section when anything degraded."""
    if not program.degradations:
        return
    lines.append("")
    lines.append("== resilience ==")
    lines.append(
        f"  {len(program.degradations)} degradation(s); results are "
        "partial (re-run with --strict-errors to see the first failure)"
    )
    for record in program.degradations:
        where = f" at {record.scope}" if record.scope else ""
        lines.append(
            f"  [{record.diag_code}] {record.phase}{where}: "
            f"{record.action} ({record.code}) -- {record.message}"
        )


def _append_diagnostics(lines: List[str], diagnostics: Optional[Sequence]) -> None:
    """Append a ``== diagnostics ==`` section (for ``--verify``/``--lint``)."""
    if diagnostics is None:
        return
    from repro.diagnostics.render import render_text

    lines.append("")
    lines.append("== diagnostics ==")
    if not diagnostics:
        lines.append("  clean: no findings")
    else:
        lines.append(render_text(diagnostics))
