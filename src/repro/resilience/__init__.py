"""Fault tolerance for the analysis pipeline.

Wolfe's classification lattice bottoms out at *unknown*, so the honest
response to any internal failure is a degraded classification, never a
crash.  This package supplies the four pieces that make the pipeline
live up to that:

* :mod:`repro.resilience.errors` -- the structured error taxonomy:
  stable error codes, each with a recovery policy (DEGRADE / RETRY /
  ABORT);
* :mod:`repro.resilience.isolation` -- scoped failure-isolation
  boundaries (per SCR, per loop, per phase, per function) with a
  :class:`DegradationLog` feeding diagnostics, metrics, and reports;
* :mod:`repro.resilience.budget` -- :class:`AnalysisBudget` resource
  caps enforced at the symbolic and closed-form choke points;
* :mod:`repro.resilience.faultinject` -- the deterministic seeded
  fault-injection harness behind the chaos-test suite;
* :mod:`repro.resilience.retry` -- bounded-retry policies with
  exponential backoff and seeded jitter, routed through the taxonomy's
  recovery policies (the serving layer's re-run machinery).

See ``docs/ROBUSTNESS.md`` for the error-code and fault-point
catalogues (both doc-synced by tests).
"""

from repro.resilience.budget import (
    SERVICE_BUDGET,
    AnalysisBudget,
    budgeted,
    charge_expr_terms,
    check_deadline,
    check_request_deadline,
    matrix_dim_allowed,
    phase_deadline,
    unroll_cap,
)
from repro.resilience.retry import SERVICE_RETRY, RetryPolicy, call_with_retry
from repro.resilience.errors import (
    ERROR_CODES,
    BudgetExceeded,
    ErrorCodeInfo,
    InjectedFault,
    MissingPhiError,
    RecoveryPolicy,
    ReproError,
    TransientFault,
    all_error_codes,
    error_code_info,
    wrap_exception,
)
from repro.resilience.faultinject import (
    FAULT_POINTS,
    FaultPlan,
    all_fault_points,
    fault_point,
    injecting,
)
from repro.resilience.isolation import (
    DegradationLog,
    DegradationRecord,
    absorb,
    active_log,
    diagnostics_of,
    isolating,
    resilient,
    run_optional,
    strict_active,
    strict_errors,
)

__all__ = [
    "ERROR_CODES",
    "FAULT_POINTS",
    "SERVICE_BUDGET",
    "SERVICE_RETRY",
    "AnalysisBudget",
    "BudgetExceeded",
    "DegradationLog",
    "DegradationRecord",
    "ErrorCodeInfo",
    "FaultPlan",
    "InjectedFault",
    "MissingPhiError",
    "RecoveryPolicy",
    "ReproError",
    "RetryPolicy",
    "TransientFault",
    "absorb",
    "active_log",
    "all_error_codes",
    "all_fault_points",
    "budgeted",
    "call_with_retry",
    "charge_expr_terms",
    "check_deadline",
    "check_request_deadline",
    "diagnostics_of",
    "error_code_info",
    "fault_point",
    "injecting",
    "isolating",
    "matrix_dim_allowed",
    "phase_deadline",
    "resilient",
    "run_optional",
    "strict_active",
    "strict_errors",
    "unroll_cap",
    "wrap_exception",
]
