"""Resource budgets: bound the pipeline's worst-case symbolic work.

The paper's machinery is small in the common case -- "the matrices
involved are tiny" -- but adversarial inputs can drive it arbitrarily
far: polynomial multiplication grows term counts quadratically, the
section 4.3 coefficient matrices grow with recurrence order, full
unrolling multiplies the IR by the trip count, and a pathological loop
nest can hold one phase hostage indefinitely.  An :class:`AnalysisBudget`
caps each of those at its choke point; exhausting a budget raises
:class:`~repro.resilience.errors.BudgetExceeded` (policy DEGRADE), which
the isolation layer converts into an ``Unknown`` classification -- never
a crash.

The active budget lives in a context variable (``None`` = unbudgeted,
the library default).  The hot-path check in
:mod:`repro.symbolic.expr` reads the module-level mirror
:data:`_EXPR_TERM_CAP` instead -- one attribute read, zero cost when no
budget is installed.  :data:`SERVICE_BUDGET` is a documented
production-service default.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Optional

from repro.resilience.errors import BudgetExceeded

__all__ = [
    "AnalysisBudget",
    "SERVICE_BUDGET",
    "active",
    "budgeted",
    "charge_expr_terms",
    "check_deadline",
    "check_request_deadline",
    "matrix_dim_allowed",
    "phase_deadline",
    "unroll_cap",
]


@dataclass(frozen=True)
class AnalysisBudget:
    """Per-analysis resource caps (``None`` disables the individual cap).

    * ``max_expr_terms`` -- monomial count of any single
      :class:`~repro.symbolic.expr.Expr` built by multiplication or
      substitution;
    * ``max_matrix_dim`` -- dimension of the section 4.3 coefficient
      matrices (polynomial degree + geometric bases + 1);
    * ``max_unroll_trips`` -- trip count beyond which unroll/peel
      transforms refuse to expand the IR;
    * ``phase_deadline_s`` -- wall-clock seconds any single pipeline
      phase (optimize, classify) may run;
    * ``request_deadline_s`` -- wall-clock seconds the *whole* analysis
      may run (the serving layer's per-request budget); checked at phase
      boundaries, so overrun degrades the remaining phases rather than
      the finished ones.
    """

    max_expr_terms: Optional[int] = None
    max_matrix_dim: Optional[int] = None
    max_unroll_trips: Optional[int] = None
    phase_deadline_s: Optional[float] = None
    request_deadline_s: Optional[float] = None


#: a sane default for services: generous enough for every program in the
#: paper (and ``examples/``), tight enough that no request monopolizes a
#: worker.
SERVICE_BUDGET = AnalysisBudget(
    max_expr_terms=4096,
    max_matrix_dim=12,
    max_unroll_trips=256,
    phase_deadline_s=10.0,
    request_deadline_s=30.0,
)

_BUDGET: ContextVar[Optional[AnalysisBudget]] = ContextVar(
    "repro_resilience_budget", default=None
)
_DEADLINE: ContextVar[Optional[float]] = ContextVar(
    "repro_resilience_deadline", default=None
)
_REQUEST_DEADLINE: ContextVar[Optional[float]] = ContextVar(
    "repro_resilience_request_deadline", default=None
)

#: module-level mirror of the innermost budget's ``max_expr_terms``, read
#: directly by the Expr hot paths (an attribute load beats a context-var
#: lookup there; budgets are installed per-analysis, not per-thread)
_EXPR_TERM_CAP: Optional[int] = None


def active() -> Optional[AnalysisBudget]:
    """The innermost installed budget, or ``None`` (unbudgeted)."""
    return _BUDGET.get()


@contextmanager
def budgeted(budget: Optional[AnalysisBudget]):
    """Install ``budget`` for the dynamic extent of the block.

    ``budgeted(None)`` is a no-op context, so callers can pass an optional
    budget through unconditionally.
    """
    global _EXPR_TERM_CAP
    if budget is None:
        yield None
        return
    token = _BUDGET.set(budget)
    request_token = None
    if budget.request_deadline_s is not None:
        request_token = _REQUEST_DEADLINE.set(
            time.monotonic() + budget.request_deadline_s
        )
    previous_cap = _EXPR_TERM_CAP
    _EXPR_TERM_CAP = budget.max_expr_terms
    try:
        yield budget
    finally:
        _EXPR_TERM_CAP = previous_cap
        if request_token is not None:
            _REQUEST_DEADLINE.reset(request_token)
        _BUDGET.reset(token)


def charge_expr_terms(nterms: int) -> None:
    """Raise when a freshly built Expr exceeds the term cap."""
    cap = _EXPR_TERM_CAP
    if cap is not None and nterms > cap:
        raise BudgetExceeded(
            f"expression grew to {nterms} terms (budget {cap})",
            code="budget-expr-terms",
        )


def matrix_dim_allowed(dim: int) -> bool:
    """True when a ``dim x dim`` coefficient matrix fits the budget.

    The closed-form fitters *degrade* (return ``None``) rather than raise
    on an oversized system, so this is a predicate, not a charge.
    """
    budget = _BUDGET.get()
    return (
        budget is None
        or budget.max_matrix_dim is None
        or dim <= budget.max_matrix_dim
    )


def unroll_cap(requested: int) -> int:
    """The effective unroll limit: ``requested`` clamped by the budget."""
    budget = _BUDGET.get()
    if budget is None or budget.max_unroll_trips is None:
        return requested
    return min(requested, budget.max_unroll_trips)


@contextmanager
def phase_deadline(phase: str):
    """Start the per-phase deadline clock for the dynamic extent.

    No-op without a budget (or without ``phase_deadline_s``).  The clock
    is *checked* cooperatively -- :func:`check_deadline` at loop
    boundaries inside the phase -- so granularity is one unit of phase
    work, not a hard preemption.
    """
    budget = _BUDGET.get()
    if budget is None or budget.phase_deadline_s is None:
        yield
        return
    token = _DEADLINE.set(time.monotonic() + budget.phase_deadline_s)
    try:
        yield
    finally:
        _DEADLINE.reset(token)


def check_deadline(phase: str) -> None:
    """Raise when the current phase (or whole request) ran past its deadline."""
    deadline = _DEADLINE.get()
    if deadline is not None and time.monotonic() > deadline:
        raise BudgetExceeded(
            f"phase {phase!r} ran past its deadline",
            code="budget-deadline",
            phase=phase,
        )
    check_request_deadline(phase)


def check_request_deadline(phase: str) -> None:
    """Raise when the whole request ran past ``request_deadline_s``.

    Called at phase boundaries by the pipeline (and inside
    :func:`check_deadline`), so an over-budget request degrades its
    *remaining* phases -- the finished ones stand -- and the serving
    layer can respond before its own hung-worker timeout fires.
    """
    deadline = _REQUEST_DEADLINE.get()
    if deadline is not None and time.monotonic() > deadline:
        raise BudgetExceeded(
            f"request ran past its deadline (at phase {phase!r})",
            code="budget-request-deadline",
            phase=phase,
        )
