"""The structured error taxonomy of the fault-tolerant pipeline.

Wolfe's lattice has a bottom -- *unknown* -- so no internal failure ever
needs to abort a whole :func:`repro.pipeline.analyze` run: the honest
answer for anything the pipeline cannot finish is ``Unknown``.  This
module gives every failure a stable **error code** and a **recovery
policy** so the isolation layer (:mod:`repro.resilience.isolation`) can
decide mechanically what to do with it:

* ``DEGRADE`` -- contain the failure at the nearest isolation boundary
  (loop, phase, function) and continue with a degraded result;
* ``RETRY``   -- re-run the failing phase once (it is transient);
* ``ABORT``   -- propagate: the *input* is wrong (syntax errors) or a
  strict checking tool tripped (the sanitizer), and hiding that would be
  worse than crashing.

Codes are declared once in :data:`ERROR_CODES` (``docs/ROBUSTNESS.md`` is
the doc-synced catalogue).  Exceptions that predate the taxonomy --
``KeyError``, ``IRError``, ``ExprError``, ``Fraction`` blowups -- are
adapted by :func:`wrap_exception` at the isolation boundaries, so legacy
raise sites keep working unmodified.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional


class RecoveryPolicy(enum.Enum):
    """What the isolation layer does with an error of a given code."""

    DEGRADE = "degrade"
    RETRY = "retry"
    ABORT = "abort"


@dataclass(frozen=True)
class ErrorCodeInfo:
    """One catalogued error code: its default policy and description."""

    code: str
    policy: RecoveryPolicy
    description: str


ERROR_CODES: Dict[str, ErrorCodeInfo] = {}


def _register(code: str, policy: RecoveryPolicy, description: str) -> None:
    if code in ERROR_CODES:
        raise ValueError(f"error code {code!r} registered twice")
    ERROR_CODES[code] = ErrorCodeInfo(code, policy, description)


def error_code_info(code: str) -> ErrorCodeInfo:
    try:
        return ERROR_CODES[code]
    except KeyError:
        raise KeyError(f"unknown resilience error code {code!r}") from None


def all_error_codes() -> List[str]:
    return sorted(ERROR_CODES)


_register(
    "internal-error", RecoveryPolicy.DEGRADE,
    "An unexpected exception (KeyError, arithmetic blowup, ...) was caught "
    "at an isolation boundary; the enclosing scope degrades to Unknown.",
)
_register(
    "frontend-error", RecoveryPolicy.ABORT,
    "The source program failed to lex/parse/lower: the input is wrong, so "
    "the error propagates to the caller with its position information.",
)
_register(
    "sanitizer-violation", RecoveryPolicy.ABORT,
    "The pipeline sanitizer found a pass that broke the IR or a stale "
    "cache; sanitizing is a strict checking tool, so it always raises.",
)
_register(
    "missing-header-phi", RecoveryPolicy.DEGRADE,
    "A loop header has no phi for the requested variable (the "
    "pipeline.ssa_name lookup of section 3.1's family representative).",
)
_register(
    "irreducible-cfg", RecoveryPolicy.DEGRADE,
    "The control flow graph is irreducible; natural-loop classification "
    "would be unsound, so every loop name degrades to Unknown.",
)
_register(
    "singular-system", RecoveryPolicy.DEGRADE,
    "The section 4.3 coefficient matrix is singular on the sample points; "
    "the closed form falls back to monotonic/unknown classification.",
)
_register(
    "budget-expr-terms", RecoveryPolicy.DEGRADE,
    "A symbolic expression exceeded AnalysisBudget.max_expr_terms; the "
    "computation that built it degrades.",
)
_register(
    "budget-matrix-dim", RecoveryPolicy.DEGRADE,
    "A coefficient-recovery matrix exceeded AnalysisBudget.max_matrix_dim; "
    "the closed form falls back to monotonic/unknown classification.",
)
_register(
    "budget-unroll", RecoveryPolicy.DEGRADE,
    "A loop's trip count exceeded AnalysisBudget.max_unroll_trips; the "
    "unroll/peel transform leaves the function untouched.",
)
_register(
    "budget-deadline", RecoveryPolicy.DEGRADE,
    "A pipeline phase ran past AnalysisBudget.phase_deadline_s; the "
    "remaining work in that phase degrades.",
)
_register(
    "injected-fault", RecoveryPolicy.DEGRADE,
    "A fault deliberately injected by the deterministic fault-injection "
    "harness (repro.resilience.faultinject).",
)
_register(
    "transient-fault", RecoveryPolicy.RETRY,
    "An injected (or genuinely transient) failure that is expected to "
    "succeed on retry; the phase is re-run once before degrading.",
)
_register(
    "budget-request-deadline", RecoveryPolicy.DEGRADE,
    "A whole analysis request ran past AnalysisBudget.request_deadline_s; "
    "the remaining phases degrade so the response returns on time.",
)
_register(
    "worker-crash", RecoveryPolicy.RETRY,
    "An analysis worker process died mid-job (crash, OOM kill, injected "
    "serve.worker fault); the job is retried on a respawned worker with "
    "backoff, then degrades to a partial response.",
)
_register(
    "request-timeout", RecoveryPolicy.DEGRADE,
    "A dispatched job outlived the serving layer's request timeout; the "
    "hung worker is killed and respawned and the request degrades (a "
    "re-run would hang the same way).",
)
_register(
    "circuit-open", RecoveryPolicy.DEGRADE,
    "The circuit breaker is open for this fingerprint after repeated "
    "worker failures; the request is shed with a structured degraded "
    "response instead of burning another worker.",
)
_register(
    "malformed-request", RecoveryPolicy.ABORT,
    "A service request failed to parse or lacked required fields; the "
    "client gets a structured error response (the input is wrong).",
)
_register(
    "request-overflow", RecoveryPolicy.ABORT,
    "A service request exceeded the protocol's maximum message size; the "
    "client gets a structured error response and the connection closes.",
)
_register(
    "response-overflow", RecoveryPolicy.DEGRADE,
    "A service response serialized past the protocol's maximum message "
    "size; the server drops the report/record payloads and answers a "
    "truncated degraded response instead of an unreceivable frame.",
)


class ReproError(Exception):
    """Base of the structured error hierarchy.

    Every instance carries a catalogued ``code``, the ``phase`` that raised
    it (filled in at the isolation boundary when the raise site does not
    know), and a ``policy`` (defaulting to the code's registered one).
    """

    default_code = "internal-error"

    def __init__(
        self,
        message: str,
        code: Optional[str] = None,
        phase: Optional[str] = None,
        policy: Optional[RecoveryPolicy] = None,
    ):
        super().__init__(message)
        self.message = message
        self.code = code if code is not None else self.default_code
        info = error_code_info(self.code)
        self.policy = policy if policy is not None else info.policy
        self.phase = phase

    def __str__(self) -> str:
        return self.message


class BudgetExceeded(ReproError):
    """A resource budget ran out (see :mod:`repro.resilience.budget`)."""

    default_code = "budget-deadline"


class InjectedFault(ReproError):
    """Raised by an armed fault point (policy DEGRADE)."""

    default_code = "injected-fault"


class TransientFault(InjectedFault):
    """Raised by an armed fault point in transient mode (policy RETRY)."""

    default_code = "transient-fault"


class MissingPhiError(ReproError, KeyError):
    """No loop-header phi for a variable (``AnalyzedProgram.ssa_name``).

    Subclasses :class:`KeyError` so pre-taxonomy callers that catch the
    historical exception type keep working.
    """

    default_code = "missing-header-phi"


def wrap_exception(error: BaseException, phase: str) -> ReproError:
    """Adapt any exception to the taxonomy (identity for ReproErrors).

    Legacy exception types map onto codes: frontend errors abort (the
    input is wrong), sanitizer violations abort (strict tooling),
    everything else is an internal error that degrades.
    """
    if isinstance(error, ReproError):
        if error.phase is None:
            error.phase = phase
        return error
    code = "internal-error"
    from repro.frontend.lexer import FrontendError

    if isinstance(error, FrontendError):
        code = "frontend-error"
    else:
        from repro.diagnostics.sanitizer import SanitizerError

        if isinstance(error, SanitizerError):
            code = "sanitizer-violation"
    message = str(error) or type(error).__name__
    return ReproError(
        f"{type(error).__name__}: {message}", code=code, phase=phase
    )
