"""Deterministic fault injection: prove degradation, don't hope for it.

Every pipeline phase declares a **named fault point** (the catalogue is
:data:`FAULT_POINTS`; ``docs/ROBUSTNESS.md`` documents it one-for-one).
A fault point is one call -- ``fault_point("scalar.sccp")`` -- costing a
single module attribute read when no injection plan is armed (a
module-level ``_ARMED`` flag mirrors the context variable, exactly the
pay-for-use contract of the obs layer and the budget cap's
module-mirror trick; per-process, not per-thread).

A :class:`FaultPlan` decides *deterministically* which invocations trip:

* ``FaultPlan(points={"classify.loop"})`` -- every hit of those points;
* ``FaultPlan(points=..., only_first=True)`` -- only the first hit (the
  retry-policy proof: the re-run succeeds);
* ``FaultPlan(seed=202, rate=0.3)`` -- a seeded pseudo-random sweep: the
  k-th invocation of each point trips iff the seeded stream says so, so
  the same seed over the same corpus always injects the same faults.

The chaos suite (``tests/resilience/test_chaos.py``) arms every point in
turn over the ``examples/`` corpus and asserts that ``analyze()`` always
returns a degraded-but-valid :class:`~repro.pipeline.AnalyzedProgram`.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.obs import metrics as _metrics
from repro.resilience.errors import InjectedFault, TransientFault

__all__ = [
    "FAULT_POINTS",
    "FaultPlan",
    "all_fault_points",
    "fault_point",
    "injecting",
]

#: every named fault point, with the phase it interrupts.  Call sites and
#: this catalogue are kept in sync by ``tests/resilience/test_faultinject.py``
#: (every point must be reachable) and the docs by
#: ``tests/resilience/test_docs.py``.
FAULT_POINTS: Dict[str, str] = {
    "frontend.parse": "lexing/parsing the loop-language source",
    "frontend.lower": "lowering the AST to named IR",
    "analysis.loop-simplify": "preheader/latch canonicalization",
    "ssa.construct": "phi placement and renaming",
    "scalar.sccp": "sparse conditional constant propagation",
    "scalar.simplify": "algebraic instruction simplification",
    "scalar.gvn": "global value numbering",
    "scalar.copyprop": "copy propagation",
    "classify.function": "whole-function classification setup",
    "classify.loop": "per-loop region build + SCR classification",
    "classify.tripcount": "trip-count computation of one loop",
    "closedform.fit": "section 4.3 coefficient-matrix fitting",
    "closedform.recurrence": "affine recurrence solving",
    "dependence.graph": "dependence-graph construction",
    "transform.strength-reduce": "strength reduction",
    "transform.ivsubst": "induction-variable substitution",
    "transform.licm": "loop-invariant code motion",
    "transform.peel": "first-iteration peeling",
    "transform.normalize": "loop normalization",
    "transform.unroll": "full unrolling",
    "transform.materialize": "exit-value materialization",
    "ranges.compute": "value-range analysis over the classification lattice",
    "invariants.compute": "path-sensitive summaries and polynomial invariant generation",
    "serve.dispatch": "handing a service request's job to the worker pool",
    "serve.worker": "job execution inside an analysis worker process",
    "serve.cache": "fingerprint-keyed result cache lookup/store",
}


def all_fault_points() -> List[str]:
    return sorted(FAULT_POINTS)


class FaultPlan:
    """A deterministic decision procedure over fault-point invocations.

    ``points`` restricts which named points may trip (``None`` = all).
    With a ``seed``, each invocation consults a :class:`random.Random`
    stream (deterministic for a fixed seed and call sequence) against
    ``rate``; without one, every eligible invocation trips.
    ``only_first`` trips just the first eligible invocation per point.
    ``transient`` raises :class:`TransientFault` (policy RETRY) instead
    of :class:`InjectedFault` (policy DEGRADE).
    """

    def __init__(
        self,
        points: Optional[Iterable[str]] = None,
        seed: Optional[int] = None,
        rate: float = 1.0,
        only_first: bool = False,
        transient: bool = False,
    ):
        if points is None:
            self.points: Optional[Set[str]] = None
        else:
            self.points = set(points)
            unknown = self.points - set(FAULT_POINTS)
            if unknown:
                raise ValueError(f"unknown fault points: {sorted(unknown)}")
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")
        self.seed = seed
        self.rate = rate
        self.only_first = only_first
        self.transient = transient
        self._rng = random.Random(seed) if seed is not None else None
        self.hits: Dict[str, int] = {}
        #: every (point, invocation index) that actually tripped
        self.fired: List[Tuple[str, int]] = []

    def should_trip(self, point: str) -> bool:
        if self.points is not None and point not in self.points:
            return False
        index = self.hits.get(point, 0)
        self.hits[point] = index + 1
        if self.only_first and index > 0:
            return False
        if self._rng is not None and self._rng.random() >= self.rate:
            return False
        self.fired.append((point, index))
        return True


_PLAN: ContextVar[Optional[FaultPlan]] = ContextVar(
    "repro_resilience_faultplan", default=None
)

#: module-level mirror of "is a (non-None) plan armed?" -- the single
#: gate every un-armed fault point reads.
_ARMED: bool = False


def active_plan() -> Optional[FaultPlan]:
    return _PLAN.get()


@contextmanager
def injecting(plan: Union[FaultPlan, str, None]):
    """Arm a fault plan (or one point by name) for the dynamic extent."""
    global _ARMED
    if isinstance(plan, str):
        plan = FaultPlan(points={plan})
    token = _PLAN.set(plan)
    previous = _ARMED
    _ARMED = plan is not None
    try:
        yield plan
    finally:
        _ARMED = previous
        _PLAN.reset(token)


def fault_point(name: str) -> None:
    """Declare a named fault point; trips when an armed plan says so.

    One module attribute read when no plan is armed.  Unknown names only
    fail when a plan is armed (the hot path never pays for validation).
    """
    if not _ARMED:
        return
    plan = _PLAN.get()
    if plan is None:
        return
    if name not in FAULT_POINTS:
        raise ValueError(f"fault_point({name!r}) is not in FAULT_POINTS")
    if plan.should_trip(name):
        _metrics.inc("resilience.faults.injected")
        description = FAULT_POINTS[name]
        if plan.transient:
            raise TransientFault(
                f"injected transient fault at {name} ({description})",
                phase=name,
            )
        raise InjectedFault(
            f"injected fault at {name} ({description})", phase=name
        )
