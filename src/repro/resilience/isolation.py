"""Failure isolation boundaries for the analysis pipeline.

The unit of containment shrinks with the distance from the user: a
failing *SCR* classifies as ``Unknown``, a failing *loop* yields a
degraded :class:`~repro.core.driver.LoopSummary`, a failing *optional
phase* (a transform, the dependence graph, a lint) is skipped, and only
when a whole function cannot be analyzed does the entire result degrade
to an empty classification map.  Each containment decision is driven by
the error's :class:`~repro.resilience.errors.RecoveryPolicy` and logged
as a :class:`DegradationRecord`, so nothing degrades silently: records
become ``RES5xx`` diagnostics, ``resilience.degraded.<phase>`` metric
counters, ``resilience.degraded`` trace events, and a ``== resilience ==``
section in ``repro report``.

Isolation is *scoped*: it only engages inside a :func:`resilient`
context (installed by :func:`repro.pipeline.analyze`), so direct calls
to lower-level entry points (``classify_function`` on a hand-built IR,
the transform functions) keep their historical raise behavior.  Strict
mode (:func:`strict_errors`, the CLI's ``--strict-errors``) restores
raise-on-first-error even inside a resilient context.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, TypeVar

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.resilience.errors import (
    RecoveryPolicy,
    ReproError,
    wrap_exception,
)

T = TypeVar("T")

__all__ = [
    "DegradationLog",
    "DegradationRecord",
    "absorb",
    "active_log",
    "isolating",
    "resilient",
    "run_optional",
    "strict_active",
    "strict_errors",
]


@dataclass
class DegradationRecord:
    """One contained failure: what failed, where, and what happened instead.

    ``phase`` is the pipeline phase (``classify.loop``, ``transform.unroll``,
    ...); ``code`` the taxonomy error code; ``diag_code`` the RES5xx
    diagnostic it surfaces as; ``scope`` the loop label / function name /
    SCR the failure was contained to; ``action`` what the isolation layer
    did (``degraded``, ``skipped``, ``retried``).
    """

    phase: str
    code: str
    message: str
    diag_code: str = "RES501"
    scope: Optional[str] = None
    action: str = "degraded"


@dataclass
class DegradationLog:
    """Every degradation recorded during one resilient analysis."""

    records: List[DegradationRecord] = field(default_factory=list)

    def record(
        self,
        phase: str,
        code: str,
        message: str,
        diag_code: str = "RES501",
        scope: Optional[str] = None,
        action: str = "degraded",
    ) -> DegradationRecord:
        entry = DegradationRecord(
            phase=phase,
            code=code,
            message=message,
            diag_code=diag_code,
            scope=scope,
            action=action,
        )
        self.records.append(entry)
        _metrics.inc(f"resilience.degraded.{phase}")
        _trace.event(
            "resilience.degraded",
            phase=phase,
            code=code,
            scope=scope,
            action=action,
        )
        return entry

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)


_LOG: ContextVar[Optional[DegradationLog]] = ContextVar(
    "repro_resilience_log", default=None
)
_STRICT: ContextVar[bool] = ContextVar(
    "repro_resilience_strict", default=False
)


def active_log() -> Optional[DegradationLog]:
    """The innermost resilient context's log, or ``None`` outside one."""
    return _LOG.get()


def strict_active() -> bool:
    return _STRICT.get()


def isolating() -> bool:
    """True when failures should be contained rather than propagated."""
    return _LOG.get() is not None and not _STRICT.get()


@contextmanager
def resilient(log: Optional[DegradationLog] = None):
    """Install a degradation log, arming the isolation boundaries."""
    current = log if log is not None else DegradationLog()
    token = _LOG.set(current)
    try:
        yield current
    finally:
        _LOG.reset(token)


@contextmanager
def strict_errors(enabled: bool = True):
    """Disable containment: the first error propagates (``--strict-errors``)."""
    token = _STRICT.set(enabled)
    try:
        yield
    finally:
        _STRICT.reset(token)


def absorb(
    error: BaseException,
    phase: str,
    scope: Optional[str] = None,
    action: str = "degraded",
    diag_code: str = "RES501",
) -> Optional[DegradationRecord]:
    """Contain ``error`` at an isolation boundary, or re-raise it.

    Re-raises (the *original* exception, preserving type and traceback for
    legacy callers) when isolation is off -- no resilient context, strict
    mode -- or when the error's policy is ABORT.  Otherwise records the
    degradation and returns the record; the caller substitutes its
    degraded result.
    """
    log = _LOG.get()
    wrapped = wrap_exception(error, phase)
    if log is None or _STRICT.get() or wrapped.policy is RecoveryPolicy.ABORT:
        raise error
    if wrapped.code.startswith("budget-"):
        diag_code = "RES503"
    return log.record(
        phase=wrapped.phase or phase,
        code=wrapped.code,
        message=wrapped.message,
        diag_code=diag_code,
        scope=scope,
        action=action,
    )


def run_optional(
    phase: str,
    fn: Callable[[], T],
    default: Optional[T] = None,
    scope: Optional[str] = None,
    diag_code: str = "RES502",
) -> Optional[T]:
    """Run an optional phase; on failure, skip it and return ``default``.

    A :class:`~repro.resilience.errors.RecoveryPolicy.RETRY` error gets
    one immediate re-run (recorded as ``retried``) before degrading.
    """
    try:
        return fn()
    except Exception as error:  # noqa: BLE001 - the isolation boundary
        wrapped = wrap_exception(error, phase)
        if wrapped.policy is RecoveryPolicy.RETRY and isolating():
            log = _LOG.get()
            assert log is not None
            log.record(
                phase=phase,
                code=wrapped.code,
                message=wrapped.message,
                diag_code="RES504",
                scope=scope,
                action="retried",
            )
            try:
                return fn()
            except Exception as retry_error:  # noqa: BLE001
                error = retry_error
        absorb(error, phase, scope=scope, action="skipped", diag_code=diag_code)
        return default


def diagnostics_of(
    records: List[DegradationRecord],
    collector=None,
    origin: str = "resilience",
    hint: Optional[str] = None,
):
    """Publish degradation records as RES5xx diagnostics.

    Returns the collector (a fresh one when ``collector`` is ``None``).
    Imported lazily so the resilience core stays free of the diagnostics
    package at import time.  ``origin``/``hint`` let frontends re-home
    their own record families (the real-Python frontend labels PYF4xx
    findings with the source file instead of ``"resilience"``).
    """
    from repro.diagnostics.diagnostic import DiagnosticCollector

    if collector is None:
        collector = DiagnosticCollector()
    if hint is None:
        hint = (
            "re-run with --strict-errors to propagate the underlying "
            "exception"
        )
    for entry in records:
        collector.emit(
            entry.diag_code,
            f"[{entry.code}] {entry.message}",
            stage=entry.phase,
            name=entry.scope,
            origin=origin,
            hint=hint,
        )
    return collector
