"""Retry policy: bounded attempts, exponential backoff, seeded jitter.

The serving layer (:mod:`repro.service`) re-runs failed work -- a job
lost to a worker crash, an injected transient fault -- but only when the
failure's **recovery policy** says so: the error code is looked up in
the :data:`~repro.resilience.errors.ERROR_CODES` taxonomy, and only
``RETRY``-policy codes are eligible for another attempt.  ``DEGRADE``
codes degrade immediately (a retry would just fail the same way) and
``ABORT`` codes propagate to the caller (the input is wrong).

Backoff is exponential with full jitter: attempt *k* sleeps
``min(max_delay_s, base_delay_s * multiplier**k)`` scaled by a random
factor in ``[1 - jitter, 1]``.  Determinism matters here exactly the way
it does for fault injection, so the jitter stream comes from a seedable
:class:`random.Random` -- the same seed yields the same delays.

:func:`call_with_retry` is the generic driver: it runs a callable,
classifies any raised exception through the taxonomy (via
:func:`~repro.resilience.errors.wrap_exception`), sleeps, and re-runs
until the policy gives up, at which point the last error propagates for
the caller's isolation boundary to absorb.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Optional, TypeVar

from repro.obs import metrics as _metrics
from repro.resilience.errors import (
    ERROR_CODES,
    RecoveryPolicy,
    ReproError,
    wrap_exception,
)

T = TypeVar("T")

__all__ = ["RetryPolicy", "SERVICE_RETRY", "call_with_retry", "seed_retry_rng"]

#: the jitter stream used when a caller passes no rng of its own --
#: module-level so concurrent retry loops share (and de-correlate
#: through) one stream, seeded so a fresh process is reproducible
_DEFAULT_RNG = random.Random(0x5EED)


def seed_retry_rng(seed: int) -> None:
    """Re-seed the shared default jitter stream (tests, chaos harness)."""
    _DEFAULT_RNG.seed(seed)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to re-run retryable work, and how long to wait.

    * ``max_attempts`` -- total attempts including the first (so ``1``
      disables retries entirely);
    * ``base_delay_s`` / ``multiplier`` / ``max_delay_s`` -- exponential
      backoff: attempt *k* (0-based retry index) waits
      ``base_delay_s * multiplier**k``, capped at ``max_delay_s``;
    * ``jitter`` -- fraction of each delay that is randomized away
      (``0.5`` means the actual sleep is uniform in ``[0.5d, d]``);
      ``0`` makes delays fully deterministic.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")

    # ------------------------------------------------------------------
    def delay_s(self, retry_index: int, rng: Optional[random.Random] = None) -> float:
        """The backoff before retry ``retry_index`` (0-based)."""
        delay = min(
            self.max_delay_s, self.base_delay_s * (self.multiplier ** retry_index)
        )
        if self.jitter and rng is not None:
            delay *= 1.0 - self.jitter * rng.random()
        return delay

    def retryable(self, code: str) -> bool:
        """True when the taxonomy marks ``code`` as RETRY-policy."""
        info = ERROR_CODES.get(code)
        return info is not None and info.policy is RecoveryPolicy.RETRY


#: the serving layer's default: one quick retry, one slower one, then
#: degrade -- bounded so a crashing fingerprint costs at most three jobs.
SERVICE_RETRY = RetryPolicy(
    max_attempts=3, base_delay_s=0.05, multiplier=4.0, max_delay_s=1.0, jitter=0.5
)


def call_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy = SERVICE_RETRY,
    phase: str = "retry",
    rng: Optional[random.Random] = None,
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Optional[Callable[[ReproError, int], None]] = None,
) -> T:
    """Run ``fn``, retrying RETRY-policy failures with backoff.

    Any exception is classified through the taxonomy; only codes whose
    registered policy is ``RETRY`` earn another attempt.  When attempts
    run out (or the code is not retryable) the *original* exception
    propagates, so the caller's isolation boundary sees the real error.
    ``on_retry(error, retry_index)`` is called before each backoff sleep.
    ``rng`` defaults to the module's shared seeded stream, so the
    policy's jitter applies even when the caller passes none (and
    concurrent retry loops do not back off in lockstep); pass
    ``jitter=0`` in the policy for fully deterministic delays.
    """
    if rng is None:
        rng = _DEFAULT_RNG
    last: Optional[BaseException] = None
    for attempt in range(policy.max_attempts):
        try:
            return fn()
        except Exception as error:  # noqa: BLE001 - classification boundary
            last = error
            wrapped = wrap_exception(error, phase)
            if (
                attempt + 1 >= policy.max_attempts
                or not policy.retryable(wrapped.code)
            ):
                raise
            _metrics.inc("service.retries")
            if on_retry is not None:
                on_retry(wrapped, attempt)
            delay = policy.delay_s(attempt, rng)
            if delay > 0:
                sleep(delay)
    raise last  # pragma: no cover - loop always returns or raises
