"""Scalar optimizations on SSA form.

The paper leans on these as substrate: "Often the initial value coming in
from outside the loop can be evaluated and substituted, using an algorithm
such as constant propagation [WZ91]" (section 3.1).  Provided passes:

* :mod:`repro.scalar.sccp` -- Wegman/Zadeck sparse conditional constant
  propagation over SSA.
* :mod:`repro.scalar.copyprop` -- copy propagation (forwarding of
  ``x = copy y``).
* :mod:`repro.scalar.dce` -- dead code elimination.
* :mod:`repro.scalar.simplify` -- local algebraic simplification.
* :mod:`repro.scalar.gvn` -- dominator-based global value numbering
  [AWZ88, RWZ88], the paper's cited companion SSA applications.
"""

from repro.scalar.sccp import SCCPResult, run_sccp
from repro.scalar.copyprop import propagate_copies
from repro.scalar.dce import eliminate_dead_code
from repro.scalar.simplify import simplify_instructions
from repro.scalar.gvn import run_gvn
from repro.scalar.mem2reg import promote_scalars

__all__ = [
    "run_gvn",
    "promote_scalars",
    "SCCPResult",
    "run_sccp",
    "propagate_copies",
    "eliminate_dead_code",
    "simplify_instructions",
]
