"""Copy propagation on SSA: forward ``x = copy y`` to uses of ``x``.

SSA makes this trivial (a copy's source is unique and dominates every use
of the copy).  Chains are collapsed transitively.  The copies themselves
are left in place for :mod:`repro.scalar.dce` to remove.
"""

from __future__ import annotations

from typing import Dict

from repro.ir.function import Function
from repro.ir.instructions import Assign
from repro.ir.values import Const, Ref, Value

from repro.obs.trace import traced
from repro.resilience.faultinject import fault_point


@traced("scalar.copyprop")
def propagate_copies(function: Function) -> int:
    """Replace uses of copy results by their (transitive) sources."""
    fault_point("scalar.copyprop")
    forward: Dict[str, Value] = {}
    for block in function:
        for inst in block:
            if isinstance(inst, Assign):
                forward[inst.result] = inst.src

    def resolve(value: Value) -> Value:
        seen = set()
        while isinstance(value, Ref) and value.name in forward:
            if value.name in seen:
                break
            seen.add(value.name)
            value = forward[value.name]
        return value

    mapping: Dict[str, Value] = {}
    for name in forward:
        final = resolve(Ref(name))
        if not (isinstance(final, Ref) and final.name == name):
            mapping[name] = final

    if not mapping:
        return 0
    count = 0
    for block in function:
        for inst in block:
            if isinstance(inst, Assign) and inst.result in mapping:
                # keep the copy's own source pointing one step (not through
                # itself) -- harmless either way
                pass
            before = [str(u) for u in inst.uses()]
            inst.replace_uses(mapping)
            count += sum(
                1 for b, a in zip(before, (str(u) for u in inst.uses())) if b != a
            )
        if block.terminator is not None:
            block.terminator.replace_uses(mapping)
    return count
