"""Dead code elimination on SSA.

A definition is live if it (transitively) feeds a store, a return, or a
branch condition.  Dead definitions are removed; control flow is untouched.
"""

from __future__ import annotations

from typing import List, Set

from repro.ir.function import Function
from repro.ir.instructions import Store
from repro.ir.values import Ref

from repro.obs.trace import traced


@traced("scalar.dce")
def eliminate_dead_code(function: Function) -> int:
    """Delete dead value definitions.  Returns how many were removed."""
    live: Set[str] = set()
    worklist: List[str] = []

    def mark(value) -> None:
        if isinstance(value, Ref) and value.name not in live:
            live.add(value.name)
            worklist.append(value.name)

    defs = function.definitions()
    for block in function:
        for inst in block:
            if isinstance(inst, Store):
                for value in inst.uses():
                    mark(value)
        if block.terminator is not None:
            for value in block.terminator.uses():
                mark(value)

    while worklist:
        name = worklist.pop()
        entry = defs.get(name)
        if entry is None:
            continue
        _, inst = entry
        for value in inst.uses():
            mark(value)

    removed = 0
    for block in function:
        kept = []
        for inst in block:
            if isinstance(inst, Store) or inst.result is None or inst.result in live:
                kept.append(inst)
            else:
                removed += 1
        block.instructions = kept
    if removed:
        function.dirty()
    return removed
