"""Dominator-based global value numbering.

The paper's section 2.1 points to [AWZ88] ("Detecting equality of variables
in programs") and [RWZ88] ("Global value numbers and redundant
computations") as the companion applications of SSA form.  This pass is the
standard dominator-tree-scoped hash-based GVN:

* walk the dominator tree in preorder with a scoped hash table;
* the key of a pure instruction is ``(op, canonical operands)`` --
  commutative operators sort their operands;
* an instruction whose key is already bound to a dominating definition is
  replaced by a copy of it (and its uses forwarded).

Besides removing redundancies, GVN helps the classifier: syntactically
different but equal invariants unify into one SSA name, so dependence
testing sees equal symbolic constants (ZIV proves more).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.dominators import DominatorTree, dominator_tree
from repro.ir.function import Function
from repro.ir.instructions import Assign, BinOp, Compare, Load, Phi, Store, UnOp
from repro.ir.opcodes import BinaryOp
from repro.ir.values import Const, Ref, Value

from repro.obs.trace import traced
from repro.resilience.faultinject import fault_point

_COMMUTATIVE = {BinaryOp.ADD, BinaryOp.MUL}


def _value_key(value: Value, numbering: Dict[str, str]):
    if isinstance(value, Const):
        return ("const", value.value)
    if isinstance(value, Ref):
        return ("ref", numbering.get(value.name, value.name))
    return ("?", repr(value))


def _instruction_key(inst, numbering: Dict[str, str]) -> Optional[Tuple]:
    if isinstance(inst, BinOp):
        lhs = _value_key(inst.lhs, numbering)
        rhs = _value_key(inst.rhs, numbering)
        if inst.op in _COMMUTATIVE and rhs < lhs:
            lhs, rhs = rhs, lhs
        return ("bin", inst.op.value, lhs, rhs)
    if isinstance(inst, UnOp):
        return ("neg", _value_key(inst.operand, numbering))
    if isinstance(inst, Compare):
        return (
            "cmp",
            inst.relation.value,
            _value_key(inst.lhs, numbering),
            _value_key(inst.rhs, numbering),
        )
    if isinstance(inst, Assign):
        return ("copy", _value_key(inst.src, numbering))
    # phis, loads and stores are not pure w.r.t. program position
    return None


@traced("scalar.gvn")
def run_gvn(function: Function, domtree: Optional[DominatorTree] = None) -> int:
    """Value-number ``function`` (SSA form) in place.

    Redundant pure instructions become copies of their dominating
    equivalent, and all uses are forwarded.  Returns the number of
    instructions eliminated.
    """
    fault_point("scalar.gvn")
    if domtree is None:
        domtree = dominator_tree(function)

    numbering: Dict[str, str] = {}  # SSA name -> representative name
    eliminated = 0
    # scoped table: list of (key, representative) frames per dom-tree node
    table: Dict[Tuple, str] = {}

    def visit(label: str) -> None:
        nonlocal eliminated
        added: List[Tuple] = []
        block = function.block(label)
        for position, inst in enumerate(block.instructions):
            if inst.result is None or isinstance(inst, (Phi, Load)):
                continue
            key = _instruction_key(inst, numbering)
            if key is None:
                continue
            if key[0] == "copy":
                # a copy is itself a renaming: number through it
                source = key[1]
                if source[0] == "ref":
                    numbering[inst.result] = source[1]
                continue
            existing = table.get(key)
            if existing is not None:
                numbering[inst.result] = numbering.get(existing, existing)
                block.instructions[position] = Assign(inst.result, Ref(existing))
                eliminated += 1
            else:
                table[key] = inst.result
                added.append(key)
        for child in domtree.children[label]:
            visit(child)
        for key in added:
            del table[key]

    import sys

    limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(limit, 4 * len(function.blocks) + 1000))
    try:
        visit(domtree.entry)
    finally:
        sys.setrecursionlimit(limit)

    if numbering:
        mapping = {name: Ref(rep) for name, rep in numbering.items()}
        for block in function:
            for inst in block:
                inst.replace_uses(mapping)
            if block.terminator is not None:
                block.terminator.replace_uses(mapping)
    if eliminated:
        function.dirty()
    return eliminated
