"""Promotion of unsubscripted memory scalars to registers.

The paper's tuples carry an ``ssalink`` because its compiler kept scalars
in memory: "load and store operations ... the ssalink [indicates] the
single reaching SSA name for this variable" and the SCR constraints allow
"loads and stores to unsubscripted variables" (section 3.1).  Our frontend
keeps scalars in registers, but IR written by hand (or imported) may use
``load @x`` / ``store @x, v``.  This pass promotes such memory scalars to
ordinary variables on the *named* IR — after which SSA construction gives
them the paper's ssalink for free — making the classifier's rules apply to
memory-resident counters too.

A memory name is promotable iff **every** access to it in the function is
unsubscripted (no aliasing is possible: memory objects are identified by
name).
"""

from __future__ import annotations

from typing import List, Set

from repro.ir.function import Function
from repro.ir.instructions import Assign, Load, Store

from repro.obs.trace import traced


@traced("scalar.mem2reg")
def promote_scalars(function: Function) -> List[str]:
    """Rewrite unsubscripted loads/stores into copies (named IR, in place).

    Returns the promoted memory names.  The promoted variable is named
    ``<array>`` if free, else ``<array>.mem``.
    """
    subscripted: Set[str] = set()
    scalar_use: Set[str] = set()
    for block in function:
        for inst in block:
            if isinstance(inst, (Load, Store)):
                if inst.indices is None:
                    scalar_use.add(inst.array)
                else:
                    subscripted.add(inst.array)

    promotable = sorted(scalar_use - subscripted)
    if not promotable:
        return []

    taken = set(function.definitions()) | set(function.params)
    names = {}
    for array in promotable:
        names[array] = array if array not in taken else function.fresh_name(f"{array}.mem")

    for block in function:
        for position, inst in enumerate(block.instructions):
            if isinstance(inst, Load) and inst.array in names and inst.indices is None:
                block.instructions[position] = Assign(inst.result, names[inst.array])
            elif isinstance(inst, Store) and inst.array in names and inst.indices is None:
                block.instructions[position] = Assign(names[inst.array], inst.value)

    function.arrays = [a for a in function.arrays if a not in names]
    function.dirty()
    return promotable
