"""Sparse conditional constant propagation (Wegman & Zadeck [WZ91]).

The classic SSA lattice pass: each SSA name is TOP (unexecuted), a known
integer constant, or BOTTOM (varying).  Flow edges become executable as
branches are decided; phi functions only merge over executable edges.

``run_sccp`` computes the lattice; ``apply`` rewrites constant uses to
:class:`~repro.ir.values.Const` operands (leaving the CFG shape intact --
we do not delete never-executed branches here, since later passes rely on
the loop structure; :mod:`repro.scalar.dce` can clean up).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.ir.function import Function
from repro.ir.instructions import (
    Assign,
    BinOp,
    Branch,
    Compare,
    Jump,
    Load,
    Phi,
    Return,
    Store,
    UnOp,
)
from repro.ir.interp import _apply as apply_binop  # reference integer semantics
from repro.ir.opcodes import BinaryOp
from repro.ir.values import Const, Ref, Value

from repro.obs.trace import traced
from repro.resilience.faultinject import fault_point

TOP = "top"
BOTTOM = "bottom"
# lattice values: TOP | int | BOTTOM


@dataclass
class SCCPResult:
    values: Dict[str, object]  # name -> TOP | int | BOTTOM
    executable_blocks: Set[str] = field(default_factory=set)

    def constant_of(self, name: str) -> Optional[int]:
        value = self.values.get(name, BOTTOM)
        if isinstance(value, int):
            return value
        return None


@traced("scalar.sccp")
def run_sccp(function: Function, apply: bool = True) -> SCCPResult:
    """Run SCCP; if ``apply``, rewrite constant uses in place."""
    fault_point("scalar.sccp")
    values: Dict[str, object] = {}
    for name in function.definitions():
        values[name] = TOP
    for param in function.params:
        values[param] = BOTTOM

    executable_edges: Set[Tuple[Optional[str], str]] = set()
    executable_blocks: Set[str] = set()
    flow_worklist: List[Tuple[Optional[str], str]] = [(None, function.entry_label)]
    ssa_worklist: List[str] = []

    uses_of: Dict[str, List[Tuple[str, object]]] = {}
    for block in function:
        for inst in block:
            for value in inst.uses():
                if isinstance(value, Ref):
                    uses_of.setdefault(value.name, []).append((block.label, inst))
        if block.terminator is not None:
            for value in block.terminator.uses():
                if isinstance(value, Ref):
                    uses_of.setdefault(value.name, []).append((block.label, block.terminator))

    def lattice_of(value: Value) -> object:
        if isinstance(value, Const):
            return value.value
        if isinstance(value, Ref):
            return values.get(value.name, BOTTOM)
        return BOTTOM

    def meet(a: object, b: object) -> object:
        if a == TOP:
            return b
        if b == TOP:
            return a
        if a == b:
            return a
        return BOTTOM

    def set_value(name: str, new: object) -> None:
        old = values.get(name, TOP)
        merged = meet(old, new)
        # lattice only ever descends
        if merged != old:
            values[name] = merged
            ssa_worklist.append(name)

    def evaluate(inst, block_label: str) -> None:
        if isinstance(inst, Phi):
            acc: object = TOP
            for pred, value in inst.incoming.items():
                if (pred, block_label) in executable_edges:
                    acc = meet(acc, lattice_of(value))
            set_value(inst.result, acc)
            return
        if isinstance(inst, Assign):
            set_value(inst.result, lattice_of(inst.src))
            return
        if isinstance(inst, UnOp):
            operand = lattice_of(inst.operand)
            if isinstance(operand, int):
                set_value(inst.result, -operand)
            elif operand == BOTTOM:
                set_value(inst.result, BOTTOM)
            return
        if isinstance(inst, BinOp):
            lhs = lattice_of(inst.lhs)
            rhs = lattice_of(inst.rhs)
            if isinstance(lhs, int) and isinstance(rhs, int):
                try:
                    set_value(inst.result, apply_binop(inst.op, lhs, rhs))
                except Exception:
                    set_value(inst.result, BOTTOM)
            elif lhs == BOTTOM or rhs == BOTTOM:
                folded = _algebraic_identity(inst.op, lhs, rhs)
                set_value(inst.result, folded if folded is not None else BOTTOM)
            return
        if isinstance(inst, Compare):
            lhs = lattice_of(inst.lhs)
            rhs = lattice_of(inst.rhs)
            if isinstance(lhs, int) and isinstance(rhs, int):
                set_value(inst.result, 1 if inst.relation.holds(lhs, rhs) else 0)
            elif lhs == BOTTOM or rhs == BOTTOM:
                set_value(inst.result, BOTTOM)
            return
        if isinstance(inst, Load):
            if inst.result is not None:
                set_value(inst.result, BOTTOM)
            return
        # stores define nothing

    def flow_into(pred: Optional[str], label: str) -> None:
        edge = (pred, label)
        if edge in executable_edges:
            # re-evaluate phis: a new edge may refine them -- handled when
            # the edge is first added; repeated adds are no-ops
            return
        flow_worklist.append(edge)

    def process_block(label: str) -> None:
        block = function.block(label)
        for inst in block:
            evaluate(inst, label)
        terminator = block.terminator
        if isinstance(terminator, Jump):
            flow_into(label, terminator.target)
        elif isinstance(terminator, Branch):
            cond = lattice_of(terminator.cond)
            if cond == BOTTOM or cond == TOP:
                # TOP conservatively treated as both (keeps termination)
                flow_into(label, terminator.true_target)
                flow_into(label, terminator.false_target)
            elif isinstance(cond, int):
                flow_into(label, terminator.true_target if cond else terminator.false_target)
        # Return: nothing

    def process_terminator(label: str) -> None:
        terminator = function.block(label).terminator
        if isinstance(terminator, Branch):
            cond = lattice_of(terminator.cond)
            if cond == BOTTOM:
                flow_into(label, terminator.true_target)
                flow_into(label, terminator.false_target)
            elif isinstance(cond, int):
                flow_into(
                    label,
                    terminator.true_target if cond else terminator.false_target,
                )

    while flow_worklist or ssa_worklist:
        if flow_worklist:
            pred, label = flow_worklist.pop()
            first_visit = label not in executable_blocks
            edge_new = (pred, label) not in executable_edges
            executable_edges.add((pred, label))
            executable_blocks.add(label)
            if first_visit:
                process_block(label)
            elif edge_new:
                # only phis need re-evaluation for a new incoming edge
                for phi in function.block(label).phis():
                    evaluate(phi, label)
            continue
        name = ssa_worklist.pop()
        for block_label, user in uses_of.get(name, []):
            if block_label not in executable_blocks:
                continue
            if isinstance(user, (Jump, Branch, Return)):
                process_terminator(block_label)
            else:
                evaluate(user, block_label)

    result = SCCPResult(values=values, executable_blocks=executable_blocks)
    if apply:
        apply_sccp(function, result)
    return result


def _algebraic_identity(op: BinaryOp, lhs: object, rhs: object) -> Optional[int]:
    """x*0 = 0 even when x is BOTTOM (and similar)."""
    if op is BinaryOp.MUL and (lhs == 0 or rhs == 0):
        return 0
    if op is BinaryOp.MOD and rhs == 1:
        return 0
    return None


def apply_sccp(function: Function, result: SCCPResult) -> int:
    """Rewrite uses of constant names to literal operands.  Returns count."""
    mapping: Dict[str, Value] = {}
    for name, value in result.values.items():
        if isinstance(value, int):
            mapping[name] = Const(value)
    if not mapping:
        return 0
    count = 0
    for block in function:
        for inst in block:
            before = [str(u) for u in inst.uses()]
            inst.replace_uses(mapping)
            after = [str(u) for u in inst.uses()]
            count += sum(1 for b, a in zip(before, after) if b != a)
        if block.terminator is not None:
            block.terminator.replace_uses(mapping)
    return count
