"""Local algebraic simplification.

Rewrites instructions whose result is statically determined by identities
(``x + 0``, ``x * 1``, ``x - x``, single-input phis, ...) into copies or
constants.  Run between SCCP and copy propagation for best effect.
"""

from __future__ import annotations

from repro.ir.function import Function
from repro.ir.instructions import Assign, BinOp, Phi, UnOp
from repro.ir.opcodes import BinaryOp
from repro.ir.values import Const, Ref, Value

from repro.obs.trace import traced
from repro.resilience.faultinject import fault_point


@traced("scalar.simplify")
def simplify_instructions(function: Function) -> int:
    """Apply local identities in place.  Returns number of rewrites."""
    fault_point("scalar.simplify")
    count = 0
    for block in function:
        converted_phi = False
        for position, inst in enumerate(block.instructions):
            replacement = _simplify(inst)
            if replacement is not None:
                if isinstance(inst, Phi):
                    converted_phi = True
                block.instructions[position] = replacement
                count += 1
        if converted_phi:
            # keep the phis-first block invariant: a phi rewritten to a copy
            # must move below the remaining phi prefix (its source is a
            # block-entry value, so evaluation order is preserved)
            phis = [i for i in block.instructions if isinstance(i, Phi)]
            rest = [i for i in block.instructions if not isinstance(i, Phi)]
            block.instructions = phis + rest
    if count:
        function.dirty()
    return count


def _values_equal(a: Value, b: Value) -> bool:
    return a == b


def _simplify(inst):
    if isinstance(inst, Phi):
        values = list(inst.incoming.values())
        if values and all(_values_equal(v, values[0]) for v in values[1:]):
            return Assign(inst.result, values[0])
        return None
    if isinstance(inst, UnOp):
        if isinstance(inst.operand, Const):
            return Assign(inst.result, Const(-inst.operand.value))
        return None
    if not isinstance(inst, BinOp):
        return None

    lhs, rhs, op = inst.lhs, inst.rhs, inst.op
    zero = Const(0)
    one = Const(1)

    if op is BinaryOp.ADD:
        if lhs == zero:
            return Assign(inst.result, rhs)
        if rhs == zero:
            return Assign(inst.result, lhs)
    elif op is BinaryOp.SUB:
        if rhs == zero:
            return Assign(inst.result, lhs)
        if _values_equal(lhs, rhs) and isinstance(lhs, Ref):
            return Assign(inst.result, zero)
    elif op is BinaryOp.MUL:
        if lhs == one:
            return Assign(inst.result, rhs)
        if rhs == one:
            return Assign(inst.result, lhs)
        if lhs == zero or rhs == zero:
            return Assign(inst.result, zero)
    elif op is BinaryOp.DIV:
        if rhs == one:
            return Assign(inst.result, lhs)
    elif op is BinaryOp.MOD:
        if rhs == one:
            return Assign(inst.result, zero)
    elif op is BinaryOp.EXP:
        if rhs == one:
            return Assign(inst.result, lhs)
        if rhs == zero:
            return Assign(inst.result, one)
    return None
