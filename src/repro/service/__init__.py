"""The fault-tolerant analysis service behind ``repro serve``.

The pipeline's failure-isolation machinery (taxonomy, budgets,
degradation records, fault injection) was built for one-shot CLI runs;
this package lifts it to a long-running daemon without weakening any of
its contracts:

* :mod:`~repro.service.protocol` -- length-prefixed JSON frames with
  enumerable failure modes (oversized / truncated / undecodable);
* :mod:`~repro.service.worker` -- one analysis per job in a
  crash-isolated child process, responses shaped like flight-recorder
  records;
* :mod:`~repro.service.pool` -- fingerprint-sharded dispatch, hung
  workers killed and respawned, crashed workers detected by pipe EOF;
* :mod:`~repro.service.breaker` -- per-fingerprint circuit breaker
  shedding inputs that keep killing workers;
* :mod:`~repro.service.cache` -- bounded LRU of clean results, failures
  contained as misses;
* :mod:`~repro.service.server` -- the accept loop tying it together
  under per-request metrics isolation and graceful SIGTERM drain;
* :mod:`~repro.service.client` -- the blocking client the load-test
  harness drives.

The serving contract: only malformed or oversized requests yield
``status: error``; every analysis-side failure degrades with structured
:class:`~repro.resilience.isolation.DegradationRecord` payloads and
RES5xx diagnostics, and the server never dies with a request in hand.
"""

from repro.service.breaker import CircuitBreaker
from repro.service.cache import ResultCache, cache_key
from repro.service.client import ServiceClient
from repro.service.pool import JobOutcome, WorkerPool
from repro.service.protocol import (
    MAX_MESSAGE_BYTES,
    OversizedMessage,
    ProtocolError,
    recv_message,
    send_message,
)
from repro.service.server import AnalysisServer
from repro.service.worker import CRASH_EXIT_CODE, budget_from_options, run_job

__all__ = [
    "AnalysisServer",
    "CRASH_EXIT_CODE",
    "CircuitBreaker",
    "JobOutcome",
    "MAX_MESSAGE_BYTES",
    "OversizedMessage",
    "ProtocolError",
    "ResultCache",
    "ServiceClient",
    "WorkerPool",
    "budget_from_options",
    "cache_key",
    "recv_message",
    "run_job",
    "send_message",
]
