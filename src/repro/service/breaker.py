"""Per-fingerprint circuit breaker: shed load that keeps killing workers.

A program that crashes a worker once will usually crash the respawned
worker too -- same bytes, same bug.  Without a breaker, a single
pathological fingerprint submitted in a loop turns into a crash-respawn
treadmill that starves every healthy request.  The breaker is the
standard three-state machine, keyed by source fingerprint:

* **closed** -- requests flow; consecutive failures are counted, and
  hitting ``threshold`` opens the circuit;
* **open** -- requests for that fingerprint are *shed*: the server
  answers immediately with a structured degraded response
  (``circuit-open`` / RES508) instead of burning another worker;
* **half-open** -- after ``cooldown_s`` one trial request is let
  through; success closes the circuit, failure re-opens it for another
  cooldown.  A trial that never reports back (its thread died, or the
  request was answered from cache without a dispatch) expires after a
  further ``cooldown_s``, admitting a fresh trial -- half-open can
  never wedge a fingerprint into being shed forever.

Failures that count are worker-level ones (crash, timeout, internal
error after retries).  Client-input errors (``frontend-error``,
``malformed-request``) never trip the breaker: they cost microseconds
and shedding them would punish a *valid* fingerprint that happens to
hash near a bad one.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict

from repro.obs import metrics as _metrics

__all__ = ["CircuitBreaker"]

_CLOSED = "closed"
_OPEN = "open"
_HALF_OPEN = "half-open"


class _Circuit:
    __slots__ = ("state", "failures", "opened_at", "opened_count", "trial_at")

    def __init__(self) -> None:
        self.state = _CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self.opened_count = 0
        self.trial_at = 0.0


class CircuitBreaker:
    """Thread-safe per-key circuit breaker.

    ``clock`` is injectable (tests pass a fake) and defaults to
    :func:`time.monotonic`.
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._circuits: Dict[str, _Circuit] = {}
        self._lock = threading.Lock()
        self.shed_total = 0

    # ------------------------------------------------------------------
    def allow(self, key: str) -> bool:
        """True when a request for ``key`` may be dispatched.

        An open circuit past its cooldown transitions to half-open and
        admits exactly one trial; a shed is counted against
        ``service.breaker.shed``.
        """
        with self._lock:
            circuit = self._circuits.get(key)
            if circuit is None or circuit.state == _CLOSED:
                return True
            if circuit.state == _OPEN:
                if self._clock() - circuit.opened_at >= self.cooldown_s:
                    circuit.state = _HALF_OPEN
                    circuit.trial_at = self._clock()
                    return True
                self.shed_total += 1
                _metrics.inc("service.breaker.shed")
                return False
            # half-open: one trial is in flight; shed the rest -- unless
            # the trial is stale (its thread died, or it short-circuited
            # without reporting), in which case a full cooldown since the
            # trial started admits a fresh one so the key is never shed
            # forever
            if self._clock() - circuit.trial_at >= self.cooldown_s:
                circuit.trial_at = self._clock()
                return True
            self.shed_total += 1
            _metrics.inc("service.breaker.shed")
            return False

    def record_success(self, key: str) -> None:
        with self._lock:
            circuit = self._circuits.get(key)
            if circuit is None:
                return
            circuit.state = _CLOSED
            circuit.failures = 0

    def record_failure(self, key: str) -> None:
        with self._lock:
            circuit = self._circuits.setdefault(key, _Circuit())
            if circuit.state == _HALF_OPEN:
                # the trial failed: straight back to open
                circuit.state = _OPEN
                circuit.opened_at = self._clock()
                circuit.opened_count += 1
                _metrics.inc("service.breaker.opened")
                return
            circuit.failures += 1
            if circuit.state == _CLOSED and circuit.failures >= self.threshold:
                circuit.state = _OPEN
                circuit.opened_at = self._clock()
                circuit.opened_count += 1
                _metrics.inc("service.breaker.opened")

    # ------------------------------------------------------------------
    def state(self, key: str) -> str:
        with self._lock:
            circuit = self._circuits.get(key)
            return _CLOSED if circuit is None else circuit.state

    def retry_after_s(self, key: str) -> float:
        """Seconds until an open circuit's next half-open trial (0 if closed)."""
        with self._lock:
            circuit = self._circuits.get(key)
            if circuit is None or circuit.state != _OPEN:
                return 0.0
            return max(
                0.0, self.cooldown_s - (self._clock() - circuit.opened_at)
            )

    def snapshot(self) -> Dict[str, Any]:
        """Aggregate state for ``ready``/``stats`` responses."""
        with self._lock:
            open_keys = sorted(
                key
                for key, circuit in self._circuits.items()
                if circuit.state != _CLOSED
            )
            return {
                "tracked": len(self._circuits),
                "open": open_keys,
                "shed_total": self.shed_total,
                "threshold": self.threshold,
                "cooldown_s": self.cooldown_s,
            }
