"""Fingerprint-keyed result cache: bounded, LRU, crash-tolerant.

A re-submitted program is byte-identical far more often than not (CI
runs, editor save-loops), so the server caches **clean** analysis
responses keyed on ``(source fingerprint, canonicalized options)`` --
the same fingerprint :mod:`repro.obs.runlog` stamps on flight-recorder
records.  Degraded or errored responses are never cached: a crash is
not a result, and caching one would pin a transient failure onto a
fingerprint for the cache's whole lifetime.

The cache is an ordinary LRU over an :class:`~collections.OrderedDict`
behind a lock (connection threads share it).  It sits behind the
``serve.cache`` fault point, and the server treats any cache failure as
a miss -- the cache is an accelerator, never a dependency, so a broken
cache degrades throughput, not correctness.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.obs import metrics as _metrics
from repro.resilience.faultinject import fault_point

__all__ = ["ResultCache", "cache_key"]


def cache_key(fingerprint: str, options: Optional[Dict[str, Any]] = None) -> str:
    """The cache key of one program under one option set.

    Options change what the analysis computes (ranges, invariants,
    optimize, budget caps), so they are part of the key -- canonicalized
    through sorted-key JSON, which is stable across dict orderings.
    """
    if not options:
        return fingerprint
    return fingerprint + "|" + json.dumps(options, sort_keys=True, default=str)


class ResultCache:
    """A thread-safe bounded LRU of clean analysis responses."""

    def __init__(self, capacity: int = 256):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._entries: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached response for ``key``, refreshed to most-recent, or None."""
        fault_point("serve.cache")
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                _metrics.inc("service.cache.misses")
                return None
            self._entries.move_to_end(key)
            _metrics.inc("service.cache.hits")
            return entry

    def put(self, key: str, value: Dict[str, Any]) -> None:
        """Insert (or refresh) ``key``, evicting the least-recently used."""
        fault_point("serve.cache")
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                _metrics.inc("service.cache.evictions")

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def snapshot(self) -> Dict[str, Any]:
        """Size/capacity for ``ready``/``stats`` responses."""
        with self._lock:
            return {"entries": len(self._entries), "capacity": self.capacity}


def safe_lookup(cache: ResultCache, key: str) -> Tuple[Optional[Dict[str, Any]], bool]:
    """``cache.get`` with containment: a cache failure reads as a miss.

    Returns ``(value, cache_ok)``; ``cache_ok`` is False when the lookup
    itself failed (injected ``serve.cache`` fault, internal error), which
    the server counts but otherwise ignores -- graceful degradation of
    the accelerator, not the request.
    """
    try:
        return cache.get(key), True
    except Exception:  # noqa: BLE001 - the cache must never fail a request
        _metrics.inc("service.cache.errors")
        return None, False


def safe_store(cache: ResultCache, key: str, value: Dict[str, Any]) -> bool:
    """``cache.put`` with the same containment as :func:`safe_lookup`."""
    try:
        cache.put(key, value)
        return True
    except Exception:  # noqa: BLE001
        _metrics.inc("service.cache.errors")
        return False
