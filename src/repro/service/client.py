"""A minimal blocking client for the analysis service.

Used by the load-test harness, the service tests, and anyone scripting
against ``repro serve``.  One :class:`ServiceClient` wraps one TCP
connection; requests are serialized on it (the protocol is strict
request/response), so concurrent callers should each open their own
client -- exactly what :mod:`benchmarks.loadtest` does with one client
per simulated user.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, List, Optional

from repro.service.protocol import (
    MAX_MESSAGE_BYTES,
    ProtocolError,
    recv_message,
    send_message,
)

__all__ = ["ServiceClient"]


class ServiceClient:
    """A blocking request/response client over one connection."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout_s: float = 30.0,
        max_message_bytes: int = MAX_MESSAGE_BYTES,
    ):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.max_message_bytes = max_message_bytes
        self._sock: Optional[socket.socket] = None

    # ------------------------------------------------------------------
    def connect(self) -> "ServiceClient":
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request and wait for its response.

        Raises :class:`ProtocolError` if the server closes without
        answering (the load-test counts that as a protocol failure --
        the serving contract says it must never happen).
        """
        self.connect()
        assert self._sock is not None
        send_message(self._sock, payload)
        response = recv_message(self._sock, self.max_message_bytes)
        if response is None:
            raise ProtocolError("server closed the connection mid-exchange")
        return response

    def analyze(
        self,
        source: str,
        name: str = "main",
        options: Optional[Dict[str, Any]] = None,
        **extra: Any,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"op": "analyze", "source": source, "name": name}
        if options:
            payload["options"] = options
        payload.update(extra)
        return self.request(payload)

    def analyze_batch(
        self,
        programs: List[Dict[str, Any]],
        options: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"op": "analyze", "programs": programs}
        if options:
            payload["options"] = options
        return self.request(payload)

    def health(self) -> Dict[str, Any]:
        return self.request({"op": "health"})

    def ready(self) -> Dict[str, Any]:
        return self.request({"op": "ready"})

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})
