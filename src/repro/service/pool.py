"""The sharded worker pool: dispatch, hung-worker kill, crash respawn.

Requests shard by source **fingerprint** (crc32 of the same fingerprint
the flight recorder stamps), so a given program always lands on the
same worker -- deterministic placement that keeps a pathological input
blast-radius to one shard and gives any future per-worker warm state a
stable home.  Each worker owns a duplex pipe and a parent-side
:class:`threading.Lock`; a job holds the lock for its whole round-trip,
so concurrent requests to one shard serialize while different shards
run genuinely in parallel.

The failure contract, per dispatch:

* **crash** -- the worker died mid-job (broken/EOF pipe).  The pool
  respawns the shard and reports ``worker-crash`` (policy RETRY: the
  server re-dispatches with backoff onto the fresh worker);
* **hang** -- no response within the timeout.  The pool SIGKILLs the
  worker, respawns, and reports ``request-timeout`` (policy DEGRADE:
  a re-run would hang the same way);
* **drain** -- :meth:`WorkerPool.shutdown` takes every shard lock (so
  in-flight jobs finish), sends each worker the ``None`` sentinel, and
  joins with a bounded grace period before terminating stragglers.

Workers are started via the ``forkserver`` context where available
(fork-safety with the server's connection threads) and ``spawn``
elsewhere.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.obs import metrics as _metrics
from repro.resilience.faultinject import fault_point
from repro.service.worker import worker_main

__all__ = ["JobOutcome", "WorkerPool"]


@dataclass
class JobOutcome:
    """What one dispatch produced: a response, a crash, or a timeout."""

    ok: bool
    response: Optional[Dict[str, Any]] = None
    error_code: Optional[str] = None
    error_message: Optional[str] = None
    crashed: bool = False
    timed_out: bool = False
    worker_id: int = -1
    elapsed_s: float = 0.0


def _pool_context():
    try:
        return multiprocessing.get_context("forkserver")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context("spawn")


class _Worker:
    """One shard: process + parent pipe end + dispatch lock."""

    __slots__ = ("index", "process", "conn", "lock", "jobs", "respawns")

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.conn = None
        self.lock = threading.Lock()
        self.jobs = 0
        self.respawns = 0


class WorkerPool:
    """A fixed-size pool of analysis worker processes.

    ``fault_spec`` (points/seed/rate/only_first/transient) is forwarded
    to every worker, arming the deterministic fault-injection harness
    inside the children -- the chaos path of the load-test harness and
    CI.  ``request_timeout_s`` is the hung-worker backstop; per-job
    ``timeout_s`` may only tighten it.
    """

    def __init__(
        self,
        size: int = 2,
        request_timeout_s: float = 30.0,
        fault_spec: Optional[Dict[str, Any]] = None,
        budget_spec: Optional[Dict[str, Any]] = None,
        mp_context=None,
    ):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.size = size
        self.request_timeout_s = request_timeout_s
        self.fault_spec = fault_spec
        self.budget_spec = budget_spec
        self._ctx = mp_context if mp_context is not None else _pool_context()
        self._workers: List[_Worker] = [_Worker(i) for i in range(size)]
        self._started = False
        self.crashes = 0
        self.timeouts = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        for worker in self._workers:
            self._spawn(worker)
        self._started = True

    def _spawn(self, worker: _Worker) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        fault_spec = self.fault_spec
        if fault_spec is not None and fault_spec.get("seed") is not None:
            # each worker *incarnation* draws a distinct deterministic
            # substream: otherwise every respawn replays the base stream
            # from the top and rate-based injection degenerates to
            # "first-job crash always/never"
            fault_spec = dict(fault_spec)
            fault_spec["seed"] = (
                fault_spec["seed"] + worker.index * 1009 + worker.respawns * 101
            )
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, worker.index, fault_spec, self.budget_spec),
            daemon=True,
            name=f"repro-worker-{worker.index}",
        )
        process.start()
        # the parent must drop its handle on the child end, or a dead
        # worker's pipe never reads as EOF
        child_conn.close()
        worker.process = process
        worker.conn = parent_conn

    def _respawn(self, worker: _Worker) -> None:
        if worker.conn is not None:
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
        if worker.process is not None and worker.process.is_alive():
            worker.process.kill()
            worker.process.join(timeout=2.0)
        worker.respawns += 1  # before _spawn: the incarnation seed uses it
        self._spawn(worker)
        _metrics.inc("service.worker.respawns")

    def alive_count(self) -> int:
        return sum(
            1
            for worker in self._workers
            if worker.process is not None and worker.process.is_alive()
        )

    def shutdown(self, grace_s: float = 5.0) -> None:
        """Drain and stop every worker (idempotent).

        Taking each shard lock first means in-flight jobs complete
        before their worker sees the sentinel -- the pool half of the
        server's graceful SIGTERM drain.
        """
        if not self._started:
            return
        self._started = False
        deadline = time.monotonic() + grace_s
        for worker in self._workers:
            with worker.lock:
                if worker.conn is not None:
                    try:
                        worker.conn.send(None)
                    except (BrokenPipeError, OSError):
                        pass
                    try:
                        worker.conn.close()
                    except OSError:  # pragma: no cover
                        pass
                    worker.conn = None
        for worker in self._workers:
            process = worker.process
            if process is None:
                continue
            process.join(timeout=max(0.1, deadline - time.monotonic()))
            if process.is_alive():
                process.kill()
                process.join(timeout=1.0)
            worker.process = None

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def shard_of(self, fingerprint: str) -> int:
        """The worker index a fingerprint deterministically maps to."""
        return zlib.crc32(fingerprint.encode("utf-8")) % self.size

    def submit(
        self, job: Dict[str, Any], timeout_s: Optional[float] = None
    ) -> JobOutcome:
        """Dispatch one job to its shard and wait for the outcome.

        Thread-safe; never raises for worker failures (those come back
        as structured :class:`JobOutcome`\\ s).  Raises only for the
        armed ``serve.dispatch`` fault point and misuse (unstarted
        pool), both of which the server contains per-request.
        """
        fault_point("serve.dispatch")
        if not self._started:
            raise RuntimeError("WorkerPool.submit before start()")
        timeout = self.request_timeout_s
        if timeout_s is not None:
            timeout = min(timeout, timeout_s)
        worker = self._workers[self.shard_of(job.get("fingerprint") or "")]
        started = time.perf_counter()
        with worker.lock:
            if worker.process is None or not worker.process.is_alive():
                # crashed between jobs (or killed by a previous timeout)
                self._respawn(worker)
            worker.jobs += 1
            try:
                worker.conn.send(job)
            except (BrokenPipeError, OSError):
                return self._crashed(worker, started)
            try:
                if not worker.conn.poll(timeout):
                    return self._hung(worker, started, timeout)
                response = worker.conn.recv()
            except (EOFError, OSError):
                return self._crashed(worker, started)
        return JobOutcome(
            ok=True,
            response=response,
            worker_id=worker.index,
            elapsed_s=time.perf_counter() - started,
        )

    def _crashed(self, worker: _Worker, started: float) -> JobOutcome:
        self.crashes += 1
        _metrics.inc("service.worker.crashes")
        exitcode = None
        if worker.process is not None:
            # the pipe EOFs before the child is reaped; a short join
            # makes the exit code available for the error message
            worker.process.join(timeout=1.0)
            exitcode = worker.process.exitcode
        self._respawn(worker)
        return JobOutcome(
            ok=False,
            error_code="worker-crash",
            error_message=(
                f"worker {worker.index} died mid-job "
                f"(exit code {exitcode}); respawned"
            ),
            crashed=True,
            worker_id=worker.index,
            elapsed_s=time.perf_counter() - started,
        )

    def _hung(
        self, worker: _Worker, started: float, timeout: float
    ) -> JobOutcome:
        self.timeouts += 1
        _metrics.inc("service.timeouts")
        self._respawn(worker)  # kills the hung process first
        return JobOutcome(
            ok=False,
            error_code="request-timeout",
            error_message=(
                f"worker {worker.index} gave no response within "
                f"{timeout:.3g}s; killed and respawned"
            ),
            timed_out=True,
            worker_id=worker.index,
            elapsed_s=time.perf_counter() - started,
        )

    def snapshot(self) -> Dict[str, Any]:
        """Pool state for ``ready``/``stats`` responses."""
        return {
            "size": self.size,
            "alive": self.alive_count(),
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "respawns": sum(w.respawns for w in self._workers),
            "jobs": sum(w.jobs for w in self._workers),
        }
