"""The service wire protocol: length-prefixed JSON frames.

One message is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  The framing is deliberately dumb -- no streaming,
no chunking, no content negotiation -- because the failure modes of dumb
framing are *enumerable*: a frame can be oversized (the length header
exceeds :data:`MAX_MESSAGE_BYTES`), truncated (the peer died mid-frame),
or undecodable (not JSON / not an object).  Each of those maps onto a
structured error the server can answer instead of dying.

Requests are JSON objects with an ``op`` field::

    {"op": "analyze", "source": "...", "options": {"ranges": true}}
    {"op": "analyze", "programs": [{"name": "f", "source": "..."}]}
    {"op": "health"} | {"op": "ready"} | {"op": "stats"}

Responses always carry ``status`` (``ok`` / ``degraded`` / ``error``)
and echo ``op``; ``analyze`` responses carry per-program ``results``
with the flight-recorder record, degradations, and RES5xx diagnostics.
A ``degraded`` response is a *successful* protocol exchange -- the
serving contract is that only a malformed or oversized request yields
``status: error``, and nothing short of a dead TCP connection yields no
response at all.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Optional

__all__ = [
    "MAX_MESSAGE_BYTES",
    "OversizedMessage",
    "ProtocolError",
    "error_response",
    "recv_message",
    "send_message",
]

#: ceiling on one frame's payload; a generous multiple of the largest
#: example corpus request, small enough that a length-header typo cannot
#: make the server buffer gigabytes
MAX_MESSAGE_BYTES = 4 * 1024 * 1024

_HEADER = struct.Struct("!I")


class ProtocolError(Exception):
    """A frame violated the protocol (bad JSON, truncated, not an object)."""

    code = "malformed-request"


class OversizedMessage(ProtocolError):
    """A frame's length header exceeded the negotiated maximum."""

    code = "request-overflow"

    def __init__(self, size: int, limit: int):
        super().__init__(
            f"message of {size} bytes exceeds the {limit}-byte limit"
        )
        self.size = size
        self.limit = limit


def send_message(
    sock: socket.socket,
    obj: Dict[str, Any],
    max_bytes: Optional[int] = None,
) -> None:
    """Serialize ``obj`` and send it as one frame.

    With ``max_bytes`` set, raises :class:`OversizedMessage` *before*
    sending anything when the serialized frame would exceed it -- the
    sender can then shrink the payload and retry on a still-clean
    stream.  The server bounds its responses this way so a peer
    receiving with the same limit never chokes on a successful
    exchange.
    """
    body = json.dumps(obj, sort_keys=True, default=str).encode("utf-8")
    if max_bytes is not None and len(body) > max_bytes:
        raise OversizedMessage(len(body), max_bytes)
    sock.sendall(_HEADER.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes, or None on clean EOF at a boundary.

    EOF *inside* a frame is a protocol violation (the peer died
    mid-message), distinct from the clean close between frames.
    """
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 65536))
        if not chunk:
            if remaining == count:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining}/{count} "
                "bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_message(
    sock: socket.socket, max_bytes: int = MAX_MESSAGE_BYTES
) -> Optional[Dict[str, Any]]:
    """Receive one frame; None on clean EOF.

    Raises :class:`OversizedMessage` without reading the body (the
    caller answers the error and closes -- draining an attacker-sized
    body would be a resource hole), and :class:`ProtocolError` for
    truncation or undecodable payloads.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (size,) = _HEADER.unpack(header)
    if size > max_bytes:
        raise OversizedMessage(size, max_bytes)
    body = _recv_exact(sock, size)
    if body is None:  # EOF exactly between header and body
        raise ProtocolError("connection closed after frame header")
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable frame: {error}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("frame payload is not a JSON object")
    return obj


def error_response(
    code: str, message: str, op: Optional[str] = None
) -> Dict[str, Any]:
    """The structured ``status: error`` response for a request-level fault."""
    response: Dict[str, Any] = {
        "status": "error",
        "error": {"code": code, "message": message},
    }
    if op is not None:
        response["op"] = op
    return response
