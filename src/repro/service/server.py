"""The ``repro serve`` daemon: accept, shard, degrade, never die.

:class:`AnalysisServer` listens on a TCP socket speaking the
length-prefixed JSON protocol of :mod:`repro.service.protocol` and runs
every analysis inside the :mod:`repro.service.pool` worker processes.
The serving contract, in one line: **only a malformed or oversized
request yields** ``status: error``; every analysis failure -- worker
crash, hang, budget blow-out, open circuit -- comes back as a
``status: degraded`` response carrying the same
:class:`~repro.resilience.isolation.DegradationRecord` / RES5xx payload
the CLI's degradation machinery produces, and the server itself stays
up.

Per ``analyze`` request the server:

1. validates and fingerprints each submitted program (a batch request
   shards its independent programs across the pool by fingerprint);
2. consults the :class:`ResultCache` (clean results only; any cache
   failure reads as a miss) -- before the breaker, so a hit costs no
   worker and never absorbs a half-open trial;
3. consults the per-fingerprint :class:`CircuitBreaker` -- open circuits
   shed immediately with ``circuit-open`` / RES508;
4. dispatches through :func:`~repro.resilience.retry.call_with_retry`,
   so a crashed worker (``worker-crash``, policy RETRY) gets bounded
   retries with backoff on the respawned shard, while a hung worker
   (``request-timeout``, policy DEGRADE) is killed once and degraded;
5. wraps the whole exchange in a per-request
   :func:`repro.obs.metrics.isolated` registry, so one request's
   counters never bleed into another's while invocation-wide totals
   still accumulate in the server registry.

Graceful drain: SIGTERM/SIGINT (wired by the CLI) call
:meth:`AnalysisServer.stop`, which stops accepting, lets in-flight
connections finish within a grace period, drains the pool, and exits
cleanly.
"""

from __future__ import annotations

import contextvars
import dataclasses
import random
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import metrics as _metrics
from repro.obs.runlog import RunLogWriter, source_fingerprint
from repro.obs.trace import event as _trace_event
from repro.obs.trace import span as _trace_span
from repro.resilience.budget import SERVICE_BUDGET, AnalysisBudget
from repro.resilience.errors import (
    ReproError,
    RecoveryPolicy,
    error_code_info,
    wrap_exception,
)
from repro.resilience.isolation import DegradationLog
from repro.resilience.retry import SERVICE_RETRY, RetryPolicy, call_with_retry
from repro.service.breaker import CircuitBreaker
from repro.service.cache import ResultCache, cache_key, safe_lookup, safe_store
from repro.service.pool import JobOutcome, WorkerPool
from repro.service.protocol import (
    MAX_MESSAGE_BYTES,
    OversizedMessage,
    ProtocolError,
    error_response,
    recv_message,
    send_message,
)

__all__ = ["AnalysisServer"]

#: serve-layer error code -> RES5xx diagnostic surfaced on the response
_DIAG_FOR_CODE = {
    "worker-crash": "RES506",
    "request-timeout": "RES507",
    "circuit-open": "RES508",
    "response-overflow": "RES509",
}


def _degradation_payload(log: DegradationLog) -> List[Dict[str, Any]]:
    return [dataclasses.asdict(record) for record in log.records]


class AnalysisServer:
    """A fault-tolerant analysis service over a sharded worker pool."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        pool_size: int = 2,
        request_timeout_s: float = 10.0,
        idle_timeout_s: Optional[float] = 60.0,
        cache_capacity: int = 256,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 30.0,
        retry_policy: RetryPolicy = SERVICE_RETRY,
        retry_rng: Optional[random.Random] = None,
        fault_spec: Optional[Dict[str, Any]] = None,
        runlog_dir: Optional[str] = None,
        default_budget: AnalysisBudget = SERVICE_BUDGET,
        max_message_bytes: int = MAX_MESSAGE_BYTES,
    ):
        self.host = host
        self.port = port
        self.request_timeout_s = request_timeout_s
        # a connection that sends no (or only a partial) frame for this
        # long is dropped: a dribbling client must not pin a thread
        # forever (None / 0 disables -- tests of blocking behaviour)
        self.idle_timeout_s = idle_timeout_s or None
        self.retry_policy = retry_policy
        self.retry_rng = retry_rng
        self.default_budget = default_budget
        self.max_message_bytes = max_message_bytes
        self.pool = WorkerPool(
            size=pool_size,
            request_timeout_s=request_timeout_s,
            fault_spec=fault_spec,
            budget_spec=dataclasses.asdict(default_budget),
        )
        self.cache = ResultCache(capacity=cache_capacity)
        self.breaker = CircuitBreaker(
            threshold=breaker_threshold, cooldown_s=breaker_cooldown_s
        )
        self.runlog: Optional[RunLogWriter] = (
            RunLogWriter(runlog_dir) if runlog_dir else None
        )
        self.address: Optional[Tuple[str, int]] = None
        self.started_at: Optional[float] = None
        self.requests_served = 0
        self._socket: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._conn_threads: List[threading.Thread] = []
        self._conn_lock = threading.Lock()
        self._shutdown = threading.Event()
        self._drained = threading.Event()
        self._job_seq = 0
        self._seq_lock = threading.Lock()
        # captured at start(): connection threads re-enter the obs /
        # fault-injection contexts the server was started under
        # (contextvars do not propagate into threads by themselves)
        self._base_context: Optional[contextvars.Context] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Bind, start the pool, and begin accepting (returns the address)."""
        if self._socket is not None:
            return self.address  # type: ignore[return-value]
        self._base_context = contextvars.copy_context()
        self.pool.start()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        # closing a listener does NOT wake a thread blocked in accept();
        # a short timeout lets the accept loop notice the shutdown flag
        listener.settimeout(0.2)
        self._socket = listener
        self.address = listener.getsockname()[:2]
        self.started_at = time.monotonic()
        self._accept_thread = threading.Thread(
            target=self._base_context.copy().run,
            args=(self._accept_loop,),
            name="repro-serve-accept",
            daemon=True,
        )
        self._accept_thread.start()
        return self.address

    def stop(self, grace_s: float = 5.0) -> None:
        """Graceful drain: stop accepting, finish in-flight work, stop the pool."""
        if self._shutdown.is_set():
            self._drained.wait(timeout=grace_s)
            return
        self._shutdown.set()
        if self._socket is not None:
            try:
                self._socket.close()  # unblocks accept()
            except OSError:  # pragma: no cover
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=grace_s)
        deadline = time.monotonic() + grace_s
        with self._conn_lock:
            pending = list(self._conn_threads)
        for thread in pending:
            thread.join(timeout=max(0.1, deadline - time.monotonic()))
        self.pool.shutdown(grace_s=grace_s)
        self._drained.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the server has fully drained (the CLI's foreground)."""
        return self._drained.wait(timeout=timeout)

    # ------------------------------------------------------------------
    # accept / connection loop
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._socket is not None
        while not self._shutdown.is_set():
            try:
                conn, _peer = self._socket.accept()
            except socket.timeout:
                continue  # periodic shutdown-flag check
            except OSError:
                return  # listener closed by stop()
            # accepted sockets inherit the listener's 0.2s timeout;
            # replace it with the per-connection idle/read timeout
            conn.settimeout(self.idle_timeout_s)
            _metrics.inc("service.connections")
            context = (
                self._base_context.copy()
                if self._base_context is not None
                else contextvars.copy_context()
            )
            thread = threading.Thread(
                target=context.run,
                args=(self._serve_connection, conn),
                name="repro-serve-conn",
                daemon=True,
            )
            with self._conn_lock:
                self._conn_threads = [
                    t for t in self._conn_threads if t.is_alive()
                ]
                self._conn_threads.append(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            while not self._shutdown.is_set():
                try:
                    request = recv_message(conn, self.max_message_bytes)
                except socket.timeout:
                    # idle/read timeout: the peer sent nothing (or
                    # stalled mid-frame) for idle_timeout_s; a partial
                    # frame cannot be answered mid-stream, so drop the
                    # connection rather than pin this thread forever
                    _metrics.inc("service.idle_timeouts")
                    return
                except OversizedMessage as error:
                    # cannot resync the stream without draining the huge
                    # body: answer, then close
                    _metrics.inc("service.errors")
                    send_message(
                        conn, error_response(error.code, str(error))
                    )
                    return
                except ProtocolError as error:
                    _metrics.inc("service.errors")
                    try:
                        send_message(
                            conn, error_response(error.code, str(error))
                        )
                    except OSError:
                        pass
                    return
                if request is None:
                    return  # clean EOF between frames
                try:
                    response = self._handle_request(request)
                except Exception as error:  # noqa: BLE001 - contract backstop
                    # the serving contract: every valid frame gets a
                    # response, whatever bug the handler just hit
                    _metrics.inc("service.errors")
                    response = error_response(
                        "internal-error",
                        "unexpected error handling request: "
                        f"{type(error).__name__}: {error}",
                        op=str(request.get("op")),
                    )
                self._send_response(conn, response)
        except OSError:
            return  # peer vanished; nothing to answer
        finally:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass

    def _send_response(
        self, conn: socket.socket, response: Dict[str, Any]
    ) -> None:
        """Send one response frame no larger than the receive limit.

        The client enforces the same ``max_message_bytes`` on receive
        that the server enforces on requests, so an unbounded response
        (a near-limit batch with ``report: true``) would make the
        *client* choke on a successful exchange.  Oversized responses
        are truncated -- report/record payloads dropped, a RES509
        degradation appended -- and only if even the skeleton does not
        fit does the exchange fall back to a bare error response.
        """
        try:
            send_message(conn, response, max_bytes=self.max_message_bytes)
            return
        except OversizedMessage as error:
            _metrics.inc("service.responses.truncated")
            slim = self._truncated_response(response, error)
        try:
            send_message(conn, slim, max_bytes=self.max_message_bytes)
        except OversizedMessage as error:  # pragma: no cover - huge batch
            _metrics.inc("service.errors")
            send_message(
                conn,
                error_response(
                    "response-overflow",
                    f"response of {error.size} bytes exceeds the "
                    f"{error.limit}-byte frame limit even after "
                    "truncation",
                ),
            )

    def _truncated_response(
        self, response: Dict[str, Any], error: OversizedMessage
    ) -> Dict[str, Any]:
        """The degraded skeleton of an oversized response."""
        log = DegradationLog()
        log.record(
            "serve.protocol",
            code="response-overflow",
            message=(
                f"response of {error.size} bytes exceeds the "
                f"{error.limit}-byte frame limit; report/record "
                "payloads dropped"
            ),
            diag_code="RES509",
            action="truncated",
        )
        note = _degradation_payload(log)
        diagnostic = {
            "code": "RES509",
            "error": "response-overflow",
            "message": log.records[-1].message,
        }
        slim = dict(response)
        slim.pop("metrics", None)
        results = []
        for result in slim.get("results") or []:
            if not isinstance(result, dict):  # pragma: no cover
                continue
            trimmed = dict(result)
            trimmed.pop("report", None)
            trimmed.pop("record", None)
            trimmed["status"] = "degraded"
            trimmed["truncated"] = True
            trimmed["degradations"] = (
                list(trimmed.get("degradations") or []) + note
            )
            trimmed["diagnostics"] = (
                list(trimmed.get("diagnostics") or []) + [diagnostic]
            )
            results.append(trimmed)
        if results:
            slim["results"] = results
        if slim.get("status") == "ok":
            slim["status"] = "degraded"
        return slim

    # ------------------------------------------------------------------
    # request dispatch
    # ------------------------------------------------------------------
    def _handle_request(self, request: Dict[str, Any]) -> Dict[str, Any]:
        op = request.get("op")
        with _trace_span("service.request"):
            if op == "health":
                return {"status": "ok", "op": "health", "alive": True}
            if op == "ready":
                return self._handle_ready()
            if op == "stats":
                return self._handle_stats()
            if op == "analyze":
                self.requests_served += 1
                _metrics.inc("service.requests")
                return self._handle_analyze(request)
            _metrics.inc("service.errors")
            return error_response(
                "malformed-request", f"unknown op {op!r}", op=str(op)
            )

    def _handle_ready(self) -> Dict[str, Any]:
        pool = self.pool.snapshot()
        ready = not self._shutdown.is_set() and pool["alive"] == pool["size"]
        return {
            "status": "ok" if ready else "degraded",
            "op": "ready",
            "ready": ready,
            "pool": pool,
            "cache": self.cache.snapshot(),
            "breaker": self.breaker.snapshot(),
        }

    def _handle_stats(self) -> Dict[str, Any]:
        uptime = (
            time.monotonic() - self.started_at
            if self.started_at is not None
            else 0.0
        )
        registry = _metrics.active()
        return {
            "status": "ok",
            "op": "stats",
            "uptime_s": round(uptime, 3),
            "requests": self.requests_served,
            "pool": self.pool.snapshot(),
            "cache": self.cache.snapshot(),
            "breaker": self.breaker.snapshot(),
            "metrics": registry.snapshot() if registry is not None else {},
        }

    def _handle_analyze(self, request: Dict[str, Any]) -> Dict[str, Any]:
        programs = request.get("programs")
        if programs is None:
            programs = [
                {
                    "name": request.get("name", "main"),
                    "source": request.get("source"),
                    "chaos_sleep_s": request.get("chaos_sleep_s"),
                }
            ]
        if not isinstance(programs, list) or not programs:
            _metrics.inc("service.errors")
            return error_response(
                "malformed-request",
                "request needs 'source' or a non-empty 'programs' list",
                op="analyze",
            )
        for index, program in enumerate(programs):
            if not isinstance(program, dict) or not isinstance(
                program.get("source"), str
            ):
                _metrics.inc("service.errors")
                return error_response(
                    "malformed-request",
                    f"programs[{index}] lacks a string 'source'",
                    op="analyze",
                )
        options = request.get("options") or {}
        if not isinstance(options, dict):
            _metrics.inc("service.errors")
            return error_response(
                "malformed-request", "'options' must be an object", op="analyze"
            )
        deadline = options.get("deadline_s")
        if deadline is not None and (
            isinstance(deadline, bool)
            or not isinstance(deadline, (int, float))
            or not deadline > 0  # "not >" also rejects NaN
        ):
            _metrics.inc("service.errors")
            return error_response(
                "malformed-request",
                "'options.deadline_s' must be a positive number",
                op="analyze",
            )
        language = options.get("language")
        if language is not None and language not in ("loop", "python"):
            _metrics.inc("service.errors")
            return error_response(
                "malformed-request",
                "'options.language' must be 'loop' or 'python'",
                op="analyze",
            )
        started = time.perf_counter()
        # one registry per request: counters (cache hits, retries,
        # degradations) scoped to this exchange, merged up on exit
        with _metrics.isolated() as registry:
            results = [
                self._run_program(program, options) for program in programs
            ]
            request_metrics = registry.snapshot() if registry else {}
        elapsed = time.perf_counter() - started
        _metrics.observe("service.latency", elapsed)
        worst = "ok"
        if any(result["status"] == "degraded" for result in results):
            worst = "degraded"
            _metrics.inc("service.requests.degraded")
        return {
            "status": worst,
            "op": "analyze",
            "results": results,
            "elapsed_s": round(elapsed, 6),
            "metrics": request_metrics,
        }

    # ------------------------------------------------------------------
    # one program through breaker -> cache -> retrying dispatch
    # ------------------------------------------------------------------
    def _next_job_id(self) -> int:
        with self._seq_lock:
            self._job_seq += 1
            return self._job_seq

    def _run_program(
        self, program: Dict[str, Any], options: Dict[str, Any]
    ) -> Dict[str, Any]:
        source = program["source"]
        name = program.get("name") or "main"
        fingerprint = source_fingerprint(source)
        base = {"name": name, "fingerprint": fingerprint}
        try:
            return self._analyze_program(base, program, options, fingerprint)
        except Exception as error:  # noqa: BLE001 - contract backstop
            # an unexpected bug below must degrade the program, never
            # escape to drop the whole connection
            return self._degraded_result(
                base,
                wrap_exception(error, "serve.dispatch"),
                DegradationLog(),
                fingerprint,
            )

    def _analyze_program(
        self,
        base: Dict[str, Any],
        program: Dict[str, Any],
        options: Dict[str, Any],
        fingerprint: str,
    ) -> Dict[str, Any]:
        source = program["source"]
        name = base["name"]
        serve_log = DegradationLog()

        # cache first, breaker second: a hit costs no worker (so there
        # is nothing for the breaker to protect) and, crucially, must
        # not absorb the one half-open trial -- a cached options-set
        # would otherwise leave a circuit opened by a *different*
        # options-set stuck in half-open with its trial never reported
        key = cache_key(fingerprint, options)
        cached, _cache_ok = safe_lookup(self.cache, key)
        if cached is not None:
            return dict(cached, cached=True)

        if not self.breaker.allow(fingerprint):
            serve_log.record(
                "serve.breaker",
                code="circuit-open",
                message=(
                    f"circuit open for fingerprint {fingerprint}; "
                    "request shed without dispatch"
                ),
                diag_code="RES508",
                scope=fingerprint,
                action="shed",
            )
            return dict(
                base,
                status="degraded",
                error={"code": "circuit-open"},
                degradations=_degradation_payload(serve_log),
                diagnostics=[self._diagnostic("circuit-open", serve_log)],
                retry_after_s=round(self.breaker.retry_after_s(fingerprint), 3),
            )

        job = {
            "id": self._next_job_id(),
            "name": name,
            "source": source,
            "origin": program.get("origin"),
            "fingerprint": fingerprint,
            "options": options,
        }
        if program.get("chaos_sleep_s"):
            job["chaos_sleep_s"] = program["chaos_sleep_s"]

        try:
            outcome = call_with_retry(
                lambda: self._dispatch(job),
                policy=self.retry_policy,
                phase="serve.worker",
                rng=self.retry_rng,  # None -> retry.py's seeded default
                on_retry=lambda error, attempt: _trace_event(
                    "service.retry", code=error.code, attempt=attempt
                ),
            )
        except ReproError as error:
            return self._degraded_result(base, error, serve_log, fingerprint)

        response = outcome.response or {}
        if not response.get("ok"):
            error_info = response.get("error") or {}
            error = ReproError(
                error_info.get("message", "worker reported failure"),
                code=error_info.get("code", "internal-error"),
                phase="serve.worker",
            )
            return self._degraded_result(base, error, serve_log, fingerprint)

        self.breaker.record_success(fingerprint)
        result = dict(
            base,
            status="degraded" if response.get("degraded") else "ok",
            record=response.get("record"),
            report=response.get("report"),
            degradations=_degradation_payload(serve_log),
            worker=outcome.worker_id,
            elapsed_s=round(outcome.elapsed_s, 6),
        )
        self._write_runlog(response.get("record"))
        if result["status"] == "ok":
            # degraded results are never cached: a contained failure is
            # not a result worth pinning to this fingerprint
            safe_store(self.cache, key, result)
        return result

    def _dispatch(self, job: Dict[str, Any]) -> JobOutcome:
        """One pool round-trip; failures become taxonomy errors for retry."""
        deadline = (job.get("options") or {}).get("deadline_s")
        outcome = self.pool.submit(
            job, timeout_s=float(deadline) if deadline else None
        )
        if not outcome.ok:
            raise ReproError(
                outcome.error_message or outcome.error_code or "dispatch failed",
                code=outcome.error_code or "internal-error",
                phase="serve.worker",
            )
        response = outcome.response or {}
        if not response.get("ok"):
            error_info = response.get("error") or {}
            code = error_info.get("code", "internal-error")
            if error_code_info(code).policy is RecoveryPolicy.RETRY:
                # e.g. transient-fault: surface as an exception so the
                # retry loop re-dispatches it
                raise ReproError(
                    error_info.get("message", code),
                    code=code,
                    phase="serve.worker",
                )
        return outcome

    def _degraded_result(
        self,
        base: Dict[str, Any],
        error: ReproError,
        serve_log: DegradationLog,
        fingerprint: str,
    ) -> Dict[str, Any]:
        """The structured degraded response for a dispatch-level failure."""
        code = error.code
        diag_code = _DIAG_FOR_CODE.get(code, "RES501")
        phase = error.phase or "serve.dispatch"
        if code in ("worker-crash", "request-timeout"):
            phase = "serve.worker"
        serve_log.record(
            phase,
            code=code,
            message=error.message,
            diag_code=diag_code,
            scope=fingerprint,
            action="degraded",
        )
        # client-input errors never trip the breaker (they cost nothing
        # and would punish a valid fingerprint); worker-level ones do
        if code not in ("frontend-error", "malformed-request"):
            self.breaker.record_failure(fingerprint)
        _metrics.inc("service.requests.failed")
        return dict(
            base,
            status="degraded",
            error={"code": code, "message": error.message},
            degradations=_degradation_payload(serve_log),
            diagnostics=[self._diagnostic(code, serve_log)],
        )

    @staticmethod
    def _diagnostic(code: str, serve_log: DegradationLog) -> Dict[str, Any]:
        diag_code = _DIAG_FOR_CODE.get(code, "RES501")
        message = serve_log.records[-1].message if serve_log.records else code
        return {"code": diag_code, "error": code, "message": message}

    def _write_runlog(self, record: Optional[Dict[str, Any]]) -> None:
        if self.runlog is None or record is None:
            return
        try:
            self.runlog.write(record)
        except Exception:  # noqa: BLE001 - the log must never fail a request
            _metrics.inc("service.runlog.errors")
