"""The analysis worker: one process, one job at a time, crash-isolated.

A worker is a :mod:`multiprocessing` child running :func:`worker_main`:
it receives job dicts over its pipe, runs the full pipeline under a
per-request :class:`~repro.resilience.AnalysisBudget`, and sends back a
JSON-ready response built on the flight recorder's record shape
(:func:`repro.obs.runlog.build_record`), so a service response, a
run-log line, and a ``repro stats`` input are all the same object.

Process isolation is the whole point: a worker that segfaults, gets
OOM-killed, or trips the injected ``serve.worker`` crash takes down
*its process*, never the server.  The pool detects the broken pipe,
respawns, and the request degrades.  The injected crash is a real
``os._exit`` -- not an exception the worker could accidentally catch --
because the recovery path being tested is the parent's, not the
worker's.

Jobs and responses (all plain dicts, JSON-serializable)::

    job      {"id": 7, "name": "main", "source": "...", "origin": ...,
              "fingerprint": "...", "options": {"ranges": true, ...}}
    response {"id": 7, "ok": true, "degraded": false, "record": {...},
              "report": "..." | null}
    failure  {"id": 7, "ok": false,
              "error": {"code": "frontend-error", "message": "..."}}
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

from repro.obs import observing
from repro.obs.runlog import build_record
from repro.pipeline import analyze
from repro.resilience.budget import SERVICE_BUDGET, AnalysisBudget
from repro.resilience.errors import InjectedFault, TransientFault
from repro.resilience.faultinject import FaultPlan, fault_point, injecting

__all__ = ["budget_from_options", "run_job", "worker_main"]

#: exit status of a deliberately crashed worker (the injected
#: ``serve.worker`` fault); distinct from interpreter failures so tests
#: can tell the two apart
CRASH_EXIT_CODE = 13


def budget_from_options(
    options: Optional[Dict[str, Any]],
    default: AnalysisBudget = SERVICE_BUDGET,
) -> AnalysisBudget:
    """The request's :class:`AnalysisBudget`: the service default, tightened.

    ``options["deadline_s"]`` caps both the per-phase and the
    whole-request clocks (the CLI's ``--deadline-s`` semantics);
    ``options["max_expr_terms"]`` caps symbolic growth.  A full override
    dict may be passed as ``options["budget"]`` with any
    :class:`AnalysisBudget` field.
    """
    options = options or {}
    fields = {
        "max_expr_terms": default.max_expr_terms,
        "max_matrix_dim": default.max_matrix_dim,
        "max_unroll_trips": default.max_unroll_trips,
        "phase_deadline_s": default.phase_deadline_s,
        "request_deadline_s": default.request_deadline_s,
    }
    deadline = options.get("deadline_s")
    if deadline is not None:
        fields["phase_deadline_s"] = float(deadline)
        fields["request_deadline_s"] = float(deadline)
    if options.get("max_expr_terms") is not None:
        fields["max_expr_terms"] = int(options["max_expr_terms"])
    override = options.get("budget")
    if isinstance(override, dict):
        for key in fields:
            if key in override:
                fields[key] = override[key]
    return AnalysisBudget(**fields)


def run_job(
    job: Dict[str, Any], default_budget: AnalysisBudget = SERVICE_BUDGET
) -> Dict[str, Any]:
    """Run one analysis job (in-process; the worker loop calls this).

    Sits behind the ``serve.worker`` fault point.  Raises
    :class:`~repro.resilience.errors.InjectedFault` when that point is
    armed -- the worker loop converts the non-transient flavor into a
    hard ``os._exit`` crash -- and returns a structured failure dict
    (never raises) for everything else.
    """
    fault_point("serve.worker")
    chaos_sleep = job.get("chaos_sleep_s")
    if chaos_sleep:  # loadtest/test hook: simulate a hung analysis
        import time

        time.sleep(float(chaos_sleep))
    source = job.get("source")
    if not isinstance(source, str):
        return {
            "id": job.get("id"),
            "ok": False,
            "error": {
                "code": "malformed-request",
                "message": "job lacks a string 'source'",
            },
        }
    options = job.get("options") or {}
    budget = budget_from_options(options, default_budget)
    if options.get("language") == "python":
        return _run_python_job(job, source, options, budget)
    try:
        with observing():
            program = analyze(
                source,
                name=job.get("name") or "main",
                optimize=bool(options.get("optimize", True)),
                strict=False,
                budget=budget,
                ranges=bool(options.get("ranges", False)),
                invariants=bool(options.get("invariants", False)),
            )
            record = build_record(program, origin_label=job.get("origin"))
            report = None
            if options.get("report"):
                from repro.report import format_report

                report = format_report(program)
    except InjectedFault:
        raise  # the worker loop decides: crash (plain) or retryable (transient)
    except Exception as error:  # noqa: BLE001 - frontend/abort errors
        from repro.resilience.errors import wrap_exception

        wrapped = wrap_exception(error, "serve.worker")
        return {
            "id": job.get("id"),
            "ok": False,
            "error": {"code": wrapped.code, "message": wrapped.message},
        }
    return {
        "id": job.get("id"),
        "ok": True,
        "degraded": bool(program.degraded),
        "record": record,
        "report": report,
    }


def _run_python_job(
    job: Dict[str, Any],
    source: str,
    options: Dict[str, Any],
    budget: AnalysisBudget,
) -> Dict[str, Any]:
    """Analyze real-Python source: every function, merged into one record.

    The ``language: "python"`` request path.  Each function the frontend
    can carry (:mod:`repro.pyfront`) runs the same pipeline as a DSL
    job; the response record concatenates their per-loop rows (headers
    are line-numbered, hence unique within a module) and sums their
    rollups, with a ``functions`` section counting lowered vs degraded.
    Unsupported constructs appear as PYF4xx entries under
    ``degradations`` -- a module that degrades entirely still answers
    ``ok``.
    """
    import time

    from repro.obs.runlog import RUNLOG_SCHEMA, source_fingerprint, source_lang

    try:
        with observing(), source_lang("python"):
            from repro.analysis.loopsimplify import simplify_loops
            from repro.ir.clone import clone_function
            from repro.pipeline import analyze_function
            from repro.pyfront.lower import compile_module

            module = compile_module(source, origin=job.get("origin") or "<python>")
            if module.error is not None:
                return {
                    "id": job.get("id"),
                    "ok": False,
                    "error": {
                        "code": "python-syntax-error",
                        "message": module.error.message,
                    },
                }
            record: Dict[str, Any] = {
                "schema": RUNLOG_SCHEMA,
                "ts": time.time(),
                "origin": job.get("origin"),
                "source_lang": "python",
                "function": job.get("name") or "module",
                "fingerprint": source_fingerprint(source),
                "loops": [],
                "classes": {},
                "parallel": {"doall": 0, "serial": 0, "undecided": 0},
                "blocked": {},
                "degradations": [],
                "ranges": None,
                "invariants": None,
                "functions": {
                    "total": len(module.functions),
                    "lowered": 0,
                    "degraded": 0,
                },
            }
            reports = []
            degraded = False
            for compiled in module.functions:
                record["degradations"].extend(
                    {
                        "phase": d.phase,
                        "code": d.code,
                        "action": d.action,
                        "scope": d.scope,
                        "diag_code": d.diag_code,
                        "message": d.message,
                    }
                    for d in compiled.degradations
                )
                if not compiled.ok:
                    record["functions"]["degraded"] += 1
                    degraded = True
                    continue
                named = clone_function(compiled.function)
                try:
                    simplify_loops(named)
                except Exception:  # noqa: BLE001 - analyze the raw shape
                    named = clone_function(compiled.function)
                program = analyze_function(
                    named,
                    source=compiled.source,
                    optimize=bool(options.get("optimize", True)),
                    budget=budget,
                    ranges=bool(options.get("ranges", False)),
                    invariants=bool(options.get("invariants", False)),
                )
                part = build_record(program, origin_label=compiled.origin)
                record["functions"]["lowered"] += 1
                record["loops"].extend(part["loops"])
                for kind, count in part["classes"].items():
                    record["classes"][kind] = (
                        record["classes"].get(kind, 0) + count
                    )
                for key in record["parallel"]:
                    record["parallel"][key] += part["parallel"][key]
                for reason, count in part["blocked"].items():
                    record["blocked"][reason] = (
                        record["blocked"].get(reason, 0) + count
                    )
                record["degradations"].extend(part["degradations"])
                degraded = degraded or bool(program.degraded)
                if options.get("report"):
                    from repro.report import format_report

                    reports.append(
                        f"== {compiled.qualname} ({compiled.origin}) ==\n"
                        + format_report(program)
                    )
    except InjectedFault:
        raise
    except Exception as error:  # noqa: BLE001 - total-ingestion contract
        from repro.resilience.errors import wrap_exception

        wrapped = wrap_exception(error, "serve.worker")
        return {
            "id": job.get("id"),
            "ok": False,
            "error": {"code": wrapped.code, "message": wrapped.message},
        }
    return {
        "id": job.get("id"),
        "ok": True,
        "degraded": degraded,
        "record": record,
        "report": "\n\n".join(reports) if reports else None,
    }


def worker_main(
    conn,
    worker_id: int,
    fault_spec: Optional[Dict[str, Any]] = None,
    budget_spec: Optional[Dict[str, Any]] = None,
) -> None:
    """The worker process entry point: recv job, run, send response.

    ``fault_spec`` rebuilds a :class:`FaultPlan` inside the child (plans
    hold an unpicklable RNG), arming the same deterministic injection
    stream for the worker's whole lifetime -- so ``seed``/``rate`` plans
    trip reproducibly across the jobs one worker handles.
    ``budget_spec`` (a dict of :class:`AnalysisBudget` fields) sets the
    server's default per-request budget; per-job options still tighten
    it.  A ``None`` job is the graceful-drain sentinel.
    """
    default_budget = SERVICE_BUDGET
    if budget_spec:
        default_budget = AnalysisBudget(**budget_spec)
    plan = None
    if fault_spec:
        plan = FaultPlan(
            points=fault_spec.get("points"),
            seed=fault_spec.get("seed"),
            rate=fault_spec.get("rate", 1.0),
            only_first=fault_spec.get("only_first", False),
            transient=fault_spec.get("transient", False),
        )
    from contextlib import nullcontext

    with injecting(plan) if plan is not None else nullcontext():
        while True:
            try:
                job = conn.recv()
            except (EOFError, OSError):
                return
            if job is None:
                return
            try:
                response = run_job(job, default_budget)
            except TransientFault as fault:
                response = {
                    "id": job.get("id"),
                    "ok": False,
                    "error": {"code": fault.code, "message": fault.message},
                }
            except InjectedFault as fault:
                if fault.phase == "serve.worker":
                    # simulate a hard crash: no response, no cleanup --
                    # the parent sees a broken pipe, exactly like a real
                    # segfault or OOM kill
                    os._exit(CRASH_EXIT_CODE)
                response = {
                    "id": job.get("id"),
                    "ok": False,
                    "error": {"code": fault.code, "message": fault.message},
                }
            except Exception as error:  # noqa: BLE001 - last-ditch containment
                response = {
                    "id": job.get("id"),
                    "ok": False,
                    "error": {
                        "code": "internal-error",
                        "message": f"{type(error).__name__}: {error}",
                    },
                }
            try:
                conn.send(response)
            except (BrokenPipeError, OSError):
                return
