"""Static Single Assignment construction, destruction, and the SSA graph.

The paper's algorithm runs on the SSA form of the program (section 2.1,
following Cytron et al. [CFR+91]): phi placement at iterated dominance
frontiers, then renaming so that "every use of any variable has exactly one
reaching definition".  :mod:`repro.ssa.graph` provides the *SSA graph* of
section 3 -- the def-use structure whose strongly connected regions the
classifier inspects.
"""

from repro.ssa.construct import SSAInfo, construct_ssa
from repro.ssa.destruct import destruct_ssa
from repro.ssa.graph import SSAGraph, build_ssa_graph

__all__ = [
    "SSAInfo",
    "construct_ssa",
    "destruct_ssa",
    "SSAGraph",
    "build_ssa_graph",
]
