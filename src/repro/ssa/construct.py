"""SSA construction: pruned phi placement + dominator-tree renaming.

The algorithm is the standard one the paper builds on [CFR+91]:

1. for each variable, place phis at the iterated dominance frontier of its
   definition blocks -- pruned by liveness, so no dead phis are created
   (dead phis would bloat the SSA graph that Tarjan's algorithm walks);
2. rename along a preorder walk of the dominator tree with a stack of
   reaching definitions per variable.

SSA names are ``var.N`` (the paper's subscripts): ``i`` becomes ``i.1``,
``i.2``, ...  The mapping back to source variables is kept in
:class:`SSAInfo`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from repro.analysis.domfrontier import dominance_frontiers, iterated_frontier
from repro.analysis.dominators import DominatorTree, dominator_tree
from repro.analysis.liveness import live_in_sets
from repro.analysis.rpo import reachable_blocks
from repro.ir.function import Function, IRError
from repro.ir.instructions import Phi
from repro.ir.values import Ref

from repro.obs.trace import traced
from repro.resilience.faultinject import fault_point


@dataclass
class SSAInfo:
    """Results of SSA construction.

    ``origin`` maps each SSA name to its source variable.  ``undef_inputs``
    lists synthetic entry values created for variables that may be used
    before any definition on some path (they behave like extra parameters).
    """

    function: Function
    domtree: DominatorTree
    origin: Dict[str, str] = field(default_factory=dict)
    undef_inputs: List[str] = field(default_factory=list)

    def names_of(self, var: str) -> List[str]:
        return [name for name, source in self.origin.items() if source == var]


@traced("ssa.construct")
def construct_ssa(function: Function) -> SSAInfo:
    """Convert ``function`` (in place) from named form to SSA form."""
    fault_point("ssa.construct")
    for block in function:
        if block.phis():
            raise IRError("construct_ssa expects phi-free named IR")

    reachable = reachable_blocks(function)
    domtree = dominator_tree(function)
    frontiers = dominance_frontiers(function, domtree)
    live_in = live_in_sets(function)

    # definition sites per variable
    def_blocks: Dict[str, Set[str]] = {}
    for block in function:
        if block.label not in reachable:
            continue
        for inst in block:
            if inst.result is not None:
                def_blocks.setdefault(inst.result, set()).add(block.label)

    # 1. phi placement (pruned)
    phi_var: Dict[int, str] = {}  # id(phi) -> source variable
    for var in sorted(def_blocks):
        for label in sorted(iterated_frontier(frontiers, def_blocks[var])):
            if var not in live_in[label]:
                continue
            block = function.block(label)
            phi = Phi(var)  # renamed below
            block.instructions.insert(0, phi)
            phi_var[id(phi)] = var

    # 2. renaming
    info = SSAInfo(function, domtree)
    counters: Dict[str, int] = {}
    stacks: Dict[str, List[str]] = {}
    for param in function.params:
        stacks[param] = [param]
        info.origin[param] = param

    def fresh(var: str) -> str:
        counters[var] = counters.get(var, 0) + 1
        name = f"{var}.{counters[var]}"
        info.origin[name] = var
        return name

    def reaching(var: str) -> str:
        stack = stacks.get(var)
        if not stack:
            # used before defined on some path: synthesize an entry value
            name = f"{var}.undef"
            if name not in info.undef_inputs:
                info.undef_inputs.append(name)
                function.params.append(name)
                info.origin[name] = var
            stacks.setdefault(var, []).append(name)
            return name
        return stack[-1]

    pushed: Dict[str, List[str]] = {label: [] for label in function.blocks}

    def rename_block(label: str) -> None:
        block = function.block(label)
        for inst in block.instructions:
            if isinstance(inst, Phi):
                var = phi_var[id(inst)]
                new_name = fresh(var)
                inst.result = new_name
                stacks.setdefault(var, []).append(new_name)
                pushed[label].append(var)
            else:
                mapping = {}
                for value in inst.uses():
                    if isinstance(value, Ref):
                        mapping[value.name] = Ref(reaching(value.name))
                if mapping:
                    inst.replace_uses(mapping)
                if inst.result is not None:
                    var = inst.result
                    new_name = fresh(var)
                    inst.result = new_name
                    stacks.setdefault(var, []).append(new_name)
                    pushed[label].append(var)
        terminator = block.terminator
        if terminator is not None:
            mapping = {}
            for value in terminator.uses():
                if isinstance(value, Ref):
                    mapping[value.name] = Ref(reaching(value.name))
            if mapping:
                terminator.replace_uses(mapping)
        # fill phi arguments of successors
        for succ in block.successors():
            for phi in function.block(succ).phis():
                var = phi_var.get(id(phi))
                if var is None:
                    continue  # already-renamed phi (shouldn't happen in preorder)
                phi.set_incoming(label, Ref(reaching(var)))

    # phis must know their variable even after renaming their own result,
    # because successors' phi arguments are filled from the predecessor.
    # phi_var is keyed by identity so renaming the result doesn't disturb it.
    def walk(label: str) -> None:
        rename_block(label)
        for child in domtree.children[label]:
            walk(child)
        for var in reversed(pushed[label]):
            stacks[var].pop()
        pushed[label].clear()

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 4 * len(function.blocks) + 1000))
    try:
        walk(domtree.entry)
    finally:
        sys.setrecursionlimit(old_limit)

    # drop unreachable blocks: they were not renamed and would fail the
    # SSA verifier; they are dead anyway.
    for label in list(function.blocks):
        if label not in reachable:
            del function.blocks[label]

    from repro.ir.verify import verify_function

    verify_function(function, ssa=True)
    function.dirty()
    return info
