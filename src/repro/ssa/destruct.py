"""Out-of-SSA translation.

Phi functions are replaced by copies in predecessor blocks.  Copies on each
edge are *parallel*: the classic lost-copy and swap problems (e.g. the
paper's periodic variables ``t = j; j = k; k = t`` after SSA) are handled by
emitting the parallel copy group in dependence order and breaking cycles
with a temporary.

Critical edges (predecessor with several successors into a block with
several predecessors) are split first so copies cannot execute on the wrong
path.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.ir.function import Function
from repro.ir.instructions import Assign, Phi
from repro.ir.values import Const, Ref, Value


def destruct_ssa(function: Function) -> None:
    """Replace all phis with copies (in place)."""
    _split_critical_edges(function)

    # gather parallel copy groups per edge (pred -> block)
    copies: Dict[Tuple[str, str], List[Tuple[str, Value]]] = {}
    for block in function:
        for phi in block.phis():
            for pred, value in phi.incoming.items():
                copies.setdefault((pred, block.label), []).append((phi.result, value))
        block.instructions = [i for i in block.instructions if not isinstance(i, Phi)]

    for (pred_label, _succ), group in copies.items():
        pred = function.block(pred_label)
        for dest, src in _sequence_parallel_copies(group, function):
            pred.append(Assign(dest, src))
    function.dirty()


def _split_critical_edges(function: Function) -> None:
    preds = function.predecessors_map()
    for label in list(function.blocks):
        block = function.block(label)
        if not block.phis():
            continue
        if len(preds[label]) < 2:
            continue
        for pred_label in list(preds[label]):
            if len(function.block(pred_label).successors()) > 1:
                new_label = function.fresh_label(f"{pred_label}.crit")
                function.split_edge(pred_label, label, new_label)


def _sequence_parallel_copies(
    group: List[Tuple[str, Value]], function: Function
) -> List[Tuple[str, Value]]:
    """Order a parallel copy group; break cycles with temporaries.

    ``group`` is a list of (dest, src) with all dests distinct.  A copy may
    be emitted once no *pending* copy still reads its destination.
    """
    pending = [(dest, src) for dest, src in group if not (isinstance(src, Ref) and src.name == dest)]
    ordered: List[Tuple[str, Value]] = []
    while pending:
        progressed = False
        for i, (dest, src) in enumerate(pending):
            dest_read = any(
                isinstance(other_src, Ref) and other_src.name == dest
                for j, (_, other_src) in enumerate(pending)
                if j != i
            )
            if not dest_read:
                ordered.append((dest, src))
                del pending[i]
                progressed = True
                break
        if not progressed:
            # cycle: rotate through a temporary
            dest, src = pending[0]
            temp = function.fresh_name(f"{dest}.swap")
            ordered.append((temp, Ref(dest)))
            for j, (other_dest, other_src) in enumerate(pending):
                if isinstance(other_src, Ref) and other_src.name == dest:
                    pending[j] = (other_dest, Ref(temp))
    return ordered
