"""The SSA graph of section 3.

"When analyzing a loop, the vertices in the SSA graph are the tuples
representing operations within that loop.  The edges go from each tuple to
the left and right operands ... Note that the edges go from the operators to
the source operands."

Concretely: one node per value-defining instruction, identified by its SSA
name; edges from each node to the defining nodes of its ``Ref`` operands.
A :class:`SSAGraph` may be restricted to a *region* (a set of block labels,
i.e. a loop body): edges to definitions outside the region are reported via
:meth:`external_operands` instead -- those are the values the paper treats
as loop invariant during classification (section 5.3).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.ir.function import Function
from repro.ir.instructions import Instruction, Phi
from repro.ir.values import Const, Ref


class SSAGraph:
    """Def-use graph over the value-defining instructions of a region."""

    def __init__(
        self,
        function: Function,
        region: Optional[Set[str]] = None,
    ):
        self.function = function
        self.region: Optional[Set[str]] = set(region) if region is not None else None
        self.defs: Dict[str, Tuple[str, Instruction]] = {}
        for block in function:
            if self.region is not None and block.label not in self.region:
                continue
            for inst in block:
                if inst.result is not None:
                    self.defs[inst.result] = (block.label, inst)

    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self.defs

    def nodes(self) -> List[str]:
        return list(self.defs)

    def instruction(self, name: str) -> Instruction:
        return self.defs[name][1]

    def block_of(self, name: str) -> str:
        return self.defs[name][0]

    def operand_names(self, name: str) -> List[str]:
        """Names of all Ref operands (whether or not in the region)."""
        _, inst = self.defs[name]
        return [v.name for v in inst.uses() if isinstance(v, Ref)]

    def successors(self, name: str) -> List[str]:
        """Graph edges: operand definitions *inside* the region."""
        return [n for n in self.operand_names(name) if n in self.defs]

    def external_operands(self, name: str) -> List[str]:
        """Ref operands defined outside the region (loop invariant here)."""
        return [n for n in self.operand_names(name) if n not in self.defs]

    def size(self) -> int:
        """Node count plus edge count (the paper's 'size of the SSA graph')."""
        edges = sum(len(self.successors(n)) for n in self.defs)
        return len(self.defs) + edges


def build_ssa_graph(function: Function, region: Optional[Iterable[str]] = None) -> SSAGraph:
    """Build the SSA graph of a whole function or of one region."""
    return SSAGraph(function, set(region) if region is not None else None)
