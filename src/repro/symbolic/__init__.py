"""Symbolic and exact-rational kernel.

The classifier of "Beyond Induction Variables" represents initial values,
steps and closed-form coefficients *symbolically* (in terms of loop-invariant
SSA names) and recovers polynomial/geometric coefficients by inverting small
matrices with exact rational arithmetic (paper, section 4.3).  This package
provides those two primitives:

* :mod:`repro.symbolic.rational` -- exact ``Fraction`` matrices with
  Gauss-Jordan inversion and linear solving.
* :mod:`repro.symbolic.expr` -- multivariate polynomial expressions over
  named symbols with ``Fraction`` coefficients.
* :mod:`repro.symbolic.closedform` -- the closed-form sequence domain
  ``sum_k c_k * h**k + sum_b g_b * b**h`` used to describe generalized
  induction variables.
"""

from repro.symbolic.expr import Expr, ExprError
from repro.symbolic.rational import Matrix, MatrixError
from repro.symbolic.closedform import ClosedForm, ClosedFormError

__all__ = [
    "Expr",
    "ExprError",
    "Matrix",
    "MatrixError",
    "ClosedForm",
    "ClosedFormError",
]
